//! The SuperPin runner: co-simulates the native master, the control
//! process, and every instrumented slice on the machine model.
//!
//! This is the top of the system — the analogue of running
//! `pin -sp 1 -t tool -- app` on the paper's 8-way Xeon. Virtual time
//! advances in quanta; the runnable tasks (master + running slices)
//! receive fair shares of the machine (`superpin-sched`), the master
//! runs natively under ptrace-style control, slices execute instrumented
//! code with record playback and signature detection, and completed
//! slices merge **in slice order** (paper §4.5).
//!
//! # Epochs and host parallelism
//!
//! Quanta are batched into **epochs** planned by
//! [`EpochPlanner`](superpin_sched::EpochPlanner): spans of quanta over
//! which the runnable set — and with it every per-quantum budget — is
//! frozen. Each epoch runs in three strictly ordered phases:
//!
//! 1. **Master first, serially.** The master advances quantum by quantum
//!    on the supervisor thread. A master event (forced syscall, exit)
//!    truncates the epoch at that quantum, so the following barrier
//!    lands exactly where the classic per-quantum loop would have
//!    reacted.
//! 2. **Slices, in parallel.** Every running slice receives the whole
//!    (possibly truncated) epoch's budget and advances independently —
//!    inline when `threads == 1`, fanned out over a
//!    `std::thread::scope` worker pool otherwise. Slices never touch
//!    the scheduler, the master, or each other, and shared-cache
//!    consistency uses per-epoch snapshots, so host interleaving cannot
//!    leak into any simulated quantity.
//! 3. **Barrier.** Virtual time jumps to the epoch end; freshly compiled
//!    traces are published into the sharded shared index *in slice
//!    order*; completed slices merge in slice order; forks happen.
//!
//! Because every scheduling decision is fixed before workers start and
//! every cross-slice effect is applied in slice order at the barrier,
//! the report is bit-identical for any `threads` value.

use crate::api::SuperTool;
use crate::bubble::Bubble;
use crate::config::SuperPinConfig;
use crate::error::SpError;
use crate::governor::{
    MemoryGovernor, ResidentLedger, COMPILED_INST_BYTES, FORK_COST_BYTES, SNAPSHOT_ENTRY_BYTES,
};
use crate::master::{MasterEvent, MasterRuntime};
use crate::record::{
    AdmissionDecision as Admission, NondetEvent, RunMode, RunProbe, RunRecorder, RunSource,
    SliceProbe,
};
use crate::report::{SliceReport, SuperPinReport, TimeBreakdown};
use crate::shared::SharedMem;
use crate::signature::{Signature, SignatureStats};
use crate::slice::{Boundary, SliceRuntime, SliceState, SpSliceTool};
use crate::supervisor::{SliceSupervisor, Verdict};
use std::collections::VecDeque;
use std::sync::{mpsc, Arc};
use std::time::Instant;
use superpin_dbi::SharedTraceIndex;
use superpin_fault::{FailpointRegistry, Site};
use superpin_sched::{EpochPlanner, QuantumScheduler, SliceEta, Timeline};
use superpin_vm::process::Process;
use superpin_vm::VmError;

/// Why the runner wants to fork while no slot is free.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PendingFork {
    Timer,
    Syscall,
}

/// One epoch's worth of work for one **worker**: its whole share of the
/// runnable slices, dispatched by value in a single message. Slices are
/// moved out of the queue, advanced on the worker, and moved back into
/// their original positions at the barrier. Each job's `usize` is the
/// slice's position in the live queue, which both restores queue order
/// and picks the deterministic first error. Batching per worker (rather
/// than per slice) halves-to-quarters the channel traffic per epoch,
/// which is the dominant synchronization cost at fine epoch grain.
struct EpochBatch<T: SuperTool> {
    /// `(queue position, slice, per-quantum budget)` for each slice.
    jobs: Vec<(usize, SliceRuntime<T>, u64)>,
    quanta: u64,
    epoch_start: u64,
    quantum: u64,
    /// Deterministic key the worker feeds its
    /// [`Site::ParallelWorkerChannel`] failpoint before touching the
    /// batch (chaos mode only; a firing worker drops the batch and dies).
    chaos_key: u64,
}

type BatchDone<T> = Vec<(usize, SliceRuntime<T>, Result<(), SpError>)>;

/// Host-side (wall-clock) phase timing of one run, from
/// [`SuperPinRunner::run_profiled`].
///
/// Deliberately **not** part of [`SuperPinReport`]: host nanoseconds
/// vary run to run and machine to machine, while the report is
/// bit-identical across thread counts. The bench harness uses this
/// split to report how much of a run is parallelizable slice work —
/// and, on hosts with fewer cores than requested threads, to model the
/// speedup the epoch structure admits (Amdahl over the measured split).
#[derive(Clone, Copy, Debug, Default)]
pub struct HostProfile {
    /// Wall nanoseconds in the serial supervisor sections: control
    /// steps, planning, master quanta, and epoch barriers.
    pub supervisor_ns: u64,
    /// Wall nanoseconds in the slice phase (inline or fanned out).
    pub slice_ns: u64,
}

impl HostProfile {
    /// Total profiled wall nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.supervisor_ns + self.slice_ns
    }

    /// Fraction of the run spent in the (parallelizable) slice phase.
    pub fn slice_fraction(&self) -> f64 {
        self.slice_ns as f64 / (self.total_ns() as f64).max(1.0)
    }

    /// Amdahl projection from the measured split: the wall-clock speedup
    /// if the slice phase were spread over `threads` cores and the
    /// supervisor sections stayed serial.
    pub fn modeled_speedup(&self, threads: usize) -> f64 {
        let parallel = self.slice_ns as f64 / threads.max(1) as f64;
        self.total_ns() as f64 / (self.supervisor_ns as f64 + parallel).max(1.0)
    }
}

/// One persistent worker's endpoints. Each worker has its **own**
/// result channel: a dead worker then surfaces as a deterministic
/// `Disconnected` on its channel instead of a hang on a shared one, and
/// the supervisor knows exactly whose batch was lost.
struct WorkerLink<T: SuperTool> {
    sender: mpsc::Sender<EpochBatch<T>>,
    results: mpsc::Receiver<BatchDone<T>>,
    /// Cleared when the worker dies (channel failpoint or genuine
    /// panic); dead workers are skipped in all future epochs.
    alive: bool,
}

/// The slice-execution backend for one run. The pool variant holds
/// channels to workers spawned **once** for the whole run (inside
/// `run`'s `thread::scope`); per-epoch cost is one channel round trip
/// per busy worker, not a thread spawn.
enum WorkerPool<T: SuperTool> {
    /// `threads = 1`: advance slices inline on the supervisor thread.
    Inline,
    /// `threads > 1`: persistent scoped workers fed round-robin.
    Pool { workers: Vec<WorkerLink<T>> },
}

/// Drives one complete SuperPin run. See the crate docs for an example.
pub struct SuperPinRunner<T: SuperTool> {
    cfg: SuperPinConfig,
    scheduler: QuantumScheduler,
    planner: EpochPlanner,
    master: MasterRuntime,
    bubble: Bubble,
    tool_template: T,
    shared: SharedMem,
    /// Live slices in fork order (front = oldest unmerged).
    live: VecDeque<SliceRuntime<T>>,
    finished: Vec<SliceReport>,
    sig_stats: SignatureStats,
    now: u64,
    last_fork: u64,
    master_insts_at_last_fork: u64,
    master_debt: u64,
    master_timeline: Timeline,
    master_exit_cycles: Option<u64>,
    next_slice_num: u32,
    forks_on_timeout: u64,
    forks_on_syscall: u64,
    stall_events: u64,
    stalled: Option<PendingFork>,
    /// Shared compiled-trace index across slices (paper §8 extension).
    /// Slices consult per-epoch snapshots of it, never the live index.
    shared_traces: Option<Arc<SharedTraceIndex>>,
    epochs: u64,
    host_profile: HostProfile,
    /// Chaos failpoint registry (`--chaos-seed`); `None` costs nothing.
    fault: Option<Arc<FailpointRegistry>>,
    /// Checkpoint/retry supervisor; present when supervision is enabled
    /// explicitly or implied by an armed chaos plan.
    supervisor: Option<SliceSupervisor<T>>,
    /// Memory-pressure governor (`--mem-budget`); `None` costs nothing
    /// and leaves every report field identical to an ungoverned run.
    governor: Option<MemoryGovernor>,
    /// Entry count of the last shared-index snapshot handed to slices,
    /// charged against the budget at `SNAPSHOT_ENTRY_BYTES` each.
    last_snapshot_entries: u64,
    /// Incremental resident-byte ledger: per-slice footprints and the
    /// checkpoint/snapshot terms are posted where they change, so
    /// reading governed usage is O(1) in live slices instead of a
    /// from-scratch walk per decision point. Debug builds cross-check
    /// it against the full recompute at every read.
    ledger: ResidentLedger,
    /// Host-side compiled-trace templates shared by every slice engine
    /// (see [`superpin_dbi::engine::Engine::set_trace_templates`]).
    /// Purely a wall-clock accelerator — simulated reports are
    /// unchanged. Disabled under chaos: a clobber-bugged or
    /// fault-injected slice must compile exactly as it would alone.
    trace_templates: Option<superpin_dbi::engine::TraceTemplates<SpSliceTool<T>>>,
    /// Record/replay mode for the run's nondeterministic surface (see
    /// the [`record`](crate::record) module). `Live` costs nothing.
    mode: RunMode,
    /// Whether [`start`](SuperPinRunner::start) has forked the first
    /// slice yet (the steppable API is idempotent about it).
    started: bool,
}

impl<T: SuperTool> SuperPinRunner<T> {
    /// Prepares a run: reserves the memory bubble in the master and wires
    /// up the scheduler. The `process` must be freshly loaded (the first
    /// slice forks from its initial state).
    ///
    /// # Errors
    ///
    /// Returns [`SpError::Mem`] if the bubble range is occupied.
    pub fn new(
        process: Process,
        tool: T,
        shared: SharedMem,
        cfg: SuperPinConfig,
    ) -> Result<SuperPinRunner<T>, SpError> {
        let mut master_process = process;
        let bubble = Bubble::reserve(&mut master_process.mem)?;
        // The budget doubles as the guest kernel's per-process allocation
        // limit: brk/mmap past it return ENOMEM to the guest. Slices
        // inherit the limit through fork.
        master_process.mem.set_mem_limit(cfg.mem_budget);
        let governor = cfg.mem_budget.map(MemoryGovernor::new);
        let fault = cfg.chaos.map(|plan| Arc::new(FailpointRegistry::new(plan)));
        master_process.set_fault_registry(fault.clone());
        let supervisor = cfg
            .supervision_enabled()
            .then(|| SliceSupervisor::new(cfg.watchdog_factor, cfg.max_slice_retries));
        let scheduler = QuantumScheduler::new(cfg.machine, cfg.policy);
        let planner = EpochPlanner::new(cfg.epoch_max_quanta);
        let shared_traces = cfg
            .shared_code_cache
            .then(|| Arc::new(SharedTraceIndex::new()));
        Ok(SuperPinRunner {
            cfg,
            scheduler,
            planner,
            master: MasterRuntime::new(master_process),
            bubble,
            tool_template: tool,
            shared,
            live: VecDeque::new(),
            finished: Vec::new(),
            sig_stats: SignatureStats::default(),
            now: 0,
            last_fork: 0,
            master_insts_at_last_fork: 0,
            master_debt: 0,
            master_timeline: Timeline::new(),
            master_exit_cycles: None,
            next_slice_num: 1,
            forks_on_timeout: 0,
            forks_on_syscall: 0,
            stall_events: 0,
            stalled: None,
            shared_traces,
            epochs: 0,
            host_profile: HostProfile::default(),
            trace_templates: fault
                .is_none()
                .then(|| Arc::new(std::sync::Mutex::new(std::collections::HashMap::new()))),
            fault,
            supervisor,
            governor,
            last_snapshot_entries: 0,
            ledger: ResidentLedger::new(),
            mode: RunMode::Live,
            started: false,
        })
    }

    /// Arms record mode: every nondeterministic decision the run makes
    /// is streamed into `recorder`, in decision order.
    pub fn set_recorder(&mut self, recorder: Box<dyn RunRecorder>) {
        self.mode = RunMode::Record(recorder);
    }

    /// Arms replay mode: nondeterministic decisions are substituted from
    /// `source` instead of being made live. The runner must have been
    /// constructed from the recorded run's recipe (same program, tool,
    /// and config knobs); a mismatch surfaces as
    /// [`SpError::ReplayDivergence`].
    pub fn set_replay(&mut self, source: Box<dyn RunSource>) {
        self.mode = RunMode::Replay(source);
    }

    fn running_count(&self) -> usize {
        self.live
            .iter()
            .filter(|slice| slice.state() == SliceState::Running)
            .count()
    }

    /// A fork wakes the previously sleeping slice, so the running count
    /// grows by one; the limit is the `-spmp` maximum of running slices.
    fn can_fork(&self) -> bool {
        self.running_count() < self.cfg.max_slices
    }

    /// The governed resident-byte total: the master's full resident
    /// set, each live slice's private pages and code cache, retained
    /// supervisor checkpoints, the last shared-index snapshot, and the
    /// shared merge segment. Every term is simulated state.
    ///
    /// The slice/checkpoint/snapshot terms come from the incremental
    /// [`ResidentLedger`] (posted where they change), so this read is
    /// O(1) in live slices; master and shared are O(1)-cheap live
    /// reads. Debug builds cross-check the ledger against the
    /// from-scratch recompute, so any missed posting site fails loudly
    /// instead of drifting.
    fn resident_usage(&self) -> u64 {
        let usage = self.ledger.total_with(
            self.master.process().mem.resident_bytes(),
            self.shared.resident_bytes(),
        );
        debug_assert_eq!(
            usage,
            self.resident_usage_full(),
            "resident ledger drifted from the full recompute"
        );
        usage
    }

    /// The from-scratch O(live-slices) recompute of the governed total —
    /// the debug-build cross-check for the incremental ledger.
    fn resident_usage_full(&self) -> u64 {
        let mut usage = self.master.process().mem.resident_bytes();
        for slice in &self.live {
            usage += Self::slice_footprint(slice);
        }
        if let Some(sup) = &self.supervisor {
            usage += sup.retained_checkpoint_bytes();
        }
        usage += self.last_snapshot_entries * SNAPSHOT_ENTRY_BYTES;
        usage += self.shared.resident_bytes();
        usage
    }

    /// One slice's governed footprint: private resident pages plus its
    /// code cache at the flat per-instruction byte cost.
    fn slice_footprint(slice: &SliceRuntime<T>) -> u64 {
        slice.private_resident_bytes() + slice.cache_resident_insts() as u64 * COMPILED_INST_BYTES
    }

    /// Posts one slice's current footprint into the incremental ledger.
    fn post_slice_footprint(&mut self, num: u32) {
        if let Some(slice) = self.live.iter().find(|slice| slice.num() == num) {
            let bytes = Self::slice_footprint(slice);
            self.ledger.post_slice(num, bytes);
        }
    }

    /// Re-posts every live slice's footprint and the checkpoint term —
    /// the once-per-epoch settlement after the slice phase (footprints
    /// grow inside workers, where the ledger cannot be touched).
    fn settle_ledger(&mut self) {
        let postings: Vec<(u32, u64)> = self
            .live
            .iter()
            .map(|slice| (slice.num(), Self::slice_footprint(slice)))
            .collect();
        for (num, bytes) in postings {
            self.ledger.post_slice(num, bytes);
        }
        self.post_checkpoint_bytes();
    }

    /// Posts the supervisor's current retained-checkpoint total.
    fn post_checkpoint_bytes(&mut self) {
        let bytes = self
            .supervisor
            .as_ref()
            .map_or(0, SliceSupervisor::retained_checkpoint_bytes);
        self.ledger.post_checkpoints(bytes);
    }

    /// Samples the ledger into the governor's high-water mark. A no-op
    /// (not even a ledger walk) when no budget is set.
    fn observe_usage(&mut self) {
        if self.governor.is_some() {
            let usage = self.resident_usage();
            if let Some(gov) = self.governor.as_mut() {
                gov.observe(usage);
            }
        }
    }

    /// Bytes the next fork will charge up front: the flat fork cost
    /// plus — under supervision — the materialized checkpoint of the
    /// currently sleeping slice, which `guard` deep-copies the moment
    /// the fork wakes it.
    fn fork_estimate(&self) -> u64 {
        let checkpoint = if self.supervisor.is_some() {
            self.live
                .back()
                .filter(|prev| prev.state() == SliceState::Sleeping)
                .map_or(0, SliceRuntime::full_resident_bytes)
        } else {
            0
        };
        FORK_COST_BYTES + checkpoint
    }

    /// Memory-governed admission check for one fork: dispatches on the
    /// run mode. Without a governor every fork is a plain `Admit` and no
    /// event is recorded (an ungoverned run has no admission
    /// nondeterminism, so record and replay streams stay aligned).
    fn admission_check(&mut self) -> Result<Admission, SpError> {
        if self.governor.is_none() {
            return Ok(Admission::Admit);
        }
        if self.mode.is_replay() {
            return self.admission_replay();
        }
        let (decision, dropped, evicted) = self.admit_fork_live();
        if let RunMode::Record(recorder) = &mut self.mode {
            recorder.record(NondetEvent::Admission {
                decision,
                dropped,
                evicted,
            });
        }
        Ok(decision)
    }

    /// Replay-side admission: substitutes the recorded decision and
    /// re-applies the recorded eviction-ladder actions (checkpoint drops
    /// and cache flushes) with the same bookkeeping the live ladder
    /// performs, instead of re-walking the ladder.
    fn admission_replay(&mut self) -> Result<Admission, SpError> {
        let event = match &mut self.mode {
            RunMode::Replay(source) => source.next_event(),
            _ => unreachable!("checked by caller"),
        };
        let (decision, dropped, evicted) = match event {
            Some(NondetEvent::Admission {
                decision,
                dropped,
                evicted,
            }) => (decision, dropped, evicted),
            Some(other) => {
                return Err(SpError::ReplayDivergence {
                    context: "fork admission",
                    detail: format!(
                        "expected an admission record for slice {}, log has a {} event",
                        self.next_slice_num,
                        other.kind()
                    ),
                })
            }
            None => {
                return Err(SpError::ReplayDivergence {
                    context: "fork admission",
                    detail: format!("log exhausted at slice {} admission", self.next_slice_num),
                })
            }
        };
        let usage = self.resident_usage();
        let gov = self.governor.as_mut().expect("governor present");
        gov.observe(usage);
        for num in dropped {
            let Some(sup) = self.supervisor.as_mut() else {
                break;
            };
            if sup.drop_checkpoint(num) > 0 {
                self.governor
                    .as_mut()
                    .expect("governor present")
                    .note_checkpoint_dropped();
            }
        }
        self.post_checkpoint_bytes();
        for num in evicted {
            let Some(slice) = self.live.iter_mut().find(|slice| slice.num() == num) else {
                continue;
            };
            if slice.evict_code_cache() > 0 {
                if let Some(sup) = &mut self.supervisor {
                    sup.journal_evict(num);
                }
                self.governor
                    .as_mut()
                    .expect("governor present")
                    .note_cache_evicted();
                self.post_slice_footprint(num);
            }
        }
        let gov = self.governor.as_mut().expect("governor present");
        if decision == Admission::Defer {
            gov.note_deferral();
        } else {
            gov.end_deferral();
        }
        Ok(decision)
    }

    /// Live memory-governed admission check for one fork, walking the
    /// eviction ladder under pressure (see the `governor` module docs).
    /// Called only when a slot is free and a governor is armed.
    /// Deterministic: every input is simulated state and the check runs
    /// at control steps on the supervisor thread. Returns the decision
    /// plus the ladder's actions (checkpoints dropped, caches evicted)
    /// so record mode can log them.
    fn admit_fork_live(&mut self) -> (Admission, Vec<u32>, Vec<u32>) {
        let mut dropped_log: Vec<u32> = Vec::new();
        let mut evicted_log: Vec<u32> = Vec::new();
        let est = self.fork_estimate();
        let mut usage = self.resident_usage();
        let gov = self.governor.as_mut().expect("governor present");
        gov.observe(usage);
        if !gov.over_budget(usage, est) {
            gov.end_deferral();
            return (Admission::Admit, dropped_log, evicted_log);
        }
        // Rung 1: drop retained checkpoints of committed slices. A
        // `Done` slice is never condemned, so its checkpoint is pure
        // insurance the run no longer needs.
        let done: Vec<u32> = if self.supervisor.is_some() {
            self.live
                .iter()
                .filter(|slice| slice.state() == SliceState::Done)
                .map(SliceRuntime::num)
                .collect()
        } else {
            Vec::new()
        };
        for num in done {
            if !self
                .governor
                .as_ref()
                .expect("governor present")
                .over_budget(usage, est)
            {
                break;
            }
            let Some(sup) = self.supervisor.as_mut() else {
                break;
            };
            let freed = sup.drop_checkpoint(num);
            if freed > 0 {
                usage = usage.saturating_sub(freed);
                dropped_log.push(num);
                self.governor
                    .as_mut()
                    .expect("governor present")
                    .note_checkpoint_dropped();
                self.post_checkpoint_bytes();
            }
        }
        // Rung 2: flush cold code caches, coldest first (LRU by the
        // slice's last-active virtual time; slice number breaks ties).
        // Journaled so a condemned slice's rebuild replays the eviction
        // at the same point in its schedule.
        let mut cold: Vec<(u64, u32)> = self
            .live
            .iter()
            .filter(|slice| slice.cache_resident_insts() > 0)
            .map(|slice| (slice.last_active_cycles(), slice.num()))
            .collect();
        cold.sort_unstable();
        for (_, num) in cold {
            if !self
                .governor
                .as_ref()
                .expect("governor present")
                .over_budget(usage, est)
            {
                break;
            }
            let slice = self
                .live
                .iter_mut()
                .find(|slice| slice.num() == num)
                .expect("eviction candidate is live");
            let freed_insts = slice.evict_code_cache();
            if freed_insts > 0 {
                usage = usage.saturating_sub(freed_insts as u64 * COMPILED_INST_BYTES);
                evicted_log.push(num);
                if let Some(sup) = &mut self.supervisor {
                    sup.journal_evict(num);
                }
                self.governor
                    .as_mut()
                    .expect("governor present")
                    .note_cache_evicted();
                self.post_slice_footprint(num);
            }
        }
        let gov = self.governor.as_mut().expect("governor present");
        if !gov.over_budget(usage, est) {
            gov.end_deferral();
            return (Admission::Admit, dropped_log, evicted_log);
        }
        // Rung 3: still over budget. Defer while anything non-sleeping
        // can free memory by completing; otherwise deferring deadlocks
        // (the back slice only wakes at the next fork), so admit the
        // fork degraded to inline serial execution.
        let decision = if self
            .live
            .iter()
            .any(|slice| slice.state() != SliceState::Sleeping)
        {
            gov.note_deferral();
            Admission::Defer
        } else {
            gov.end_deferral();
            Admission::AdmitDegraded
        };
        (decision, dropped_log, evicted_log)
    }

    /// Forks a new slice from the master's current state and wakes the
    /// previous slice with `boundary` + the span's records.
    ///
    /// With chaos armed, the fork consults the `vm.fork.cow` failpoint;
    /// an injected failure is retried with a fresh key (the retry budget
    /// from `max_slice_retries`), then bypassed outright — fork faults
    /// are transient by definition, so the degraded path is simply an
    /// unchecked fork. The slice number is reserved before the first
    /// attempt, so retries never perturb slice numbering.
    fn fork_slice(&mut self, boundary: Option<Boundary>) -> Result<(), SpError> {
        let num = self.next_slice_num;
        let mut slice = if self.fault.is_some() {
            let mut attempt: u64 = 0;
            loop {
                if attempt > self.cfg.max_slice_retries as u64 {
                    break SliceRuntime::spawn(
                        num,
                        self.master.process(),
                        &self.tool_template,
                        &self.bubble,
                        &self.cfg,
                        self.now,
                    )?;
                }
                let key = ((num as u64) << 16) | attempt;
                match SliceRuntime::spawn_checked(
                    num,
                    self.master.process(),
                    &self.tool_template,
                    &self.bubble,
                    &self.cfg,
                    self.now,
                    key,
                ) {
                    Ok(slice) => break slice,
                    Err(SpError::Vm(VmError::FaultInjected { .. })) => {
                        if let Some(sup) = &mut self.supervisor {
                            sup.note_transient_retry();
                        }
                        attempt += 1;
                    }
                    Err(err) => return Err(err),
                }
            }
        } else {
            SliceRuntime::spawn(
                num,
                self.master.process(),
                &self.tool_template,
                &self.bubble,
                &self.cfg,
                self.now,
            )?
        };
        self.next_slice_num += 1;
        if let Some(templates) = &self.trace_templates {
            slice.set_trace_templates(Arc::clone(templates));
        }
        // Real fork(2) write-protects the parent too: the master's next
        // write to each currently resident page takes a COW fault.
        self.master.process_mut().mem.mark_cow_shared();
        if let Some(index) = &self.shared_traces {
            slice.enter_shared_epoch(index.snapshot());
        }
        let records = self.master.take_span_records();
        let span = self.master.process().inst_count() - self.master_insts_at_last_fork;
        if let Some(prev) = self.live.back_mut() {
            let boundary = boundary.expect("boundary required when a slice is sleeping");
            prev.wake(boundary, records, self.now);
            prev.set_span_insts(span);
            if let Some(sup) = &mut self.supervisor {
                sup.guard(prev);
                if let Some(registry) = &self.fault {
                    prev.arm_chaos(Some(Arc::clone(registry)), 0);
                }
            }
        }
        self.live.push_back(slice);
        let newest = self
            .live
            .back()
            .map(SliceRuntime::num)
            .expect("just pushed");
        self.post_slice_footprint(newest);
        // Waking the previous slice materializes its supervisor
        // checkpoint; settle the checkpoint term immediately so the
        // admission check that follows this fork sees it.
        self.post_checkpoint_bytes();
        self.last_fork = self.now;
        self.master_insts_at_last_fork = self.master.process().inst_count();
        self.master_debt += self.cfg.cost.fork_base;
        Ok(())
    }

    /// Delivers the final boundary to the last sleeping slice when the
    /// master exits at virtual time `now_cycles`.
    fn deliver_final_boundary(&mut self, now_cycles: u64) {
        let records = self.master.take_span_records();
        let span = self.master.process().inst_count() - self.master_insts_at_last_fork;
        if let Some(last) = self.live.back_mut() {
            if last.state() == SliceState::Sleeping {
                last.wake(Boundary::ProgramExit, records, now_cycles);
                last.set_span_insts(span);
                if let Some(sup) = &mut self.supervisor {
                    sup.guard(last);
                    if let Some(registry) = &self.fault {
                        last.arm_chaos(Some(Arc::clone(registry)), 0);
                    }
                }
            }
        }
        self.post_checkpoint_bytes();
    }

    /// Merges completed slices in slice order, reaping their runtimes.
    fn merge_ready(&mut self) {
        while let Some(front) = self.live.front() {
            if front.state() != SliceState::Done {
                break;
            }
            let mut slice = self.live.pop_front().expect("front exists");
            let num = slice.num();
            self.ledger.retire_slice(num);
            if let Some(sup) = &mut self.supervisor {
                sup.release(num);
            }
            if let Some(gov) = &mut self.governor {
                gov.release(num);
            }
            slice.tool_mut().inner.on_slice_end(num, &self.shared);
            slice.set_merged();
            self.sig_stats.absorb(&slice.tool().sig_stats);
            self.finished.push(SliceReport {
                num,
                insts: slice.engine().process().inst_count(),
                wake_cycles: slice.wake_cycles().unwrap_or(slice.start_cycles()),
                records_played: slice.records_played(),
                end: slice.end_reason().expect("done slice has a reason"),
                start_cycles: slice.start_cycles(),
                end_cycles: slice.end_cycles().expect("done slice has an end"),
                engine: slice.engine().stats(),
                cache: slice.engine().cache_stats(),
                cow_copies: slice.engine().process().mem.stats().cow_copies,
            });
        }
        // `release` lets go of merged slices' guards (checkpoints
        // included), so settle the checkpoint term once per sweep.
        self.post_checkpoint_bytes();
    }

    /// Stalls the master on a fork it cannot take yet (no free slot, or
    /// the memory governor deferred admission), counting one stall
    /// episode per continuous stretch.
    fn stall_fork(&mut self, pending: PendingFork) {
        if self.stalled.is_none() {
            self.stall_events += 1;
        }
        self.stalled = Some(pending);
    }

    /// Marks the slice about to be forked as governor-degraded
    /// (eviction-ladder rung 3): it will run pinned to the supervisor
    /// thread for its whole life, like a supervisor-degraded slice.
    fn pin_next_fork(&mut self) {
        let num = self.next_slice_num;
        if let Some(gov) = self.governor.as_mut() {
            gov.degrade(num);
        }
    }

    /// Handles fork triggers at an epoch barrier: resolves a pending
    /// forced-fork syscall, or performs a timer fork, stalling the master
    /// when no slot is free or the memory governor defers admission.
    fn control_step(&mut self) -> Result<(), SpError> {
        if self.master.exited() {
            self.stalled = None;
            return Ok(());
        }
        if self.master.pending_force() {
            if !self.can_fork() {
                self.stall_fork(PendingFork::Syscall);
                return Ok(());
            }
            match self.admission_check()? {
                Admission::Defer => self.stall_fork(PendingFork::Syscall),
                admission => {
                    self.stalled = None;
                    if admission == Admission::AdmitDegraded {
                        self.pin_next_fork();
                    }
                    let cycles =
                        self.master
                            .resolve_forced_syscall(self.now, &self.cfg, &mut self.mode)?;
                    self.master_debt += cycles;
                    self.forks_on_syscall += 1;
                    self.fork_slice(Some(Boundary::SyscallEnd))?;
                    if self.master.exited() {
                        self.note_master_exit(self.now);
                    }
                }
            }
            return Ok(());
        }
        let timeslice = self.cfg.effective_timeslice(self.now);
        // The timer only creates a slice once the master has made forward
        // progress since the last fork — a zero-length slice would be
        // pure overhead (and its boundary state would equal its start
        // state).
        let progressed = self.master.process().inst_count() > self.master_insts_at_last_fork;
        if progressed && self.now.saturating_sub(self.last_fork) >= timeslice {
            if !self.can_fork() {
                self.stall_fork(PendingFork::Timer);
                return Ok(());
            }
            match self.admission_check()? {
                Admission::Defer => self.stall_fork(PendingFork::Timer),
                admission => {
                    self.stalled = None;
                    if admission == Admission::AdmitDegraded {
                        self.pin_next_fork();
                    }
                    let signature = Signature::capture(self.master.process());
                    self.forks_on_timeout += 1;
                    self.fork_slice(Some(Boundary::Signature(Box::new(signature))))?;
                }
            }
        } else {
            self.stalled = None;
        }
        Ok(())
    }

    /// Records the master's exit during the quantum starting at
    /// `quantum_start` and wakes the final slice.
    fn note_master_exit(&mut self, quantum_start: u64) {
        if self.master_exit_cycles.is_none() {
            self.master_exit_cycles = Some(quantum_start + self.cfg.quantum_cycles.max(1));
            self.deliver_final_boundary(quantum_start);
        }
    }

    /// Quanta until the timer-fork deadline, evaluated against the
    /// (possibly adaptive) timeslice at each candidate barrier time.
    /// `None` when no deadline falls within the epoch cap.
    fn fork_deadline_quanta(&self, quantum: u64) -> Option<u64> {
        (1..=self.planner.max_quanta).find(|&k| {
            let barrier = self.now + k * quantum;
            barrier.saturating_sub(self.last_fork) >= self.cfg.effective_timeslice(barrier)
        })
    }

    /// Advances the master `planned` quanta (serially, on the supervisor
    /// thread), truncating the epoch at the quantum where a master event
    /// fires. Returns `(epoch_len, run_quanta_for_timeline)`.
    fn advance_master_epoch(
        &mut self,
        budget: u64,
        planned: u64,
        quantum: u64,
    ) -> Result<(u64, u64), SpError> {
        for j in 0..planned {
            let quantum_start = self.now + j * quantum;
            // Pay fork/ptrace debt out of this quantum first.
            let pay = self.master_debt.min(budget);
            self.master_debt -= pay;
            let remaining = budget - pay;
            if remaining == 0 {
                continue;
            }
            let (used, event) =
                self.master
                    .advance(remaining, quantum_start, &self.cfg, &mut self.mode)?;
            // Overshoot (a serviced syscall may exceed the budget) is
            // owed to future quanta.
            self.master_debt += used.saturating_sub(remaining);
            match event {
                MasterEvent::Exited => {
                    self.note_master_exit(quantum_start);
                    // The exit quantum is not recorded as master runtime.
                    return Ok((j + 1, j));
                }
                MasterEvent::NeedForkAtSyscall => {
                    // Barrier here so the control step resolves the fork
                    // exactly one quantum after the syscall parked — the
                    // same instant the per-quantum loop would.
                    return Ok((j + 1, j + 1));
                }
                MasterEvent::None => {}
            }
        }
        Ok((planned, planned))
    }

    /// Advances every running slice through the epoch — inline on the
    /// supervisor thread, or fanned out over the persistent worker pool.
    /// Both paths drive the identical per-quantum
    /// [`SliceRuntime::advance_epoch`] loop, so they are bit-equivalent.
    ///
    /// Returns the failed slices (in queue order) when supervision is on
    /// so the barrier can repair them; without supervision the first
    /// failure by queue order — or a dead worker — is a run-fatal typed
    /// error ([`SpError::WorkerLost`], never a panic).
    fn advance_slices_epoch(
        &mut self,
        pool: &mut WorkerPool<T>,
        budgets: &[(u32, u64)],
        quanta: u64,
        epoch_start: u64,
        quantum: u64,
    ) -> Result<Vec<(u32, SpError)>, SpError> {
        let budget_of = |num: u32| budgets.iter().find(|&&(n, _)| n == num).map(|&(_, b)| b);
        let supervising = self.supervisor.is_some();
        // Degraded slices are pinned to the supervisor thread — both the
        // supervisor's retry-exhausted slices and the governor's
        // pressure-degraded admissions.
        let mut pinned = self
            .supervisor
            .as_ref()
            .map(SliceSupervisor::degraded_set)
            .unwrap_or_default();
        if let Some(gov) = &self.governor {
            pinned.extend(gov.degraded_set());
        }
        let poolable = self
            .live
            .iter()
            .filter(|slice| {
                slice.state() == SliceState::Running
                    && budget_of(slice.num()).is_some()
                    && !pinned.contains(&slice.num())
            })
            .count();
        let workers = match pool {
            WorkerPool::Pool { workers }
                if poolable >= 2 && workers.iter().any(|link| link.alive) =>
            {
                workers
            }
            // A single poolable slice gains nothing from a channel round
            // trip; threads = 1 (and a fully dead pool) always land here.
            _ => {
                let mut failures = Vec::new();
                for slice in self.live.iter_mut() {
                    if slice.state() != SliceState::Running {
                        continue;
                    }
                    let Some(budget) = budget_of(slice.num()) else {
                        continue;
                    };
                    if let Err(err) = slice.advance_epoch(budget, quanta, epoch_start, quantum) {
                        if supervising {
                            failures.push((slice.num(), err));
                        } else {
                            return Err(err);
                        }
                    }
                }
                return Ok(failures);
            }
        };
        // Move each poolable slice out of the queue into a per-worker
        // batch (round-robin over the *alive* workers, by value), leave a
        // placeholder, and reassemble the queue in original order at the
        // barrier. One message each way per busy worker.
        let mut failures: Vec<(usize, u32, SpError)> = Vec::new();
        let mut slots: Vec<Option<SliceRuntime<T>>> = self.live.drain(..).map(Some).collect();
        let alive: Vec<usize> = workers
            .iter()
            .enumerate()
            .filter(|(_, link)| link.alive)
            .map(|(idx, _)| idx)
            .collect();
        let mut batches: Vec<Vec<(usize, SliceRuntime<T>, u64)>> =
            alive.iter().map(|_| Vec::new()).collect();
        let mut inline_orders: Vec<(usize, u64)> = Vec::new();
        let mut sent = 0usize;
        for (order, slot) in slots.iter_mut().enumerate() {
            let eligible = slot
                .as_ref()
                .is_some_and(|slice| slice.state() == SliceState::Running);
            if !eligible {
                continue;
            }
            let num = slot.as_ref().map(SliceRuntime::num).expect("slot occupied");
            let Some(budget) = budget_of(num) else {
                continue;
            };
            if pinned.contains(&num) {
                inline_orders.push((order, budget));
                continue;
            }
            let slice = slot.take().expect("eligibility checked");
            batches[sent % alive.len()].push((order, slice, budget));
            sent += 1;
        }
        // Dispatch. A failed send returns the batch in the error — those
        // slices never left this thread, so run them inline and retire
        // the worker.
        let mut busy: Vec<(usize, Vec<(usize, u32)>)> = Vec::new();
        for (&widx, jobs) in alive.iter().zip(batches) {
            if jobs.is_empty() {
                continue;
            }
            let manifest: Vec<(usize, u32)> = jobs
                .iter()
                .map(|(order, slice, _)| (*order, slice.num()))
                .collect();
            let chaos_key = ((widx as u64) << 32) ^ self.epochs;
            let batch = EpochBatch {
                jobs,
                quanta,
                epoch_start,
                quantum,
                chaos_key,
            };
            match workers[widx].sender.send(batch) {
                Ok(()) => busy.push((widx, manifest)),
                Err(mpsc::SendError(returned)) => {
                    workers[widx].alive = false;
                    if !supervising {
                        return Err(SpError::WorkerLost { worker: widx });
                    }
                    for (order, mut slice, budget) in returned.jobs {
                        let outcome = slice.advance_epoch(budget, quanta, epoch_start, quantum);
                        let num = slice.num();
                        slots[order] = Some(slice);
                        if let Err(err) = outcome {
                            failures.push((order, num, err));
                        }
                    }
                }
            }
        }
        // Degraded slices run on this thread while the workers churn.
        for (order, budget) in inline_orders {
            let slice = slots[order].as_mut().expect("pinned slice stays put");
            if let Err(err) = slice.advance_epoch(budget, quanta, epoch_start, quantum) {
                failures.push((order, slice.num(), err));
            }
        }
        // Collect. A disconnected result channel means the worker died
        // *holding* its batch: rebuild every slice in its manifest from
        // checkpoint + journal (the journal already includes this epoch).
        for (widx, manifest) in busy {
            match workers[widx].results.recv() {
                Ok(done) => {
                    for (order, slice, outcome) in done {
                        let num = slice.num();
                        slots[order] = Some(slice);
                        if let Err(err) = outcome {
                            failures.push((order, num, err));
                        }
                    }
                }
                Err(mpsc::RecvError) => {
                    workers[widx].alive = false;
                    if !supervising {
                        return Err(SpError::WorkerLost { worker: widx });
                    }
                    for (order, num) in manifest {
                        let repaired =
                            self.repair_slice(num, SpError::WorkerLost { worker: widx })?;
                        slots[order] = Some(repaired);
                    }
                }
            }
        }
        self.live.extend(
            slots
                .into_iter()
                .map(|slot| slot.expect("all slices returned")),
        );
        failures.sort_by_key(|&(order, _, _)| order);
        if !supervising {
            return match failures.into_iter().next() {
                Some((_, _, err)) => Err(err),
                None => Ok(Vec::new()),
            };
        }
        Ok(failures
            .into_iter()
            .map(|(_, num, err)| (num, err))
            .collect())
    }

    /// Condemns `num`, charges its retry budget, and rebuilds it from
    /// its checkpoint + journal. A retry re-arms injection with a fresh
    /// salt; an exhausted slice comes back injection-free and pinned to
    /// the supervisor thread. Failing *while* degraded — or during the
    /// injection-free replay itself — is a genuine defect.
    fn repair_slice(&mut self, num: u32, cause: SpError) -> Result<SliceRuntime<T>, SpError> {
        let sup = self.supervisor.as_mut().expect("supervision enabled");
        let verdict = sup.condemn(num);
        if verdict == Verdict::Unrecoverable {
            return Err(SpError::Unrecoverable {
                slice: num,
                cause: Box::new(cause),
            });
        }
        let sup = self.supervisor.as_ref().expect("supervision enabled");
        let mut rebuilt = sup.rebuild(num).map_err(|err| SpError::Unrecoverable {
            slice: num,
            cause: Box::new(err),
        })?;
        if let (Verdict::Retry { salt }, Some(registry)) = (verdict, &self.fault) {
            rebuilt.arm_chaos(Some(Arc::clone(registry)), salt);
        }
        Ok(rebuilt)
    }

    /// Swaps a repaired slice into its queue position.
    fn replace_slice(&mut self, repaired: SliceRuntime<T>) {
        let num = repaired.num();
        let slot = self
            .live
            .iter_mut()
            .find(|slice| slice.num() == num)
            .expect("repaired slice is live");
        *slot = repaired;
    }

    /// The supervisor's barrier inspection, run **before** virtual time
    /// advances and slices merge: repair explicit failures from the
    /// slice phase, then sweep every live slice for silent poison (the
    /// detector's injected-fault counter), overshoot past the known
    /// span, and watchdog expiry. Every condemned slice is replaced by
    /// its injection-off replay *this* barrier, so downstream publish
    /// and merge decisions are made from fault-free state — recovery is
    /// invisible to the simulation by construction.
    fn supervise_barrier(&mut self, failures: Vec<(u32, SpError)>) -> Result<(), SpError> {
        if self.supervisor.is_none() {
            debug_assert!(failures.is_empty());
            return Ok(());
        }
        for (num, err) in failures {
            let repaired = self.repair_slice(num, err)?;
            self.replace_slice(repaired);
        }
        let nums: Vec<u32> = self.live.iter().map(SliceRuntime::num).collect();
        for num in nums {
            let Some(slice) = self.live.iter().find(|slice| slice.num() == num) else {
                continue;
            };
            let sup = self.supervisor.as_ref().expect("supervision enabled");
            if sup.is_degraded(num) {
                continue;
            }
            let poisoned = slice.injected_faults() > 0;
            let eta = slice.eta();
            let running = slice.state() == SliceState::Running;
            let overshoot = running && eta.insts_total > 0 && eta.insts_done > eta.insts_total;
            let expired = running && sup.watchdog_expired(num);
            let cause = if poisoned {
                Some(SpError::Vm(VmError::FaultInjected {
                    site: "core.signature",
                }))
            } else if overshoot || expired {
                Some(SpError::Runaway {
                    slice: num,
                    insts: eta.insts_done,
                    span: eta.insts_total,
                })
            } else {
                None
            };
            if let Some(cause) = cause {
                let repaired = self.repair_slice(num, cause)?;
                self.replace_slice(repaired);
            }
        }
        Ok(())
    }

    /// Epoch-barrier shared-cache synchronization: publish every slice's
    /// fresh compilations into the sharded index **in slice order**, then
    /// hand all slices one common snapshot for the next epoch.
    fn sync_shared_cache(&mut self) {
        let Some(index) = &self.shared_traces else {
            return;
        };
        for slice in self.live.iter_mut() {
            let fresh = slice.take_fresh_traces();
            // Failpoint: a publish "fails" and is simply retried — the
            // sharded index is idempotent, so the doubled publish is the
            // whole recovery and the net effect on the report is zero.
            if let (Some(sup), Some(registry)) = (&mut self.supervisor, &self.fault) {
                let key = ((slice.num() as u64) << 16) ^ self.epochs;
                if registry.fire(Site::SharedIndexPublish, key) {
                    sup.note_transient_retry();
                    index.publish(fresh.iter().copied());
                }
            }
            index.publish(fresh);
        }
        let snapshot = index.snapshot();
        self.last_snapshot_entries = snapshot.len() as u64;
        self.ledger
            .post_snapshot(self.last_snapshot_entries * SNAPSHOT_ENTRY_BYTES);
        for slice in self.live.iter_mut() {
            slice.enter_shared_epoch(Arc::clone(&snapshot));
            if let Some(sup) = &mut self.supervisor {
                sup.journal_snapshot(slice.num(), Arc::clone(&snapshot));
            }
        }
    }

    /// Runs the full simulation to completion and produces the report.
    ///
    /// With `threads > 1` this spawns the worker pool **once** (scoped,
    /// std-only) and keeps it alive for the whole run; the epoch loop
    /// itself is identical for every backend.
    ///
    /// # Errors
    ///
    /// Propagates guest errors and slice-divergence detections.
    pub fn run(self) -> Result<SuperPinReport, SpError> {
        self.run_profiled().map(|(report, _)| report)
    }

    /// Like [`run`](SuperPinRunner::run), but also returns the
    /// host-side [`HostProfile`] phase timing.
    ///
    /// # Errors
    ///
    /// Propagates guest errors and slice-divergence detections.
    pub fn run_profiled(mut self) -> Result<(SuperPinReport, HostProfile), SpError> {
        self.start()?;

        // More workers than the `-spmp` cap can never be fed.
        let workers = self.cfg.threads.min(self.cfg.max_slices);
        if workers <= 1 {
            let report = self.run_epochs(&mut WorkerPool::Inline)?;
            return Ok((report, self.host_profile));
        }
        let chaos = self.fault.clone();
        let report = std::thread::scope(|scope| {
            let links = (0..workers)
                .map(|_| {
                    let (tx, rx) = mpsc::channel::<EpochBatch<T>>();
                    let (result_tx, results) = mpsc::channel::<BatchDone<T>>();
                    let chaos = chaos.clone();
                    scope.spawn(move || {
                        while let Ok(batch) = rx.recv() {
                            let EpochBatch {
                                jobs,
                                quanta,
                                epoch_start,
                                quantum,
                                chaos_key,
                            } = batch;
                            // Failpoint: simulated worker death. The batch
                            // is swallowed and both channels drop; the
                            // supervisor sees `Disconnected` and rebuilds
                            // every slice in the manifest.
                            if let Some(registry) = &chaos {
                                if registry.fire(Site::ParallelWorkerChannel, chaos_key) {
                                    break;
                                }
                            }
                            let mut done = Vec::with_capacity(jobs.len());
                            for (order, mut slice, budget) in jobs {
                                let outcome =
                                    slice.advance_epoch(budget, quanta, epoch_start, quantum);
                                done.push((order, slice, outcome));
                            }
                            if result_tx.send(done).is_err() {
                                break;
                            }
                        }
                    });
                    WorkerLink {
                        sender: tx,
                        results,
                        alive: true,
                    }
                })
                .collect();
            let mut pool = WorkerPool::Pool { workers: links };
            self.run_epochs(&mut pool)
            // `pool` drops at the end of this closure, disconnecting the
            // job channels; workers see the hangup and exit before the
            // scope joins them.
        })?;
        Ok((report, self.host_profile))
    }

    /// The epoch loop (see the module docs for the three-phase shape).
    fn run_epochs(&mut self, pool: &mut WorkerPool<T>) -> Result<SuperPinReport, SpError> {
        while self.step_epoch(pool)? {}
        self.finalize()
    }

    /// Begins the run: forks the first slice ("at the start of
    /// execution, the application forks off its first instrumented
    /// timeslice", paper §3). Idempotent — [`run`](SuperPinRunner::run)
    /// and the steppable API both funnel through here.
    ///
    /// # Errors
    ///
    /// Propagates slice-setup errors.
    pub fn start(&mut self) -> Result<(), SpError> {
        if !self.started {
            self.started = true;
            self.fork_slice(None)?;
        }
        Ok(())
    }

    /// Executes exactly one epoch inline on the calling thread (the
    /// `threads = 1` backend), starting the run if needed. Returns
    /// whether the run can make further progress; once it returns
    /// `false`, [`finish`](SuperPinRunner::finish) renders the report.
    ///
    /// This is the lockstep surface the divergence differ drives: after
    /// each step, [`probe`](SuperPinRunner::probe) exposes the
    /// epoch-barrier state for comparison against a twin run.
    ///
    /// # Errors
    ///
    /// Propagates guest errors and replay divergences.
    pub fn step_serial(&mut self) -> Result<bool, SpError> {
        self.start()?;
        self.step_epoch(&mut WorkerPool::Inline)
    }

    /// Renders the final report once [`step_serial`](SuperPinRunner::step_serial)
    /// has returned `false`.
    ///
    /// # Errors
    ///
    /// Propagates replay divergences surfaced at finalization.
    pub fn finish(&mut self) -> Result<SuperPinReport, SpError> {
        self.finalize()
    }

    /// Snapshots the run's observable state at the current epoch
    /// barrier: virtual time, the master's architectural state, every
    /// live slice's progress, and the reports of already-merged slices.
    pub fn probe(&self) -> RunProbe {
        let master = self.master.process();
        RunProbe {
            now: self.now,
            epochs: self.epochs,
            quantum: self.cfg.quantum_cycles.max(1),
            master_exited: self.master.exited(),
            master_insts: master.inst_count(),
            master_pc: master.cpu.pc,
            master_regs: master.cpu.regs.snapshot(),
            master_mem_digest: master.mem.content_digest(),
            slices: self
                .live
                .iter()
                .map(|slice| {
                    let process = slice.engine().process();
                    SliceProbe {
                        num: slice.num(),
                        insts: process.inst_count(),
                        pc: process.cpu.pc,
                        mem_digest: process.mem.content_digest(),
                    }
                })
                .collect(),
            merged: self.finished.clone(),
        }
    }

    /// The run's virtual clock in cycles — how much simulated time this
    /// run has consumed so far. O(1), unlike the full
    /// [`probe`](SuperPinRunner::probe) snapshot, so a fleet scheduler
    /// can charge fair-share virtual time after every epoch.
    pub fn now_cycles(&self) -> u64 {
        self.now
    }

    /// The run's current governed resident-byte total (master, slices,
    /// checkpoints, snapshot, shared areas), valid at epoch barriers —
    /// the sample a fleet scheduler feeds its per-tenant ledger. Works
    /// with or without a per-run governor; O(1) in live slices via the
    /// incremental ledger.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_usage()
    }

    /// Fleet-ladder rung 1, driven from outside: evicts this run's
    /// code caches coldest-first (LRU by last-active virtual time,
    /// slice number on ties) until at least `target_bytes` are freed or
    /// nothing evictable remains. Returns the simulated bytes freed.
    ///
    /// Bookkeeping matches the in-run ladder exactly — evictions are
    /// journaled for supervised rebuilds and counted by the per-run
    /// governor when one is armed — so a fleet-squeezed run stays
    /// bit-replayable. Call only at epoch barriers (between
    /// [`step_serial`](SuperPinRunner::step_serial) calls).
    pub fn fleet_evict_caches(&mut self, target_bytes: u64) -> u64 {
        let mut cold: Vec<(u64, u32)> = self
            .live
            .iter()
            .filter(|slice| slice.cache_resident_insts() > 0)
            .map(|slice| (slice.last_active_cycles(), slice.num()))
            .collect();
        cold.sort_unstable();
        let mut freed = 0u64;
        for (_, num) in cold {
            if freed >= target_bytes {
                break;
            }
            let slice = self
                .live
                .iter_mut()
                .find(|slice| slice.num() == num)
                .expect("eviction candidate is live");
            let freed_insts = slice.evict_code_cache();
            if freed_insts > 0 {
                freed += freed_insts as u64 * COMPILED_INST_BYTES;
                if let Some(sup) = &mut self.supervisor {
                    sup.journal_evict(num);
                }
                if let Some(gov) = &mut self.governor {
                    gov.note_cache_evicted();
                }
                self.post_slice_footprint(num);
            }
        }
        freed
    }

    /// Whether any live slice still holds an evictable code cache —
    /// `true` means [`fleet_evict_caches`](SuperPinRunner::fleet_evict_caches)
    /// can free memory without degrading anyone.
    pub fn has_evictable_cache(&self) -> bool {
        self.live
            .iter()
            .any(|slice| slice.cache_resident_insts() > 0)
    }

    /// One iteration of the epoch loop; `Ok(false)` means the run is
    /// complete.
    fn step_epoch(&mut self, pool: &mut WorkerPool<T>) -> Result<bool, SpError> {
        let quantum = self.cfg.quantum_cycles.max(1);
        {
            // Host timing only — two `Instant` reads per epoch, no
            // effect on any simulated quantity.
            let supervisor_start = Instant::now();
            self.control_step()?;

            // Build the runnable set: master (task 0) + running slices.
            let master_runnable =
                !self.master.exited() && self.stalled.is_none() && !self.master.pending_force();
            let mut runnable: Vec<u64> = Vec::new();
            if master_runnable {
                runnable.push(0);
            }
            let running: Vec<u32> = self
                .live
                .iter()
                .filter(|slice| slice.state() == SliceState::Running)
                .map(SliceRuntime::num)
                .collect();
            runnable.extend(running.iter().map(|&num| num as u64));

            if runnable.is_empty() {
                if self.master.exited() && self.live.is_empty() {
                    return Ok(false);
                }
                // Master stalled with zero running slices would be a
                // logic error (a slot must be free then); a sleeping-only
                // queue after exit likewise.
                return Err(SpError::NoProgress);
            }

            // Budgets for the whole epoch are fixed here: they depend
            // only on the runnable set, which the barrier structure keeps
            // constant until the next control step.
            let shares = self.scheduler.shares(&runnable);
            let master_budget = master_runnable.then(|| shares[0].budget(quantum));
            let slice_budgets: Vec<(u32, u64)> = shares
                .iter()
                .filter(|share| share.task != 0)
                .map(|share| (share.task as u32, share.budget(quantum)))
                .collect();

            // Plan the epoch: next fork deadline and predicted slice
            // completions, all from virtual state only. While the
            // governor is deferring a fork, keep epochs short so
            // admission is re-checked promptly once running slices merge
            // and free their footprint.
            let deadline = if master_runnable {
                self.fork_deadline_quanta(quantum)
            } else if self
                .governor
                .as_ref()
                .is_some_and(MemoryGovernor::is_deferring)
            {
                Some(self.planner.deferral_review_quanta())
            } else {
                None
            };
            let etas: Vec<(SliceEta, u64)> = self
                .live
                .iter()
                .filter(|slice| slice.state() == SliceState::Running)
                .map(|slice| {
                    let budget = slice_budgets
                        .iter()
                        .find(|(num, _)| *num == slice.num())
                        .map(|&(_, budget)| budget)
                        .unwrap_or(1);
                    (slice.eta(), budget)
                })
                .collect();
            let planned = match &mut self.mode {
                RunMode::Live => self.planner.plan(deadline, etas),
                RunMode::Record(recorder) => {
                    let planned = self.planner.plan(deadline, etas);
                    recorder.record(NondetEvent::EpochPlan { planned });
                    planned
                }
                // Substituted verbatim: the planner's live answer would
                // be identical on a faithful log, and taking the log's
                // word is what lets divergence tests perturb it.
                RunMode::Replay(source) => match source.next_event() {
                    Some(NondetEvent::EpochPlan { planned }) => planned.max(1),
                    Some(other) => {
                        return Err(SpError::ReplayDivergence {
                            context: "epoch plan",
                            detail: format!(
                                "expected an epoch-plan record at epoch {}, log has a {} event",
                                self.epochs,
                                other.kind()
                            ),
                        })
                    }
                    None => {
                        return Err(SpError::ReplayDivergence {
                            context: "epoch plan",
                            detail: format!("log exhausted at epoch {}", self.epochs),
                        })
                    }
                },
            };
            self.epochs += 1;

            // Phase 1: master, serially; a master event truncates the
            // epoch so the barrier lands where the event must be handled.
            let exited_before_epoch = self.master_exit_cycles.is_some();
            let (epoch_len, run_quanta) = match master_budget {
                Some(budget) => self.advance_master_epoch(budget, planned, quantum)?,
                None => (planned, planned),
            };

            // Master timeline for the Figure 6 decomposition.
            if !exited_before_epoch && run_quanta > 0 {
                let label = if master_runnable { "run" } else { "sleep" };
                self.master_timeline
                    .push(self.now, self.now + run_quanta * quantum, label);
            }

            // Journal the epoch each running slice is about to receive:
            // the supervisor must be able to replay the exact schedule
            // (and its watchdog clock ticks in these same quanta).
            let dispatched: Vec<(u32, u64, SliceEta)> = if self.supervisor.is_some() {
                self.live
                    .iter()
                    .filter(|slice| slice.state() == SliceState::Running)
                    .filter_map(|slice| {
                        slice_budgets
                            .iter()
                            .find(|(num, _)| *num == slice.num())
                            .map(|&(_, budget)| (slice.num(), budget, slice.eta()))
                    })
                    .collect()
            } else {
                Vec::new()
            };
            if let Some(sup) = self.supervisor.as_mut() {
                for (num, budget, eta) in dispatched {
                    sup.journal_advance(num, budget, epoch_len, self.now, quantum, eta);
                }
            }

            // Phase 2: slices, in parallel across host threads.
            let slice_start = Instant::now();
            self.host_profile.supervisor_ns +=
                slice_start.duration_since(supervisor_start).as_nanos() as u64;
            let failures =
                self.advance_slices_epoch(pool, &slice_budgets, epoch_len, self.now, quantum)?;
            let barrier_start = Instant::now();
            self.host_profile.slice_ns +=
                barrier_start.duration_since(slice_start).as_nanos() as u64;

            // Phase 3: barrier. Repair first — faults are detected and
            // rolled back in the epoch they fired, so publication and
            // merging below only ever see fault-free state.
            self.supervise_barrier(failures)?;
            self.now += epoch_len * quantum;
            self.sync_shared_cache();
            // Footprints grew inside the slice phase (on worker
            // threads, where the ledger cannot be touched) and repairs
            // may have swapped slices: settle every posting once, here
            // at the barrier.
            self.settle_ledger();
            self.observe_usage();
            self.merge_ready();
            self.host_profile.supervisor_ns += barrier_start.elapsed().as_nanos() as u64;
        }
        Ok(true)
    }

    /// Renders the report after the epoch loop completes. The
    /// supervision ledger (`slice_retries`, `slices_degraded`) is
    /// recorded here as the log's final event, and substituted from the
    /// log on replay — chaos recovery is re-*counted* rather than
    /// re-*executed* (see the [`record`](crate::record) module docs).
    fn finalize(&mut self) -> Result<SuperPinReport, SpError> {
        // All slices merged: render the final result.
        //
        // Soundness gate: if an oracle was installed, no engine may have
        // observed a transfer or code write the static analysis does not
        // admit. Engines assert at the offending site in debug builds;
        // this catches violations that were only recorded (and any run
        // driven through a release-built harness under a debug test).
        if let Some(oracle) = &self.cfg.oracle {
            debug_assert!(
                oracle.is_clean(),
                "soundness oracle recorded violations: {:?}",
                oracle.violations()
            );
        }
        let mut fin = self.tool_template.clone();
        fin.fini_shared(&self.shared);

        let mut sup_retries = self.supervisor.as_ref().map_or(0, |sup| sup.slice_retries);
        let mut sup_degraded = self
            .supervisor
            .as_ref()
            .map_or(0, |sup| sup.slices_degraded);
        match &mut self.mode {
            RunMode::Live => {}
            RunMode::Record(recorder) => recorder.record(NondetEvent::FaultLedger {
                slice_retries: sup_retries,
                slices_degraded: sup_degraded,
            }),
            RunMode::Replay(source) => {
                // The ledger is the log's final event; drain to it so a
                // replay that legitimately consumed fewer decision
                // points (injection is disarmed) still finds it.
                while let Some(event) = source.next_event() {
                    if let NondetEvent::FaultLedger {
                        slice_retries,
                        slices_degraded,
                    } = event
                    {
                        sup_retries = slice_retries;
                        sup_degraded = slices_degraded;
                    }
                }
            }
        }

        let master_exit_cycles = self.master_exit_cycles.unwrap_or(self.now);
        let native_cycles = self.master.process().inst_count() * self.cfg.cost.native_cpi;
        let sleep_cycles = self.master_timeline.total("sleep");
        let fork_other_cycles = master_exit_cycles
            .saturating_sub(native_cycles)
            .saturating_sub(sleep_cycles);
        let breakdown = TimeBreakdown {
            native_cycles,
            fork_other_cycles,
            sleep_cycles,
            pipeline_cycles: self.now.saturating_sub(master_exit_cycles),
        };

        Ok(SuperPinReport {
            total_cycles: self.now,
            master_exit_cycles,
            breakdown,
            master_insts: self.master.process().inst_count(),
            master_syscalls: self.master.syscall_count(),
            ptrace: self.master.ptrace_stats(),
            slices: std::mem::take(&mut self.finished),
            sig_stats: self.sig_stats,
            forks_on_timeout: self.forks_on_timeout,
            forks_on_syscall: self.forks_on_syscall,
            stall_events: self.stall_events,
            master_cow_copies: self.master.process().mem.stats().cow_copies,
            epochs: self.epochs,
            slice_retries: sup_retries,
            slices_degraded: sup_degraded
                + self
                    .governor
                    .as_ref()
                    .map_or(0, MemoryGovernor::degraded_total),
            peak_resident_bytes: self
                .governor
                .as_ref()
                .map_or(0, |gov| gov.peak_resident_bytes),
            slices_deferred: self.governor.as_ref().map_or(0, |gov| gov.slices_deferred),
            checkpoints_dropped: self
                .governor
                .as_ref()
                .map_or(0, |gov| gov.checkpoints_dropped),
            caches_evicted: self.governor.as_ref().map_or(0, |gov| gov.caches_evicted),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The service front end (`superpin-serve`) moves whole runners —
    /// not just slices — onto shared pool workers between fleet rounds,
    /// so the runner must be `Send` for any `Send` tool. Compile-time
    /// audit in the spirit of `superpin-tools`' send_audit module.
    #[derive(Clone)]
    struct NullTool;

    impl superpin_dbi::Pintool for NullTool {
        fn instrument_trace(
            &mut self,
            _trace: &superpin_dbi::Trace,
            _inserter: &mut superpin_dbi::Inserter<Self>,
        ) {
        }
    }

    impl SuperTool for NullTool {
        fn reset(&mut self, _slice: u32) {}
        fn on_slice_end(&mut self, _slice: u32, _shared: &SharedMem) {}
    }

    #[test]
    fn runner_is_send_for_send_tools() {
        fn assert_send<S: Send>() {}
        assert_send::<SuperPinRunner<NullTool>>();
    }
}

impl<T: SuperTool> std::fmt::Debug for SuperPinRunner<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuperPinRunner")
            .field("now", &self.now)
            .field("live_slices", &self.live.len())
            .field("finished", &self.finished.len())
            .finish()
    }
}

//! SuperPin configuration (the paper's command-line switches, §5).

use std::sync::Arc;
use superpin_analysis::{SoundnessOracle, SuperblockPlan};
use superpin_dbi::{CostModel, LiveMap, CYCLES_PER_SEC};
use superpin_fault::FailPlan;
use superpin_sched::{Machine, Policy};

/// Configuration for a SuperPin run.
///
/// Mirrors the paper's switches:
///
/// * `-sp 1` → [`enabled`](SuperPinConfig::enabled)
/// * `-spmsec` → [`timeslice_cycles`](SuperPinConfig::timeslice_cycles)
///   (default 1000 ms)
/// * `-spmp` → [`max_slices`](SuperPinConfig::max_slices) (default 8)
/// * `-spsysrecs` → [`max_sysrecs`](SuperPinConfig::max_sysrecs)
///   (default 1000; 0 disables recording so every recordable syscall
///   forces a new slice)
///
/// # Time scaling
///
/// The paper's workloads run for ~100 wall-clock seconds; simulating
/// 2.2 × 10¹¹ instructions per benchmark is infeasible, so the harness
/// runs workloads scaled down by [`time_scale`](SuperPinConfig::time_scale)
/// and shrinks the timeslice by the same factor. All *ratios* (slice
/// count, pipeline-delay fraction, fork-overhead fraction) are preserved;
/// reports multiply back up when presenting "seconds".
#[derive(Clone, Debug)]
pub struct SuperPinConfig {
    /// Run in SuperPin mode (`-sp 1`); `false` means traditional Pin.
    pub enabled: bool,
    /// Timeslice interval in cycles (`-spmsec`, after time scaling).
    pub timeslice_cycles: u64,
    /// Maximum simultaneously running slices (`-spmp`).
    pub max_slices: usize,
    /// Maximum syscall records per slice; 0 disables recording
    /// (`-spsysrecs`).
    pub max_sysrecs: usize,
    /// The machine model to schedule on.
    pub machine: Machine,
    /// Scheduling policy (fair share reproduces the paper).
    pub policy: Policy,
    /// DBI cost model for slices.
    pub cost: CostModel,
    /// Per-slice code-cache capacity in instructions.
    pub cache_capacity: usize,
    /// Simulation quantum in cycles (must be well below the timeslice).
    pub quantum_cycles: u64,
    /// Presented-time multiplier (see struct docs).
    pub time_scale: f64,
    /// Paper §8 extension: when `Some(estimated_total_cycles)`, the
    /// timeslice is throttled down toward the end of execution so the
    /// final slices are short and the pipeline delay shrinks.
    pub adaptive_estimate: Option<u64>,
    /// Paper §8 extension: share the code cache across all timeslices.
    /// A slice compiling a trace another slice already compiled pays a
    /// consistency-check cost instead of the full JIT cost.
    pub shared_code_cache: bool,
    /// Static liveness for the guest program. When present, every
    /// slice's engine elides save/restores of registers proven dead at
    /// each insertion point (see
    /// [`Engine::set_liveness`](superpin_dbi::Engine::set_liveness)),
    /// shrinking modeled analysis overhead without changing what the
    /// instrumentation observes. `None` keeps the conservative
    /// full-clobber-set spill, which charges exactly the legacy flat
    /// [`CostModel::analysis_call`] rate.
    pub liveness: Option<Arc<LiveMap>>,
    /// Ahead-of-time superblock plan from whole-program analysis
    /// (`--plan on`). Every slice engine forms predicted-hot traces
    /// from the plan's pre-decoded stream and elides host-side restores
    /// of registers the plan's refined interprocedural liveness proves
    /// dead (see [`Engine::set_plan`](superpin_dbi::Engine::set_plan)).
    /// Strictly a host accelerator: reports are bit-identical with the
    /// plan on or off.
    pub plan: Option<Arc<SuperblockPlan>>,
    /// Static↔dynamic soundness oracle. When present, every slice
    /// engine cross-validates dynamic indirect transfers and code
    /// writes against the static analysis; debug builds assert on a
    /// violation (see
    /// [`Engine::set_oracle`](superpin_dbi::Engine::set_oracle)).
    pub oracle: Option<Arc<SoundnessOracle>>,
    /// Host worker threads for slice execution (`--threads`). 1 runs
    /// every slice inline on the supervisor thread; N > 1 fans slice
    /// epochs out across a `std::thread::scope` pool. The report is
    /// bit-identical either way — epoch batching fixes every scheduling
    /// decision before workers start.
    pub threads: usize,
    /// Epoch cap in quanta: the most virtual time workers may burn
    /// between synchronization barriers. 1 degenerates to a barrier per
    /// quantum (maximal sync overhead, same reports).
    pub epoch_max_quanta: u64,
    /// Chaos fault-injection plan (`--chaos-seed` / `--chaos-rate`).
    /// `None` — the default — builds no registry and arms no failpoint:
    /// the fault machinery costs nothing when disabled. Setting a plan
    /// implies slice supervision (see
    /// [`supervise`](SuperPinConfig::supervise)).
    pub chaos: Option<FailPlan>,
    /// Run the slice supervisor (watchdog + retry/degrade) even without
    /// chaos. Always effectively on when [`chaos`](SuperPinConfig::chaos)
    /// is set — injected faults must be repaired.
    pub supervise: bool,
    /// Watchdog multiplier (`--watchdog-factor`): a slice is declared
    /// runaway when its signature has not fired within `factor ×` its
    /// predicted completion (see
    /// [`superpin_sched::watchdog_deadline_quanta`]).
    pub watchdog_factor: u64,
    /// Retries per slice before it degrades to serial re-execution
    /// pinned to the supervisor thread.
    pub max_slice_retries: u32,
    /// Simulated resident-memory budget in bytes (`--mem-budget`).
    /// `None` — the default — builds no governor and changes nothing:
    /// reports are field-identical to an unbudgeted build. When set, the
    /// runner charges COW page copies, per-slice code caches, retained
    /// checkpoints, and shared-index snapshots against the budget,
    /// defers slice forks under pressure, and walks the eviction ladder
    /// (drop checkpoints → evict cold caches → degrade to inline
    /// serial). The same budget also becomes the guest kernel's
    /// per-process allocation limit: `brk`/`mmap` past it return ENOMEM
    /// to the guest instead of growing the space.
    pub mem_budget: Option<u64>,
}

impl SuperPinConfig {
    /// The paper's defaults: SuperPin on, 1000 ms timeslice, 8 slices,
    /// 1000 syscall records, 8-way SMP without hyperthreading.
    pub fn paper_default() -> SuperPinConfig {
        SuperPinConfig {
            enabled: true,
            timeslice_cycles: CYCLES_PER_SEC, // 1000 ms
            max_slices: 8,
            max_sysrecs: 1000,
            machine: Machine::smp(8),
            policy: Policy::FairShare,
            cost: CostModel::paper_default(),
            cache_capacity: superpin_dbi::cache::DEFAULT_CAPACITY_INSTS,
            quantum_cycles: CYCLES_PER_SEC / 1000, // 1 ms
            time_scale: 1.0,
            adaptive_estimate: None,
            shared_code_cache: false,
            liveness: None,
            plan: None,
            oracle: None,
            threads: 1,
            epoch_max_quanta: 256,
            chaos: None,
            supervise: false,
            watchdog_factor: 8,
            max_slice_retries: 2,
            mem_budget: None,
        }
    }

    /// A configuration whose timeslice is `paper_msec` of *paper* time,
    /// scaled down by `time_scale` for simulation feasibility. The
    /// quantum is set to timeslice/50 so timer forks stay well-resolved.
    pub fn scaled(paper_msec: u64, time_scale: f64) -> SuperPinConfig {
        let timeslice_cycles =
            ((paper_msec as f64 / 1000.0) * CYCLES_PER_SEC as f64 / time_scale) as u64;
        let timeslice_cycles = timeslice_cycles.max(1000);
        SuperPinConfig {
            timeslice_cycles,
            quantum_cycles: (timeslice_cycles / 50).max(500),
            time_scale,
            ..SuperPinConfig::paper_default()
        }
    }

    /// Sets the maximum number of running slices (`-spmp`).
    pub fn with_max_slices(mut self, max_slices: usize) -> SuperPinConfig {
        self.max_slices = max_slices.max(1);
        self
    }

    /// Sets the machine model.
    pub fn with_machine(mut self, machine: Machine) -> SuperPinConfig {
        self.machine = machine;
        self
    }

    /// Sets the syscall-record budget (`-spsysrecs`).
    pub fn with_max_sysrecs(mut self, max_sysrecs: usize) -> SuperPinConfig {
        self.max_sysrecs = max_sysrecs;
        self
    }

    /// Installs static liveness so slice engines elide save/restores of
    /// dead registers (see [`SuperPinConfig::liveness`]).
    pub fn with_liveness(mut self, liveness: Arc<LiveMap>) -> SuperPinConfig {
        self.liveness = Some(liveness);
        self
    }

    /// Installs an ahead-of-time superblock plan for every slice engine
    /// (see [`SuperPinConfig::plan`]).
    pub fn with_plan(mut self, plan: Arc<SuperblockPlan>) -> SuperPinConfig {
        self.plan = Some(plan);
        self
    }

    /// Installs the static↔dynamic soundness oracle for every slice
    /// engine (see [`SuperPinConfig::oracle`]).
    pub fn with_oracle(mut self, oracle: Arc<SoundnessOracle>) -> SuperPinConfig {
        self.oracle = Some(oracle);
        self
    }

    /// Sets the host worker-thread count for slice execution
    /// (`--threads`; see [`SuperPinConfig::threads`]).
    pub fn with_threads(mut self, threads: usize) -> SuperPinConfig {
        self.threads = threads.max(1);
        self
    }

    /// Sets the epoch cap in quanta (see
    /// [`SuperPinConfig::epoch_max_quanta`]).
    pub fn with_epoch_max_quanta(mut self, quanta: u64) -> SuperPinConfig {
        self.epoch_max_quanta = quanta.max(1);
        self
    }

    /// Arms chaos fault injection with this plan (implies supervision).
    pub fn with_chaos(mut self, plan: FailPlan) -> SuperPinConfig {
        self.chaos = Some(plan);
        self
    }

    /// Enables the slice supervisor without injecting faults (used by
    /// the bench guard to measure supervisor overhead alone).
    pub fn with_supervision(mut self) -> SuperPinConfig {
        self.supervise = true;
        self
    }

    /// Sets the watchdog multiplier (`--watchdog-factor`, clamped ≥ 1).
    pub fn with_watchdog_factor(mut self, factor: u64) -> SuperPinConfig {
        self.watchdog_factor = factor.max(1);
        self
    }

    /// Sets the per-slice retry budget before degradation.
    pub fn with_max_slice_retries(mut self, retries: u32) -> SuperPinConfig {
        self.max_slice_retries = retries;
        self
    }

    /// Arms the memory governor with a resident-byte budget
    /// (`--mem-budget`; see [`SuperPinConfig::mem_budget`]).
    pub fn with_mem_budget(mut self, budget: u64) -> SuperPinConfig {
        self.mem_budget = Some(budget);
        self
    }

    /// Whether the supervisor runs: explicitly requested, or implied by
    /// an armed chaos plan.
    pub fn supervision_enabled(&self) -> bool {
        self.supervise || self.chaos.is_some()
    }

    /// Converts cycles to presented (paper-equivalent) seconds.
    pub fn present_secs(&self, cycles: u64) -> f64 {
        superpin_dbi::cycles_to_secs(cycles) * self.time_scale
    }

    /// The timeslice to use at virtual time `now_cycles`, honouring the
    /// adaptive-throttling extension when configured (paper §8: "decrease
    /// the timeslice size toward the end of application execution").
    pub fn effective_timeslice(&self, now_cycles: u64) -> u64 {
        match self.adaptive_estimate {
            None => self.timeslice_cycles,
            Some(estimate) => {
                let remaining = estimate.saturating_sub(now_cycles);
                let floor = (self.timeslice_cycles / 8).max(self.quantum_cycles);
                self.timeslice_cycles.min(remaining.max(floor))
            }
        }
    }
}

impl Default for SuperPinConfig {
    fn default() -> SuperPinConfig {
        SuperPinConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_switch_documentation() {
        let cfg = SuperPinConfig::paper_default();
        assert!(cfg.enabled);
        assert_eq!(cfg.timeslice_cycles, CYCLES_PER_SEC);
        assert_eq!(cfg.max_slices, 8);
        assert_eq!(cfg.max_sysrecs, 1000);
    }

    #[test]
    fn scaled_preserves_ratio() {
        let cfg = SuperPinConfig::scaled(2000, 10_000.0);
        // 2 s of paper time at scale 10⁴ = 200 µs of simulated time.
        let expected = (2.0 * CYCLES_PER_SEC as f64 / 10_000.0) as u64;
        assert_eq!(cfg.timeslice_cycles, expected);
        assert!(cfg.quantum_cycles * 10 <= cfg.timeslice_cycles);
        // Presenting the timeslice recovers ~2 s.
        let presented = cfg.present_secs(cfg.timeslice_cycles);
        assert!((presented - 2.0).abs() < 0.01, "presented {presented}");
    }

    #[test]
    fn adaptive_timeslice_shrinks_near_estimate() {
        let mut cfg = SuperPinConfig::scaled(1000, 1000.0);
        let base = cfg.timeslice_cycles;
        cfg.adaptive_estimate = Some(10 * base);
        assert_eq!(cfg.effective_timeslice(0), base);
        // Near the end, the timeslice throttles down.
        let near_end = cfg.effective_timeslice(10 * base - base / 4);
        assert!(near_end < base);
        assert!(near_end >= cfg.quantum_cycles);
    }

    #[test]
    fn builders_clamp() {
        let cfg = SuperPinConfig::paper_default().with_max_slices(0);
        assert_eq!(cfg.max_slices, 1);
        let cfg = cfg.with_threads(0).with_epoch_max_quanta(0);
        assert_eq!(cfg.threads, 1);
        assert_eq!(cfg.epoch_max_quanta, 1);
    }
}

//! Instrumented timeslices: the slice-side tool wrapper and runtime.

use crate::api::SuperTool;
use crate::bubble::Bubble;
use crate::config::SuperPinConfig;
use crate::error::SpError;
use crate::signature::{Signature, SignatureStats, STACK_WORDS};
use crate::trampoline;
use std::collections::VecDeque;
use std::sync::Arc;
use superpin_dbi::{Engine, EngineStop, IArg, IPoint, Inserter, Pintool, Trace};
use superpin_fault::{FailpointRegistry, Site};
use superpin_isa::{Reg, NUM_REGS};
use superpin_vm::kernel::SyscallRecord;
use superpin_vm::process::Process;

/// How a slice knows where to end.
#[derive(Clone, Debug)]
pub enum Boundary {
    /// End when the recorded state signature matches at its pc
    /// (timeout-created boundary, paper §4.3/§4.4).
    Signature(Box<Signature>),
    /// End after consuming the final syscall record (the next slice was
    /// forced at that syscall, paper §4.2).
    SyscallEnd,
    /// The program ends within this slice; the record list finishes with
    /// the `exit` record.
    ProgramExit,
}

/// Why a slice finished.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SliceEnd {
    /// The signature detector fired at the boundary pc.
    SignatureDetected,
    /// The final (syscall-boundary) record was consumed.
    RecordsExhausted,
    /// The slice played back the program's `exit`.
    Exited,
    /// The tool ended the slice early via `SP_EndSlice`
    /// (`EngineCtl::request_stop`), as sampling tools like the Shadow
    /// Profiler do (paper §5).
    ToolEnded,
}

/// Lifecycle state of a slice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SliceState {
    /// Forked, but the next slice hasn't recorded its signature yet —
    /// "each slice sleeps until the following slice records its unique
    /// signature" (paper Fig. 1).
    Sleeping,
    /// Executing instrumented code.
    Running,
    /// Finished; awaiting or past its in-order merge.
    Done,
}

/// The tool actually installed in a slice's engine: the user's
/// [`SuperTool`] plus SuperPin's own signature-detection instrumentation.
#[derive(Clone)]
pub struct SpSliceTool<T: SuperTool> {
    /// The user tool (slice-local clone).
    pub inner: T,
    /// Boundary signature to detect, if this slice ends on a timeout
    /// boundary.
    detect: Option<Arc<Signature>>,
    /// Detection statistics for this slice.
    pub sig_stats: SignatureStats,
    slice_num: u32,
    /// Armed chaos registry for the signature failpoints
    /// ([`Site::CoreSignatureQuickMiss`] /
    /// [`Site::CoreSignatureFullMismatch`]). `None` when injection is
    /// off — the detector then takes exactly its legacy path.
    chaos: Option<Arc<FailpointRegistry>>,
    /// Retry salt mixed into every signature failpoint key (see
    /// [`Engine::arm_fault_injection`]).
    chaos_salt: u64,
    /// Faults this tool has injected since it was last armed. The
    /// supervisor reads this at every barrier: a poisoned slice is
    /// rolled back in the *same* epoch the fault fired, before its
    /// corrupted state can shift merge timing.
    injected_faults: u64,
}

impl<T: SuperTool> SpSliceTool<T> {
    /// The slice this tool instance belongs to.
    pub fn slice_num(&self) -> u32 {
        self.slice_num
    }

    /// Faults injected into this slice's signature detector since the
    /// registry was last armed.
    pub fn injected_faults(&self) -> u64 {
        self.injected_faults
    }

    fn chaos_key(&self, ordinal: u64) -> u64 {
        ((self.slice_num as u64) << 32) ^ ordinal ^ (self.chaos_salt << 56)
    }
}

impl<T: SuperTool> Pintool for SpSliceTool<T> {
    fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
        // Detection first: a boundary hit must short-circuit the user
        // tool's calls for that instruction (it belongs to the next
        // slice).
        if let Some(sig) = self.detect.clone() {
            if trace.insts().any(|iref| iref.addr == sig.pc) {
                insert_detection(inserter, &sig);
            }
        }
        let mut inner_inserter = Inserter::new();
        self.inner.instrument_trace(trace, &mut inner_inserter);
        inserter.absorb(inner_inserter, |wrapper: &mut SpSliceTool<T>| {
            &mut wrapper.inner
        });
    }

    fn instrumentation_is_shareable(&self, trace: &Trace) -> bool {
        // The boundary signature detector is the one slice-specific piece
        // of instrumentation; traces that contain the boundary pc stay
        // private. Everything else defers to the user tool's own
        // certification.
        let detection_free = match &self.detect {
            Some(sig) => !trace.insts().any(|iref| iref.addr == sig.pc),
            None => true,
        };
        detection_free && self.inner.instrumentation_is_shareable(trace)
    }

    fn on_syscall(&mut self, record: &SyscallRecord) {
        self.inner.on_syscall(record);
    }

    fn name(&self) -> &'static str {
        "superpin-slice"
    }
}

/// Inserts the two-stage signature detector at the boundary pc:
/// an inlined quick check of the two likely-to-change registers
/// (`INS_InsertIfCall`), escalating to the full architectural + stack
/// comparison (`INS_InsertThenCall`) only on a quick match (paper §4.4).
fn insert_detection<T: SuperTool>(inserter: &mut Inserter<SpSliceTool<T>>, sig: &Arc<Signature>) {
    let quick_sig = Arc::clone(sig);
    let full_sig = Arc::clone(sig);

    let pred_args = vec![
        IArg::RegValue(sig.quick_regs[0]),
        IArg::RegValue(sig.quick_regs[1]),
    ];
    let mut then_args: Vec<IArg> = Reg::all().map(IArg::RegValue).collect();
    then_args.extend((0..STACK_WORDS as u32).map(IArg::StackWord));

    inserter.insert_if_then_call(
        sig.pc,
        IPoint::Before,
        move |tool: &mut SpSliceTool<T>, ctx| {
            tool.sig_stats.quick_checks += 1;
            if !quick_sig.quick_match(ctx.arg(0), ctx.arg(1)) {
                return false;
            }
            // Failpoint: suppress a genuine quick match, so the slice
            // sails past its true boundary (manufactured runaway).
            if let Some(chaos) = tool.chaos.clone() {
                let key = tool.chaos_key(tool.sig_stats.quick_checks);
                if chaos.fire(Site::CoreSignatureQuickMiss, key) {
                    tool.injected_faults += 1;
                    return false;
                }
            }
            true
        },
        pred_args,
        move |tool: &mut SpSliceTool<T>, ctx, ctl| {
            tool.sig_stats.full_checks += 1;
            // Full architectural comparison: one compare per register.
            ctl.charge_cycles(NUM_REGS as u64);
            let regs: Vec<u64> = (0..NUM_REGS).map(|i| ctx.arg(i)).collect();
            if full_sig.regs_match(&regs) {
                // Failpoint: pretend the full comparison rejected, skipping
                // the stack stage entirely (manufactured runaway with a
                // skewed check mix).
                if let Some(chaos) = tool.chaos.clone() {
                    let key = tool.chaos_key(tool.sig_stats.full_checks);
                    if chaos.fire(Site::CoreSignatureFullMismatch, key) {
                        tool.injected_faults += 1;
                        return;
                    }
                }
                tool.sig_stats.stack_checks += 1;
                // Top-of-stack comparison: one compare per word.
                ctl.charge_cycles(STACK_WORDS as u64);
                let stack: Vec<u64> = (NUM_REGS..NUM_REGS + STACK_WORDS)
                    .map(|i| ctx.arg(i))
                    .collect();
                if full_sig.stack_match(&stack) {
                    tool.sig_stats.detections += 1;
                    ctl.request_stop();
                }
            }
        },
        then_args,
    );
}

/// A running instrumented timeslice.
pub struct SliceRuntime<T: SuperTool> {
    num: u32,
    engine: Engine<SpSliceTool<T>>,
    records: VecDeque<SyscallRecord>,
    boundary: Option<Boundary>,
    state: SliceState,
    end: Option<SliceEnd>,
    start_cycles: u64,
    wake_cycles: Option<u64>,
    end_cycles: Option<u64>,
    records_played: u64,
    cow_charged: u64,
    /// Cycles consumed beyond a previous advance's budget (engine traces
    /// complete atomically); repaid before new work runs.
    debt: u64,
    merged: bool,
    /// Instructions the master executed in this slice's span — known
    /// exactly once the slice wakes (the master already ran it natively).
    /// Feeds the epoch planner's completion prediction.
    span_insts: Option<u64>,
    /// Virtual time of the slice's most recent [`advance`]
    /// (SliceRuntime::advance). The memory governor's eviction ladder
    /// uses this as its coldness key (LRU by simulated quantum), so it
    /// must be — and is — a pure function of simulated state.
    last_active_cycles: u64,
}

impl<T: SuperTool> SliceRuntime<T> {
    /// Forks a slice from the master: copy-on-write process fork,
    /// trampoline in/out (private VM stack), bubble release, fresh tool
    /// clone (reset + slice-begin hooks), and a cold engine.
    ///
    /// The returned slice is [`SliceState::Sleeping`] until
    /// [`wake`](SliceRuntime::wake) delivers its boundary and records.
    ///
    /// # Errors
    ///
    /// Returns [`SpError::Mem`] if trampoline or bubble setup fails.
    pub fn spawn(
        num: u32,
        master: &Process,
        tool_template: &T,
        bubble: &Bubble,
        cfg: &SuperPinConfig,
        now_cycles: u64,
    ) -> Result<SliceRuntime<T>, SpError> {
        let process = master.fork(1000 + num as u64);
        SliceRuntime::from_fork(num, process, tool_template, bubble, cfg, now_cycles)
    }

    /// Like [`spawn`](SliceRuntime::spawn), but the fork consults the
    /// master's armed [`Site::VmForkCow`](superpin_fault::Site::VmForkCow)
    /// failpoint with `chaos_key` (see
    /// [`Process::try_fork`](superpin_vm::process::Process::try_fork)).
    /// The runner retries with a fresh key on injected failure.
    ///
    /// # Errors
    ///
    /// Returns [`SpError::Vm`] with
    /// [`VmError::FaultInjected`](superpin_vm::VmError::FaultInjected)
    /// when the failpoint fires, or [`SpError::Mem`] on setup failure.
    pub fn spawn_checked(
        num: u32,
        master: &Process,
        tool_template: &T,
        bubble: &Bubble,
        cfg: &SuperPinConfig,
        now_cycles: u64,
        chaos_key: u64,
    ) -> Result<SliceRuntime<T>, SpError> {
        let process = master.try_fork(1000 + num as u64, chaos_key)?;
        SliceRuntime::from_fork(num, process, tool_template, bubble, cfg, now_cycles)
    }

    fn from_fork(
        num: u32,
        mut process: Process,
        tool_template: &T,
        bubble: &Bubble,
        cfg: &SuperPinConfig,
        now_cycles: u64,
    ) -> Result<SliceRuntime<T>, SpError> {
        let frame = trampoline::enter(&mut process)?;
        bubble.release(&mut process.mem)?;
        trampoline::resume(&mut process, frame)?;

        let mut inner = tool_template.clone();
        inner.reset(num);
        inner.on_slice_begin(num);
        let tool = SpSliceTool {
            inner,
            detect: None,
            sig_stats: SignatureStats::default(),
            slice_num: num,
            chaos: None,
            chaos_salt: 0,
            injected_faults: 0,
        };
        let mut engine = Engine::with_config(process, tool, cfg.cost, cfg.cache_capacity);
        if let Some(live) = &cfg.liveness {
            engine.set_liveness(Arc::clone(live));
        }
        if let Some(plan) = &cfg.plan {
            engine.set_plan(Arc::clone(plan));
        }
        if let Some(oracle) = &cfg.oracle {
            engine.set_oracle(Arc::clone(oracle));
        }
        Ok(SliceRuntime {
            num,
            engine,
            records: VecDeque::new(),
            boundary: None,
            state: SliceState::Sleeping,
            end: None,
            start_cycles: now_cycles,
            wake_cycles: None,
            end_cycles: None,
            records_played: 0,
            cow_charged: 0,
            debt: 0,
            merged: false,
            span_insts: None,
            last_active_cycles: now_cycles,
        })
    }

    /// Slice number (1-based, in fork order).
    pub fn num(&self) -> u32 {
        self.num
    }

    /// Current lifecycle state.
    pub fn state(&self) -> SliceState {
        self.state
    }

    /// Why the slice ended (once done).
    pub fn end_reason(&self) -> Option<SliceEnd> {
        self.end
    }

    /// Virtual time the slice was forked.
    pub fn start_cycles(&self) -> u64 {
        self.start_cycles
    }

    /// Virtual time the slice woke (its boundary became known); `None`
    /// while still sleeping.
    pub fn wake_cycles(&self) -> Option<u64> {
        self.wake_cycles
    }

    /// Virtual time the slice finished.
    pub fn end_cycles(&self) -> Option<u64> {
        self.end_cycles
    }

    /// Recorded syscalls played back so far.
    pub fn records_played(&self) -> u64 {
        self.records_played
    }

    /// The slice's engine (statistics, process).
    pub fn engine(&self) -> &Engine<SpSliceTool<T>> {
        &self.engine
    }

    /// Whether the in-order merge has run.
    pub fn merged(&self) -> bool {
        self.merged
    }

    /// Installs a shared code-cache snapshot for the next epoch (paper §8
    /// extension; see [`crate::config::SuperPinConfig::shared_code_cache`]).
    /// The runner refreshes this at every epoch barrier; the engine never
    /// touches the live index mid-epoch, which keeps its cycle accounting
    /// independent of host thread interleaving.
    pub fn enter_shared_epoch(&mut self, snapshot: Arc<std::collections::HashSet<u64>>) {
        self.engine.enter_shared_epoch(snapshot);
    }

    /// Installs the run-wide host-side compiled-trace template cache
    /// (see [`Engine::set_trace_templates`]).
    pub fn set_trace_templates(
        &mut self,
        templates: superpin_dbi::engine::TraceTemplates<SpSliceTool<T>>,
    ) {
        self.engine.set_trace_templates(templates);
    }

    /// Drains trace pcs this slice compiled at full price since the last
    /// barrier (sorted). The runner publishes them into the shared index
    /// in slice order.
    pub fn take_fresh_traces(&mut self) -> Vec<u64> {
        self.engine.take_fresh_traces()
    }

    /// Records how many master instructions this slice's span covers
    /// (set by the runner at wake, when the span length is known).
    pub fn set_span_insts(&mut self, insts: u64) {
        self.span_insts = Some(insts);
    }

    /// Progress snapshot for the epoch planner: abstract-tick spend,
    /// instructions done, and the known span length (0 if not yet woken).
    pub fn eta(&self) -> superpin_sched::SliceEta {
        superpin_sched::SliceEta {
            ticks_spent: self.engine.stats().cycles.total(),
            insts_done: self.engine.process().inst_count(),
            insts_total: self.span_insts.unwrap_or(0),
        }
    }

    /// Marks the merge as done (set by the runner after calling the
    /// tool's slice-end function).
    pub fn set_merged(&mut self) {
        self.merged = true;
    }

    /// Mutable access to the slice's tool wrapper.
    pub fn tool_mut(&mut self) -> &mut SpSliceTool<T> {
        self.engine.tool_mut()
    }

    /// The slice's tool wrapper.
    pub fn tool(&self) -> &SpSliceTool<T> {
        self.engine.tool()
    }

    /// Wakes a sleeping slice: delivers the boundary (recorded when the
    /// *next* slice was forked) plus the master's syscall records for
    /// this slice's span.
    pub fn wake(&mut self, boundary: Boundary, records: Vec<SyscallRecord>, now_cycles: u64) {
        debug_assert_eq!(self.state, SliceState::Sleeping);
        self.wake_cycles = Some(now_cycles);
        if let Boundary::Signature(sig) = &boundary {
            // Boundary-pc instructions must head their own blocks so the
            // detector fires before any block-granularity instrumentation
            // of the boundary block (keeps icount2-style tools exact).
            self.engine.set_split_point(Some(sig.pc));
            self.engine.tool_mut().detect = Some(Arc::new((**sig).clone()));
        }
        self.records = records.into();
        self.boundary = Some(boundary);
        self.state = SliceState::Running;
    }

    /// Advances the slice by up to `budget` cycles of instrumented
    /// execution at virtual time `now_cycles`. Returns cycles consumed
    /// (may slightly exceed the budget when a syscall playback or COW
    /// charge lands on the boundary).
    ///
    /// # Errors
    ///
    /// Returns [`SpError::SliceDiverged`] / [`SpError::RecordMismatch`]
    /// on master/slice divergence, or guest errors.
    pub fn advance(&mut self, budget: u64, now_cycles: u64) -> Result<u64, SpError> {
        debug_assert_eq!(self.state, SliceState::Running);
        self.last_active_cycles = now_cycles;
        // Repay cycles overshot in previous quanta before doing new work.
        let repaid = self.debt.min(budget);
        self.debt -= repaid;
        let budget = budget - repaid;
        let mut used = 0u64;
        while used < budget && self.state == SliceState::Running {
            let detections_before = self.engine.tool().sig_stats.detections;
            let result = self.engine.run(budget - used)?;
            used += result.cycles;
            match result.stop {
                EngineStop::BudgetExhausted => break,
                EngineStop::SyscallEntry => {
                    used += self.playback_next(now_cycles)?;
                }
                EngineStop::ToolStop => {
                    // A stop is a boundary detection if the detector's
                    // hit counter moved; otherwise the user tool called
                    // the `SP_EndSlice` analogue.
                    let end = if self.engine.tool().sig_stats.detections > detections_before {
                        SliceEnd::SignatureDetected
                    } else {
                        SliceEnd::ToolEnded
                    };
                    self.finish(end, now_cycles);
                }
                EngineStop::Exited(_) => {
                    self.finish(SliceEnd::Exited, now_cycles);
                }
                EngineStop::Halted => {
                    return Err(SpError::Vm(superpin_vm::VmError::UnexpectedHalt {
                        pc: self.engine.process().cpu.pc,
                    }))
                }
            }
        }
        // Charge copy-on-write faults taken since the last advance.
        let cow = self.engine.process().mem.stats().cow_copies;
        let delta = cow - self.cow_charged;
        if delta > 0 {
            used += delta * self.engine.cost().cow_fault;
            self.cow_charged = cow;
        }
        // Anything beyond this quantum's budget is owed to future quanta.
        self.debt += used.saturating_sub(budget);
        Ok(repaid + used.min(budget))
    }

    /// Advances the slice through a whole epoch: up to `quanta` quanta of
    /// `budget_per_quantum` cycles each, with virtual time stepped by
    /// `quantum_cycles` from `epoch_start`. Stops early when the slice
    /// finishes.
    ///
    /// This is exactly the per-quantum [`advance`](SliceRuntime::advance)
    /// loop the serial runner would drive — debt repayment and finish
    /// timestamps land on identical quantum boundaries — so running it on
    /// a worker thread cannot change any report bit.
    ///
    /// # Errors
    ///
    /// Propagates the first [`advance`](SliceRuntime::advance) error.
    pub fn advance_epoch(
        &mut self,
        budget_per_quantum: u64,
        quanta: u64,
        epoch_start: u64,
        quantum_cycles: u64,
    ) -> Result<(), SpError> {
        for j in 0..quanta {
            if self.state != SliceState::Running {
                break;
            }
            self.advance(budget_per_quantum, epoch_start + (j + 1) * quantum_cycles)?;
        }
        Ok(())
    }

    fn playback_next(&mut self, now_cycles: u64) -> Result<u64, SpError> {
        let pc = self.engine.process().cpu.pc;
        let Some(record) = self.records.pop_front() else {
            return Err(SpError::SliceDiverged {
                slice: self.num,
                pc,
            });
        };
        let actual = self.engine.process().cpu.regs.get(Reg::R0);
        if actual != record.number as u64 {
            return Err(SpError::RecordMismatch {
                slice: self.num,
                pc,
                recorded: record.number as u64,
                actual,
            });
        }
        let exited = record.exited.is_some();
        let cycles = self.engine.playback_syscall(&record)?;
        self.records_played += 1;
        if exited {
            self.finish(SliceEnd::Exited, now_cycles);
        } else if self.records.is_empty() && matches!(self.boundary, Some(Boundary::SyscallEnd)) {
            self.finish(SliceEnd::RecordsExhausted, now_cycles);
        }
        Ok(cycles)
    }

    fn finish(&mut self, end: SliceEnd, now_cycles: u64) {
        self.state = SliceState::Done;
        self.end = Some(end);
        self.end_cycles = Some(now_cycles);
    }

    /// Arms (or, with `None`, strips) chaos injection on this slice: both
    /// the engine's dispatch failpoint and the signature-detector
    /// failpoints, with `salt` mixed into every key so a retried slice
    /// replays a *different* point in the fault schedule instead of
    /// re-hitting the fault that condemned it. Resets the poison counter.
    pub fn arm_chaos(&mut self, registry: Option<Arc<FailpointRegistry>>, salt: u64) {
        self.engine.arm_fault_injection(registry.clone(), salt);
        let tool = self.engine.tool_mut();
        tool.chaos = registry;
        tool.chaos_salt = salt;
        tool.injected_faults = 0;
    }

    /// Faults injected into this slice since chaos was last armed (the
    /// supervisor's poison counter; see
    /// [`SpSliceTool::injected_faults`]).
    pub fn injected_faults(&self) -> u64 {
        self.engine.tool().injected_faults
    }

    /// Virtual time of the slice's most recent advance — the memory
    /// governor's LRU coldness key.
    pub fn last_active_cycles(&self) -> u64 {
        self.last_active_cycles
    }

    /// Simulated bytes of memory *private* to this slice: pages it
    /// copied on write or faulted in fresh since the fork, at page
    /// granularity. Everything else is shared with the master (COW) and
    /// charged once on the master's side. Deterministic — derived from
    /// the space's fault counters, which are simulated state.
    pub fn private_resident_bytes(&self) -> u64 {
        let stats = self.engine.process().mem.stats();
        (stats.cow_copies + stats.minor_faults) * superpin_vm::mem::PAGE_SIZE as u64
    }

    /// Simulated bytes of the slice's *full* address space (every
    /// resident page, shared or private). This is what a materialized
    /// supervisor checkpoint of the slice costs, since checkpointing
    /// breaks COW sharing.
    pub fn full_resident_bytes(&self) -> u64 {
        self.engine.process().mem.resident_bytes()
    }

    /// Instructions resident in the slice's code cache (the governor
    /// charges a fixed simulated byte cost per compiled instruction).
    pub fn cache_resident_insts(&self) -> usize {
        self.engine.cache_resident_insts()
    }

    /// Flushes the slice's code cache under memory pressure; returns the
    /// instructions freed. Re-execution recompiles on demand at full JIT
    /// cost, so eviction changes cycle accounting — which is why the
    /// supervisor journals it (see
    /// [`crate::supervisor::ReplayStep::EvictCache`]).
    pub fn evict_code_cache(&mut self) -> usize {
        self.engine.evict_code_cache()
    }

    /// A deep, injection-free copy of this slice for supervisor
    /// checkpointing. Page frames are materialized (private copies, no
    /// COW sharing with the live slice — pure host-memory hygiene; the
    /// deterministic `cow_pending` accounting is cloned as-is), and the
    /// chaos registry is stripped so a replay from the checkpoint runs
    /// fault-free by construction.
    pub fn checkpoint(&self) -> SliceRuntime<T> {
        let mut copy = self.clone();
        copy.engine.process_mut().mem.materialize();
        copy.arm_chaos(None, 0);
        copy
    }
}

impl<T: SuperTool> Clone for SliceRuntime<T> {
    fn clone(&self) -> SliceRuntime<T> {
        SliceRuntime {
            num: self.num,
            engine: self.engine.clone(),
            records: self.records.clone(),
            boundary: self.boundary.clone(),
            state: self.state,
            end: self.end,
            start_cycles: self.start_cycles,
            wake_cycles: self.wake_cycles,
            end_cycles: self.end_cycles,
            records_played: self.records_played,
            cow_charged: self.cow_charged,
            debt: self.debt,
            merged: self.merged,
            span_insts: self.span_insts,
            last_active_cycles: self.last_active_cycles,
        }
    }
}

impl<T: SuperTool> std::fmt::Debug for SliceRuntime<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SliceRuntime")
            .field("num", &self.num)
            .field("state", &self.state)
            .field("end", &self.end)
            .field("records_left", &self.records.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::SharedMem;
    use superpin_isa::asm::assemble;

    /// Minimal icount1-style SuperTool for slice tests.
    #[derive(Clone, Default)]
    struct TestCount {
        count: u64,
    }

    impl Pintool for TestCount {
        fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
            for iref in trace.insts() {
                inserter.insert_call(
                    iref.addr,
                    IPoint::Before,
                    |tool, _, _| tool.count += 1,
                    vec![],
                );
            }
        }
    }

    impl SuperTool for TestCount {
        fn reset(&mut self, _slice: u32) {
            self.count = 0;
        }
        fn on_slice_end(&mut self, _slice: u32, _shared: &SharedMem) {
            // Tests read `count` directly; no merge needed here.
        }
    }

    fn master(src: &str) -> (Process, Bubble) {
        let program = assemble(src).expect("assemble");
        let mut process = Process::load(1, &program).expect("load");
        let bubble = Bubble::reserve(&mut process.mem).expect("bubble");
        (process, bubble)
    }

    fn cfg() -> SuperPinConfig {
        SuperPinConfig::paper_default()
    }

    #[test]
    fn spawn_sleeps_until_woken() {
        let (process, bubble) = master("main:\n li r1, 5\n exit 0\n");
        let slice = SliceRuntime::spawn(1, &process, &TestCount::default(), &bubble, &cfg(), 0)
            .expect("spawn");
        assert_eq!(slice.state(), SliceState::Sleeping);
        assert_eq!(slice.num(), 1);
        // The slice released the bubble; the master still holds it.
        assert!(!slice.engine().process().mem.is_mapped(bubble.base()));
        assert!(process.mem.is_mapped(bubble.base()));
    }

    #[test]
    fn slice_runs_to_program_exit_via_playback() {
        let (mut process, bubble) = master("main:\n li r1, 5\n li r2, 6\n exit 3\n");
        let mut slice = SliceRuntime::spawn(1, &process, &TestCount::default(), &bubble, &cfg(), 0)
            .expect("spawn");
        // Master runs to completion, recording its (only) syscall.
        process.run_until_syscall(u64::MAX).expect("run");
        let record = process.do_syscall(0).expect("exit syscall");
        assert!(record.exited.is_some());

        slice.wake(Boundary::ProgramExit, vec![record], 0);
        let used = slice.advance(u64::MAX / 8, 42).expect("advance");
        assert!(used > 0);
        assert_eq!(slice.state(), SliceState::Done);
        assert_eq!(slice.end_reason(), Some(SliceEnd::Exited));
        assert_eq!(slice.end_cycles(), Some(42));
        // Tool counted every dynamic instruction: li, li, (li, li, syscall).
        assert_eq!(slice.tool().inner.count, 5);
        assert_eq!(slice.records_played(), 1);
    }

    #[test]
    fn signature_boundary_stops_before_boundary_instruction() {
        // Master: 10-iteration countdown; boundary captured at iteration 5.
        let src = "main:\n li r1, 10\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n exit 0\n";
        let (mut process, bubble) = master(src);
        let mut slice = SliceRuntime::spawn(1, &process, &TestCount::default(), &bubble, &cfg(), 0)
            .expect("spawn");
        // Advance the master 1 + 2*5 instructions: li + 5×(subi,bne);
        // pc is now at `subi` with r1 == 5.
        process.run_until_syscall(11).expect("run");
        let master_insts_so_far = process.inst_count();
        let sig = Signature::capture(&process);

        slice.wake(Boundary::Signature(Box::new(sig)), vec![], 0);
        slice.advance(u64::MAX / 8, 7).expect("advance");
        assert_eq!(slice.state(), SliceState::Done);
        assert_eq!(slice.end_reason(), Some(SliceEnd::SignatureDetected));
        // The slice counted exactly the master's span — the boundary
        // instruction itself belongs to the next slice.
        assert_eq!(slice.tool().inner.count, master_insts_so_far);
        let stats = slice.tool().sig_stats;
        assert_eq!(stats.detections, 1);
        assert!(stats.quick_checks >= stats.full_checks);
        assert!(stats.full_checks >= 1);
    }

    #[test]
    fn quick_check_filters_loop_iterations() {
        // The boundary pc is inside the loop, so the quick check runs on
        // every iteration but escalates only when the counter matches.
        let src = "main:\n li r1, 50\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n exit 0\n";
        let (mut process, bubble) = master(src);
        let mut slice = SliceRuntime::spawn(1, &process, &TestCount::default(), &bubble, &cfg(), 0)
            .expect("spawn");
        process.run_until_syscall(1 + 2 * 40).expect("run");
        let sig = Signature::capture(&process);
        slice.wake(Boundary::Signature(Box::new(sig)), vec![], 0);
        slice.advance(u64::MAX / 8, 0).expect("advance");
        let stats = slice.tool().sig_stats;
        assert_eq!(stats.detections, 1);
        assert_eq!(
            stats.quick_checks, 41,
            "one quick check per boundary-pc visit"
        );
        assert_eq!(
            stats.full_checks, 1,
            "quick filter must reject non-boundary iterations"
        );
        assert_eq!(stats.stack_checks, 1);
    }

    #[test]
    fn syscall_end_boundary_finishes_after_last_record() {
        // Program does getpid twice then exits; slice's span covers the
        // first getpid only (next slice forced at the second).
        let src = "main:\n li r0, 9\n syscall\n li r0, 9\n syscall\n exit 0\n";
        let (mut process, bubble) = master(src);
        let mut slice = SliceRuntime::spawn(1, &process, &TestCount::default(), &bubble, &cfg(), 0)
            .expect("spawn");
        process.run_until_syscall(u64::MAX).expect("run to sys1");
        let rec1 = process.do_syscall(0).expect("sys1");
        slice.wake(Boundary::SyscallEnd, vec![rec1], 0);
        slice.advance(u64::MAX / 8, 9).expect("advance");
        assert_eq!(slice.state(), SliceState::Done);
        assert_eq!(slice.end_reason(), Some(SliceEnd::RecordsExhausted));
        // li + syscall counted.
        assert_eq!(slice.tool().inner.count, 2);
    }

    #[test]
    fn divergence_is_detected() {
        // Slice reaches a syscall but has no record for it.
        let src = "main:\n li r0, 9\n syscall\n exit 0\n";
        let (mut process, bubble) = master(src);
        let mut slice = SliceRuntime::spawn(1, &process, &TestCount::default(), &bubble, &cfg(), 0)
            .expect("spawn");
        // Wake with a signature boundary that will never match before the
        // syscall.
        process.run_until_syscall(u64::MAX).expect("run");
        process.do_syscall(0).expect("sys");
        process.run_until_syscall(u64::MAX).expect("run to exit");
        let sig = Signature::capture(&process);
        slice.wake(Boundary::Signature(Box::new(sig)), vec![], 0);
        let err = slice.advance(u64::MAX / 8, 0).unwrap_err();
        assert!(matches!(err, SpError::SliceDiverged { slice: 1, .. }));
    }

    #[test]
    fn record_mismatch_is_detected() {
        let src = "main:\n li r0, 9\n syscall\n exit 0\n";
        let (mut process, bubble) = master(src);
        let mut slice = SliceRuntime::spawn(1, &process, &TestCount::default(), &bubble, &cfg(), 0)
            .expect("spawn");
        process.run_until_syscall(u64::MAX).expect("run");
        let mut rec = process.do_syscall(0).expect("sys");
        rec.number = superpin_vm::kernel::SyscallNo::Read; // corrupt
        slice.wake(Boundary::SyscallEnd, vec![rec], 0);
        let err = slice.advance(u64::MAX / 8, 0).unwrap_err();
        assert!(matches!(err, SpError::RecordMismatch { .. }));
    }

    #[test]
    fn cow_faults_are_charged_once() {
        let src = r#"
            .data
            buf: .space 8192
            .text
            main:
                la r2, buf
                li r3, 1
                st r3, 0(r2)
                st r3, 4096(r2)
                exit 0
        "#;
        let (mut process, bubble) = master(src);
        // Touch the pages in the master first so the slice's writes COW.
        let program_data = superpin_isa::DATA_BASE;
        process.mem.write_u64(program_data, 9).expect("touch");
        process
            .mem
            .write_u64(program_data + 4096, 9)
            .expect("touch");
        let mut slice = SliceRuntime::spawn(1, &process, &TestCount::default(), &bubble, &cfg(), 0)
            .expect("spawn");
        // Keep an extra fork alive so page frames stay shared even after
        // the master's own writes copy them (in the real run, many slices
        // hold references simultaneously).
        let keeper = process.fork(99);
        process.run_until_syscall(u64::MAX).expect("run");
        let rec = process.do_syscall(0).expect("exit");
        slice.wake(Boundary::ProgramExit, vec![rec], 0);
        let used = slice.advance(u64::MAX / 8, 0).expect("advance");
        let cow = slice.engine().process().mem.stats().cow_copies;
        assert!(cow >= 2, "slice stores must COW: {cow}");
        assert!(used >= cow * cfg().cost.cow_fault);
        drop(keeper);
    }

    /// A woken slice with a loop boundary, plus the signature it should
    /// detect (shared setup for the chaos tests below).
    fn woken_loop_slice() -> SliceRuntime<TestCount> {
        let src = "main:\n li r1, 10\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n exit 0\n";
        let (mut process, bubble) = master(src);
        let slice = SliceRuntime::spawn(1, &process, &TestCount::default(), &bubble, &cfg(), 0)
            .expect("spawn");
        process.run_until_syscall(11).expect("run");
        let sig = Signature::capture(&process);
        let mut slice = slice;
        slice.wake(Boundary::Signature(Box::new(sig)), vec![], 0);
        slice
    }

    #[test]
    fn chaos_quick_miss_makes_slice_overrun_its_boundary() {
        use superpin_fault::{FailPlan, SiteMode};
        let mut slice = woken_loop_slice();
        let plan = FailPlan::new(7, 0.0).with_site(Site::CoreSignatureQuickMiss, SiteMode::Always);
        slice.arm_chaos(Some(Arc::new(FailpointRegistry::new(plan))), 0);
        // Every genuine quick match is suppressed, so the slice runs past
        // its boundary and diverges at the unrecorded exit syscall.
        let err = slice.advance(u64::MAX / 8, 0).unwrap_err();
        assert!(matches!(err, SpError::SliceDiverged { slice: 1, .. }));
        assert!(slice.injected_faults() >= 1, "poison counter must move");
        assert_eq!(slice.tool().sig_stats.detections, 0);
    }

    #[test]
    fn chaos_full_mismatch_skips_stack_stage() {
        use superpin_fault::{FailPlan, SiteMode};
        let mut slice = woken_loop_slice();
        let plan =
            FailPlan::new(7, 0.0).with_site(Site::CoreSignatureFullMismatch, SiteMode::Nth(1));
        slice.arm_chaos(Some(Arc::new(FailpointRegistry::new(plan))), 0);
        let err = slice.advance(u64::MAX / 8, 0).unwrap_err();
        assert!(matches!(err, SpError::SliceDiverged { .. }));
        let stats = slice.tool().sig_stats;
        assert_eq!(slice.injected_faults(), 1);
        assert!(stats.full_checks >= 1);
        assert_eq!(stats.stack_checks, 0, "injection must skip the stack stage");
    }

    #[test]
    fn checkpoint_replay_is_bit_identical_to_fault_free_run() {
        // Reference: fault-free slice runs to detection.
        let mut reference = woken_loop_slice();
        reference.advance(u64::MAX / 8, 3).expect("reference");
        assert_eq!(reference.end_reason(), Some(SliceEnd::SignatureDetected));

        // Victim: checkpoint at wake, poison with chaos, then roll back
        // and replay from the checkpoint with injection off.
        let mut victim = woken_loop_slice();
        let checkpoint = victim.checkpoint();
        use superpin_fault::{FailPlan, SiteMode};
        let plan = FailPlan::new(7, 0.0).with_site(Site::CoreSignatureQuickMiss, SiteMode::Always);
        victim.arm_chaos(Some(Arc::new(FailpointRegistry::new(plan))), 0);
        victim.advance(u64::MAX / 8, 3).unwrap_err();

        let mut replay = checkpoint;
        assert_eq!(replay.injected_faults(), 0);
        replay.advance(u64::MAX / 8, 3).expect("replay");
        assert_eq!(replay.end_reason(), Some(SliceEnd::SignatureDetected));
        assert_eq!(replay.end_cycles(), reference.end_cycles());
        assert_eq!(replay.tool().inner.count, reference.tool().inner.count);
        assert_eq!(replay.tool().sig_stats, reference.tool().sig_stats);
        assert_eq!(replay.engine().stats(), reference.engine().stats());
        assert_eq!(
            replay.engine().process().mem.stats(),
            reference.engine().process().mem.stats()
        );
    }
}

//! The slice-entry trampoline (paper §4.1).
//!
//! "When the control process determines that a new timeslice would be
//! beneficial, it modifies the program counter to jump to a special
//! trampoline. This trampoline changes the stack pointer to a private
//! stack, then branches into the Pin VM, passing along information about
//! the original program counter and stack."
//!
//! In the reproduction the "Pin VM" is host-side, so the trampoline's job
//! reduces to the transparency-critical parts: capture the original
//! `(pc, sp)`, give the instrumentation runtime a private stack mapped
//! away from application memory, and restore the original context exactly
//! before instrumented execution begins.

use superpin_isa::Reg;
use superpin_vm::mem::{MemError, RegionKind};
use superpin_vm::process::Process;

/// Base address of the private VM stack mapped into slices.
pub const PRIVATE_STACK_BASE: u64 = 0x7000_0000;

/// Size of the private VM stack.
pub const PRIVATE_STACK_LEN: u64 = 64 << 10;

/// The saved application context while the runtime is on its private
/// stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrampolineFrame {
    /// Application program counter at slice-spawn time.
    pub orig_pc: u64,
    /// Application stack pointer at slice-spawn time.
    pub orig_sp: u64,
}

/// Redirects a freshly forked slice through the trampoline: saves the
/// application `(pc, sp)`, maps the private VM stack, and parks the CPU
/// on it.
///
/// # Errors
///
/// Returns a memory error if the private-stack range is occupied (which
/// would indicate the application mapped memory there — a transparency
/// violation the caller must surface).
pub fn enter(process: &mut Process) -> Result<TrampolineFrame, MemError> {
    let frame = TrampolineFrame {
        orig_pc: process.cpu.pc,
        orig_sp: process.cpu.regs.get(Reg::SP),
    };
    process
        .mem
        .map_region(PRIVATE_STACK_BASE, PRIVATE_STACK_LEN, RegionKind::Mmap)?;
    process
        .cpu
        .regs
        .set(Reg::SP, PRIVATE_STACK_BASE + PRIVATE_STACK_LEN - 64);
    Ok(frame)
}

/// Returns from the trampoline: restores the application context exactly
/// and releases the private stack, leaving the slice indistinguishable
/// from the master at the fork point.
///
/// # Errors
///
/// Returns a memory error on double-resume (private stack not mapped).
pub fn resume(process: &mut Process, frame: TrampolineFrame) -> Result<(), MemError> {
    process.mem.unmap(PRIVATE_STACK_BASE)?;
    process.cpu.pc = frame.orig_pc;
    process.cpu.regs.set(Reg::SP, frame.orig_sp);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use superpin_isa::asm::assemble;

    fn process() -> Process {
        let program = assemble("main:\n li r1, 1\n exit 0\n").expect("assemble");
        let mut p = Process::load(1, &program).expect("load");
        p.run_until_syscall(1).expect("advance");
        p
    }

    #[test]
    fn round_trip_restores_context_exactly() {
        let mut p = process();
        let before_cpu = p.cpu;
        let before_digest = p.mem.content_digest();

        let frame = enter(&mut p).expect("enter");
        assert_ne!(p.cpu.regs.get(Reg::SP), before_cpu.regs.get(Reg::SP));
        // Runtime work happens on the private stack without touching the
        // application stack.
        let vm_sp = p.cpu.regs.get(Reg::SP);
        p.mem.write_u64(vm_sp - 8, 0xdead).expect("vm push");

        resume(&mut p, frame).expect("resume");
        assert_eq!(p.cpu, before_cpu);
        assert_eq!(
            p.mem.content_digest(),
            before_digest,
            "application memory must be untouched after the trampoline"
        );
    }

    #[test]
    fn enter_fails_if_application_occupies_the_range() {
        let mut p = process();
        p.mem
            .map_anonymous(Some(PRIVATE_STACK_BASE), 4096)
            .expect("squat");
        assert!(enter(&mut p).is_err());
    }

    #[test]
    fn double_resume_is_an_error() {
        let mut p = process();
        let frame = enter(&mut p).expect("enter");
        resume(&mut p, frame).expect("resume");
        assert!(resume(&mut p, frame).is_err());
    }
}

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # superpin
//!
//! A from-scratch reproduction of **SuperPin: Parallelizing Dynamic
//! Instrumentation for Real-Time Performance** (Wallace & Hazelwood,
//! CGO 2007).
//!
//! SuperPin runs the application *natively* while forking non-overlapping
//! instrumented timeslices that execute in parallel on idle cores; each
//! slice detects its end via a state signature recorded by the next
//! slice, plays back the master's syscalls instead of re-executing them,
//! and merges its results into shared memory in slice order.
//!
//! The crate layers onto the reproduction's substrates:
//! `superpin-isa` (binaries), `superpin-vm` (processes, COW fork,
//! ptrace), `superpin-dbi` (the Pin-like engine), and `superpin-sched`
//! (the multiprocessor timing model).
//!
//! * [`SuperPinRunner`] — drives a complete run and produces a
//!   [`SuperPinReport`] with the paper's Figure 6 time decomposition.
//! * [`SuperTool`] — the `SP_*` tool API (paper §5).
//! * [`signature`] — record/detect slice boundaries (paper §4.4).
//! * [`mod@slice`], [`master`] — the two halves of the fork protocol
//!   (paper §4.1–§4.3).
//! * [`baseline`] — native and traditional-Pin comparison runs.
//!
//! # Example: an icount SuperTool end to end
//!
//! ```
//! use superpin::{
//!     baseline, AutoMerge, SharedMem, SuperPinConfig, SuperPinRunner, SuperTool,
//! };
//! use superpin_dbi::{IPoint, Inserter, Pintool, Trace};
//! use superpin_isa::asm::assemble;
//! use superpin_vm::process::Process;
//!
//! #[derive(Clone)]
//! struct ICount {
//!     count: u64,
//!     area: superpin::AreaId,
//! }
//!
//! impl Pintool for ICount {
//!     fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
//!         for bbl in trace.bbls() {
//!             let n = bbl.num_insts() as u64;
//!             inserter.insert_call(bbl.head_addr(), IPoint::Before,
//!                 move |tool, _, _| tool.count += n, vec![]);
//!         }
//!     }
//! }
//!
//! impl SuperTool for ICount {
//!     fn reset(&mut self, _slice: u32) { self.count = 0; }
//!     fn on_slice_end(&mut self, _slice: u32, shared: &SharedMem) {
//!         shared.area(self.area).add(0, self.count);
//!     }
//! }
//!
//! let program = assemble(
//!     "main:\n li r1, 20000\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n exit 0\n",
//! )?;
//! let shared = SharedMem::new();
//! let area = shared.create_area(1, AutoMerge::Manual);
//! let tool = ICount { count: 0, area };
//!
//! let mut cfg = SuperPinConfig::paper_default();
//! cfg.timeslice_cycles = 20_000;
//! cfg.quantum_cycles = 1_000;
//! let report = SuperPinRunner::new(
//!     Process::load(1, &program)?, tool, shared.clone(), cfg,
//! )?.run()?;
//!
//! // The merged total equals the true dynamic instruction count.
//! let native = baseline::run_native(Process::load(1, &program)?)?;
//! assert_eq!(shared.area(area).read(0), native.insts);
//! assert_eq!(report.slice_inst_total(), report.master_insts);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod api;
pub mod baseline;
pub mod bubble;
pub mod config;
pub mod governor;
pub mod master;
pub mod record;
pub mod report;
pub mod runner;
pub mod shared;
pub mod signature;
pub mod slice;
pub mod supervisor;
pub mod syscall_policy;
pub mod trampoline;

mod error;

pub use api::SuperTool;
pub use config::SuperPinConfig;
pub use error::SpError;
pub use governor::{MemoryGovernor, ResidentLedger, TenantAdmission, TenantCounters, TenantLedger};
pub use record::{
    AdmissionDecision, NondetEvent, RunMode, RunProbe, RunRecorder, RunSource, SliceProbe,
};
pub use report::{SliceReport, SuperPinReport, TimeBreakdown};
pub use runner::{HostProfile, SuperPinRunner};
pub use shared::{AreaId, AutoMerge, SharedArea, SharedMem};
pub use signature::{Signature, SignatureStats};
pub use slice::{Boundary, SliceEnd, SliceRuntime, SliceState, SpSliceTool};
pub use superpin_analysis::{PlanKnobs, ProgramAnalysis, SoundnessOracle, SuperblockPlan};
pub use superpin_fault::{FailPlan, FailpointRegistry, Site, SiteMode};

//! The master application + control process (paper §4.2–§4.3).
//!
//! The master runs the application *natively* (uninstrumented) under a
//! ptrace-style [`Controller`]. The control logic here decides, at each
//! syscall stop, whether to record the syscall's effects for later slice
//! playback or to force a new timeslice; timeouts are handled by the
//! runner between quanta (the analogue of the timer process, §4.3).

use crate::config::SuperPinConfig;
use crate::error::SpError;
use crate::record::{NondetEvent, RunMode};
use crate::syscall_policy::{classify, SyscallAction};
use superpin_dbi::cycles_to_ns;
use superpin_isa::Reg;
use superpin_vm::kernel::{SyscallNo, SyscallRecord};
use superpin_vm::process::Process;
use superpin_vm::ptrace::{Controller, PtraceStats, StopReason};

/// What the master's advance surfaced to the runner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MasterEvent {
    /// Budget consumed; nothing to handle.
    None,
    /// Parked at a syscall that requires forking a new slice before it
    /// can proceed (unknown/unsafe syscall, record budget exceeded, or
    /// recording disabled).
    NeedForkAtSyscall,
    /// The application exited.
    Exited,
}

/// The master application runtime.
pub struct MasterRuntime {
    controller: Controller,
    /// Records accumulated since the last fork (the pending slice's
    /// playback queue).
    span_records: Vec<SyscallRecord>,
    /// Recordable (budget-counted) syscalls in the current span.
    span_recordable: usize,
    cow_charged: u64,
    exited: bool,
    pending_force: bool,
    syscall_count: u64,
}

impl MasterRuntime {
    /// Wraps a loaded master process.
    pub fn new(process: Process) -> MasterRuntime {
        MasterRuntime {
            controller: Controller::new(process),
            span_records: Vec::new(),
            span_recordable: 0,
            cow_charged: 0,
            exited: false,
            pending_force: false,
            syscall_count: 0,
        }
    }

    /// The master process.
    pub fn process(&self) -> &Process {
        self.controller.process()
    }

    /// Mutable master process (the runner marks its pages COW-pending at
    /// each fork and installs the chaos registry).
    pub fn process_mut(&mut self) -> &mut Process {
        self.controller.process_mut()
    }

    /// Whether the application has exited.
    pub fn exited(&self) -> bool {
        self.exited
    }

    /// Whether the master is parked at a syscall waiting for a fork slot.
    pub fn pending_force(&self) -> bool {
        self.pending_force
    }

    /// Ptrace stop statistics.
    pub fn ptrace_stats(&self) -> PtraceStats {
        self.controller.stats()
    }

    /// Total syscalls serviced.
    pub fn syscall_count(&self) -> u64 {
        self.syscall_count
    }

    /// Takes the records accumulated for the span that just ended
    /// (called by the runner at each fork and at exit).
    pub fn take_span_records(&mut self) -> Vec<SyscallRecord> {
        self.span_recordable = 0;
        std::mem::take(&mut self.span_records)
    }

    /// Runs the master natively for up to `budget` cycles at virtual time
    /// `now_cycles`. Returns cycles consumed and the event (if any) the
    /// runner must handle.
    ///
    /// # Errors
    ///
    /// Propagates guest errors.
    pub fn advance(
        &mut self,
        budget: u64,
        now_cycles: u64,
        cfg: &SuperPinConfig,
        mode: &mut RunMode,
    ) -> Result<(u64, MasterEvent), SpError> {
        if self.exited {
            return Ok((0, MasterEvent::Exited));
        }
        if self.pending_force {
            return Ok((0, MasterEvent::NeedForkAtSyscall));
        }
        let cost = &cfg.cost;
        let mut used = 0u64;
        loop {
            let inst_budget = budget.saturating_sub(used) / cost.native_cpi;
            if inst_budget == 0 {
                break;
            }
            let before = self.process().inst_count();
            let reason = self.controller.resume(inst_budget)?;
            used += (self.process().inst_count() - before) * cost.native_cpi;
            match reason {
                StopReason::Timeout => break,
                StopReason::SyscallEntry => {
                    used += cost.ptrace_stop;
                    let raw = self.process().cpu.regs.get(Reg::R0);
                    let number =
                        SyscallNo::from_raw(raw).ok_or(superpin_vm::VmError::BadSyscall {
                            pc: self.process().cpu.pc,
                            number: raw,
                        })?;
                    let action = classify(number, cfg.max_sysrecs > 0);
                    let over_budget = action == SyscallAction::RecordReplay
                        && cfg.max_sysrecs > 0
                        && self.span_recordable >= cfg.max_sysrecs
                        && number != SyscallNo::Exit;
                    if action == SyscallAction::ForceSlice || over_budget {
                        self.pending_force = true;
                        return Ok((used, MasterEvent::NeedForkAtSyscall));
                    }
                    used += self.service_syscall(now_cycles + used, action, cfg, mode)?;
                    if self.exited {
                        return Ok((used, MasterEvent::Exited));
                    }
                }
                StopReason::Exited(_) => {
                    self.exited = true;
                    return Ok((used, MasterEvent::Exited));
                }
                StopReason::Halted => {
                    return Err(SpError::Vm(superpin_vm::VmError::UnexpectedHalt {
                        pc: self.process().cpu.pc,
                    }))
                }
            }
        }
        // Charge master-side copy-on-write faults taken this advance.
        let cow = self.process().mem.stats().cow_copies;
        let delta = cow - self.cow_charged;
        if delta > 0 {
            used += delta * cost.cow_fault;
            self.cow_charged = cow;
        }
        Ok((used, MasterEvent::None))
    }

    /// Executes the syscall the master is parked at (used both inline and
    /// to resolve a pending forced fork once a slot frees up). Appends
    /// the record to the current span. Returns cycles charged.
    ///
    /// In [`RunMode::Record`] the record is streamed into the log after
    /// live execution; in [`RunMode::Replay`] the next recorded syscall
    /// is *applied* to the parked guest instead of re-executing the
    /// kernel, after verifying that its number and arguments still match
    /// the live registers (a mismatch is a typed divergence error). The
    /// played-back record joins the span like a live one, so slices play
    /// back the substituted effects too.
    fn service_syscall(
        &mut self,
        now_cycles: u64,
        action: SyscallAction,
        cfg: &SuperPinConfig,
        mode: &mut RunMode,
    ) -> Result<u64, SpError> {
        let record = match mode {
            RunMode::Replay(source) => {
                let pc = self.process().cpu.pc;
                let record = match source.next_event() {
                    Some(NondetEvent::Syscall(record)) => record,
                    Some(other) => {
                        return Err(SpError::ReplayDivergence {
                            context: "master syscall",
                            detail: format!(
                                "expected a syscall record at pc {pc:#x}, log has a {} event",
                                other.kind()
                            ),
                        })
                    }
                    None => {
                        return Err(SpError::ReplayDivergence {
                            context: "master syscall",
                            detail: format!("log exhausted at pc {pc:#x}"),
                        })
                    }
                };
                let regs = &self.process().cpu.regs;
                let live_number = regs.get(Reg::R0);
                let live_args = [
                    regs.get(Reg::R1),
                    regs.get(Reg::R2),
                    regs.get(Reg::R3),
                    regs.get(Reg::R4),
                    regs.get(Reg::R5),
                ];
                if record.number as u64 != live_number || record.args != live_args {
                    return Err(SpError::ReplayDivergence {
                        context: "master syscall",
                        detail: format!(
                            "at pc {pc:#x}: recorded syscall {}{:?}, guest is issuing \
                             {live_number}{live_args:?}",
                            record.number as u64, record.args
                        ),
                    });
                }
                self.controller.playback_syscall(&record)?;
                record
            }
            _ => {
                let record = self
                    .controller
                    .step_over_syscall(cycles_to_ns(now_cycles))?;
                if let RunMode::Record(recorder) = mode {
                    recorder.record(NondetEvent::Syscall(record.clone()));
                }
                record
            }
        };
        self.syscall_count += 1;
        if record.exited.is_some() {
            self.exited = true;
        }
        if action == SyscallAction::RecordReplay {
            self.span_recordable += 1;
        }
        self.span_records.push(record);
        Ok(cfg.cost.syscall)
    }

    /// Resolves a pending forced-fork syscall: executes and records it so
    /// the ending slice can play it back as its final record. Returns
    /// cycles charged.
    ///
    /// # Errors
    ///
    /// Propagates guest errors.
    ///
    /// # Panics
    ///
    /// Panics if no forced fork is pending (runner logic error).
    pub fn resolve_forced_syscall(
        &mut self,
        now_cycles: u64,
        cfg: &SuperPinConfig,
        mode: &mut RunMode,
    ) -> Result<u64, SpError> {
        assert!(self.pending_force, "no forced fork pending");
        self.pending_force = false;
        // The forced syscall is still recorded (our kernel records every
        // syscall's effects); what the *force* preserves from the paper
        // is the fork-at-syscall scheduling behaviour.
        self.service_syscall(now_cycles, SyscallAction::RecordReplay, cfg, mode)
    }
}

impl std::fmt::Debug for MasterRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MasterRuntime")
            .field("exited", &self.exited)
            .field("pending_force", &self.pending_force)
            .field("span_records", &self.span_records.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superpin_isa::asm::assemble;

    fn master(src: &str) -> MasterRuntime {
        let program = assemble(src).expect("assemble");
        MasterRuntime::new(Process::load(1, &program).expect("load"))
    }

    fn cfg() -> SuperPinConfig {
        SuperPinConfig::paper_default()
    }

    #[test]
    fn runs_and_records_syscalls() {
        let mut m = master("main:\n li r0, 9\n syscall\n li r0, 8\n syscall\n exit 0\n");
        let (used, event) = m
            .advance(u64::MAX / 8, 0, &cfg(), &mut RunMode::Live)
            .expect("advance");
        assert_eq!(event, MasterEvent::Exited);
        assert!(used > 0);
        let records = m.take_span_records();
        assert_eq!(records.len(), 3); // getpid, gettime, exit
        assert!(records[2].exited.is_some());
        assert_eq!(m.syscall_count(), 3);
    }

    #[test]
    fn budget_limits_progress() {
        let mut m =
            master("main:\n li r1, 1000\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n exit 0\n");
        let (used, event) = m
            .advance(10, 0, &cfg(), &mut RunMode::Live)
            .expect("advance");
        assert_eq!(event, MasterEvent::None);
        assert_eq!(used, 10);
        assert_eq!(m.process().inst_count(), 10);
    }

    #[test]
    fn sysrec_budget_forces_fork() {
        let mut config = cfg();
        config.max_sysrecs = 2;
        let mut m = master(
            "main:\n li r0, 9\n syscall\n li r0, 9\n syscall\n li r0, 9\n syscall\n exit 0\n",
        );
        let (_, event) = m
            .advance(u64::MAX / 8, 0, &config, &mut RunMode::Live)
            .expect("advance");
        assert_eq!(event, MasterEvent::NeedForkAtSyscall);
        assert!(m.pending_force());
        assert_eq!(m.take_span_records().len(), 2);
        // Resolving executes the third getpid and starts a new span.
        m.resolve_forced_syscall(0, &config, &mut RunMode::Live)
            .expect("resolve");
        assert!(!m.pending_force());
        let (_, event) = m
            .advance(u64::MAX / 8, 0, &config, &mut RunMode::Live)
            .expect("advance");
        assert_eq!(event, MasterEvent::Exited);
        let records = m.take_span_records();
        // getpid (forced) + exit.
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn disabled_recording_forces_on_first_recordable() {
        let mut config = cfg();
        config.max_sysrecs = 0;
        let mut m = master("main:\n li r0, 9\n syscall\n exit 0\n");
        let (_, event) = m
            .advance(u64::MAX / 8, 0, &config, &mut RunMode::Live)
            .expect("advance");
        assert_eq!(event, MasterEvent::NeedForkAtSyscall);
    }

    #[test]
    fn duplicate_syscalls_do_not_consume_record_budget() {
        let mut config = cfg();
        config.max_sysrecs = 1;
        // brk twice (Duplicate), then getpid (RecordReplay), then exit.
        let mut m = master(
            "main:\n li r0, 5\n li r1, 0x1000100\n syscall\n li r0, 5\n li r1, 0x1000200\n syscall\n li r0, 9\n syscall\n exit 0\n",
        );
        let (_, event) = m
            .advance(u64::MAX / 8, 0, &config, &mut RunMode::Live)
            .expect("advance");
        // brk+brk fit (no budget), getpid takes the 1 slot, exit passes.
        assert_eq!(event, MasterEvent::Exited);
        assert_eq!(m.take_span_records().len(), 4);
    }

    #[test]
    fn exit_never_forces() {
        let mut config = cfg();
        config.max_sysrecs = 1;
        let mut m = master("main:\n li r0, 8\n syscall\n exit 0\n");
        let (_, event) = m
            .advance(u64::MAX / 8, 0, &config, &mut RunMode::Live)
            .expect("advance");
        // gettime consumes the single slot; exit must still pass through.
        assert_eq!(event, MasterEvent::Exited);
    }
}

//! Memory-pressure governance: a deterministic byte-budget ledger over
//! the simulation's resident memory (see DESIGN.md §4.9).
//!
//! SuperPin's fork-per-timeslice design multiplies a program's footprint:
//! every live slice holds COW-diverged pages, a private code cache, and —
//! under supervision — a materialized wake-time checkpoint. On a real
//! machine that pressure manifests as swap or OOM kills; here it is
//! modeled as a **byte budget** (`--mem-budget`) that the epoch loop
//! enforces with admission control and a three-rung eviction ladder:
//!
//! 1. **Drop retained checkpoints** of committed (`Done`, unmerged)
//!    slices. A committed slice is never condemned, so its checkpoint is
//!    pure insurance the run no longer needs.
//! 2. **Evict cold code caches** of live slices, coldest first (LRU by
//!    the slice's last-active virtual time). Costs re-JIT cycles, which
//!    the supervisor journals so rebuilds stay bit-identical.
//! 3. **Defer or degrade the fork.** If any live slice can still free
//!    memory by completing, the fork is deferred to a later epoch
//!    (backpressure — the master stalls exactly like a max-slices
//!    stall). Otherwise deferring would deadlock — a slice only wakes
//!    when the *next* slice is forked — so the fork is admitted but the
//!    new slice is degraded to inline serial execution, mirroring the
//!    supervisor's degrade rung.
//!
//! Every input to these decisions (page counters, cache occupancy,
//! checkpoint footprints, virtual timestamps) is simulated state, and
//! every decision is taken at a control step or epoch barrier on the
//! supervisor thread. For a fixed budget, reports are therefore
//! bit-identical across host thread counts; with no budget the governor
//! is never built and the run is field-identical to an ungoverned one.

use std::collections::HashSet;

/// Simulated bytes charged per instruction resident in a slice's code
/// cache (compiled trace bodies plus side tables).
pub const COMPILED_INST_BYTES: u64 = 64;

/// Simulated bytes charged per pc in a shared-code-cache index snapshot.
pub const SNAPSHOT_ENTRY_BYTES: u64 = 8;

/// Flat simulated cost of admitting one fork (kernel structures and page
/// tables for the child), charged up front by the admission check.
pub const FORK_COST_BYTES: u64 = 4096;

/// The byte-budget ledger and its pressure counters.
///
/// The governor owns the *decision state* (budget, peak, episode flags,
/// its own degraded set); the eviction ladder itself lives in the runner,
/// which holds the slices, supervisor, and shared state the rungs act on.
#[derive(Clone, Debug)]
pub struct MemoryGovernor {
    budget: u64,
    /// High-water mark of observed resident usage.
    pub peak_resident_bytes: u64,
    /// Fork-deferral episodes (one per continuous stretch of deferrals,
    /// matching the runner's stall-episode accounting).
    pub slices_deferred: u64,
    /// Checkpoints reclaimed by ladder rung 1.
    pub checkpoints_dropped: u64,
    /// Code caches flushed by ladder rung 2.
    pub caches_evicted: u64,
    /// Slices this governor admitted degraded-to-inline (ladder rung 3).
    /// Tracked here — not only in the supervisor — because a budget can
    /// be set without supervision.
    degraded: HashSet<u32>,
    /// Total rung-3 degradations, surviving merge-time release.
    degraded_total: u64,
    /// Whether the master is currently inside a deferral episode.
    deferring: bool,
}

impl MemoryGovernor {
    /// A governor enforcing `budget` simulated resident bytes.
    pub fn new(budget: u64) -> MemoryGovernor {
        MemoryGovernor {
            budget,
            peak_resident_bytes: 0,
            slices_deferred: 0,
            checkpoints_dropped: 0,
            caches_evicted: 0,
            degraded: HashSet::new(),
            degraded_total: 0,
            deferring: false,
        }
    }

    /// The configured budget in simulated bytes.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Records an observed usage sample, updating the high-water mark.
    pub fn observe(&mut self, usage: u64) {
        self.peak_resident_bytes = self.peak_resident_bytes.max(usage);
    }

    /// Whether charging `extra` more bytes on top of `usage` would
    /// exceed the budget.
    pub fn over_budget(&self, usage: u64, extra: u64) -> bool {
        usage.saturating_add(extra) > self.budget
    }

    /// Enters (or continues) a deferral episode. Episodes are counted
    /// once per continuous stretch, like the runner's stall events.
    pub fn note_deferral(&mut self) {
        if !self.deferring {
            self.deferring = true;
            self.slices_deferred += 1;
        }
    }

    /// Ends the current deferral episode (the fork was admitted).
    pub fn end_deferral(&mut self) {
        self.deferring = false;
    }

    /// Whether a deferral episode is in progress (the planner keeps
    /// epochs short while it is, so admission is re-checked promptly).
    pub fn is_deferring(&self) -> bool {
        self.deferring
    }

    /// Counts a rung-1 checkpoint reclamation.
    pub fn note_checkpoint_dropped(&mut self) {
        self.checkpoints_dropped += 1;
    }

    /// Counts a rung-2 cache flush.
    pub fn note_cache_evicted(&mut self) {
        self.caches_evicted += 1;
    }

    /// Marks a slice admitted under rung 3: it runs inline on the
    /// supervisor thread (bounded live memory) for its whole life.
    pub fn degrade(&mut self, num: u32) {
        if self.degraded.insert(num) {
            self.degraded_total += 1;
        }
    }

    /// Whether the governor pinned this slice inline.
    pub fn is_degraded(&self, num: u32) -> bool {
        self.degraded.contains(&num)
    }

    /// Slice numbers currently pinned inline by the governor.
    pub fn degraded_set(&self) -> HashSet<u32> {
        self.degraded.clone()
    }

    /// Total slices ever degraded by rung 3 (merge-time release does not
    /// roll this back; it feeds the report's `slices_degraded`).
    pub fn degraded_total(&self) -> u64 {
        self.degraded_total
    }

    /// Forgets a merged slice's degraded pin.
    pub fn release(&mut self, num: u32) {
        self.degraded.remove(&num);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_is_a_high_water_mark() {
        let mut gov = MemoryGovernor::new(1000);
        gov.observe(10);
        gov.observe(500);
        gov.observe(200);
        assert_eq!(gov.peak_resident_bytes, 500);
    }

    #[test]
    fn over_budget_is_inclusive_of_the_charge_and_saturates() {
        let gov = MemoryGovernor::new(1000);
        assert!(!gov.over_budget(900, 100), "exactly at budget fits");
        assert!(gov.over_budget(900, 101));
        assert!(gov.over_budget(u64::MAX, 1), "no overflow wraparound");
        assert!(!MemoryGovernor::new(u64::MAX).over_budget(u64::MAX - 1, 1));
    }

    #[test]
    fn deferral_episodes_count_once_per_stretch() {
        let mut gov = MemoryGovernor::new(0);
        gov.note_deferral();
        gov.note_deferral();
        gov.note_deferral();
        assert_eq!(gov.slices_deferred, 1, "one continuous episode");
        assert!(gov.is_deferring());
        gov.end_deferral();
        assert!(!gov.is_deferring());
        gov.note_deferral();
        assert_eq!(gov.slices_deferred, 2, "new stretch, new episode");
    }

    #[test]
    fn degraded_total_survives_release() {
        let mut gov = MemoryGovernor::new(0);
        gov.degrade(3);
        gov.degrade(3); // idempotent
        assert!(gov.is_degraded(3));
        assert_eq!(gov.degraded_total(), 1);
        gov.release(3);
        assert!(!gov.is_degraded(3));
        assert_eq!(gov.degraded_total(), 1, "history is not rolled back");
        gov.degrade(4);
        assert_eq!(gov.degraded_total(), 2);
    }
}

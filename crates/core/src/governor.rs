//! Memory-pressure governance: a deterministic byte-budget ledger over
//! the simulation's resident memory (see DESIGN.md §4.9).
//!
//! SuperPin's fork-per-timeslice design multiplies a program's footprint:
//! every live slice holds COW-diverged pages, a private code cache, and —
//! under supervision — a materialized wake-time checkpoint. On a real
//! machine that pressure manifests as swap or OOM kills; here it is
//! modeled as a **byte budget** (`--mem-budget`) that the epoch loop
//! enforces with admission control and a three-rung eviction ladder:
//!
//! 1. **Drop retained checkpoints** of committed (`Done`, unmerged)
//!    slices. A committed slice is never condemned, so its checkpoint is
//!    pure insurance the run no longer needs.
//! 2. **Evict cold code caches** of live slices, coldest first (LRU by
//!    the slice's last-active virtual time). Costs re-JIT cycles, which
//!    the supervisor journals so rebuilds stay bit-identical.
//! 3. **Defer or degrade the fork.** If any live slice can still free
//!    memory by completing, the fork is deferred to a later epoch
//!    (backpressure — the master stalls exactly like a max-slices
//!    stall). Otherwise deferring would deadlock — a slice only wakes
//!    when the *next* slice is forked — so the fork is admitted but the
//!    new slice is degraded to inline serial execution, mirroring the
//!    supervisor's degrade rung.
//!
//! Every input to these decisions (page counters, cache occupancy,
//! checkpoint footprints, virtual timestamps) is simulated state, and
//! every decision is taken at a control step or epoch barrier on the
//! supervisor thread. For a fixed budget, reports are therefore
//! bit-identical across host thread counts; with no budget the governor
//! is never built and the run is field-identical to an ungoverned one.

use std::collections::{BTreeMap, HashSet};

/// Simulated bytes charged per instruction resident in a slice's code
/// cache (compiled trace bodies plus side tables).
pub const COMPILED_INST_BYTES: u64 = 64;

/// Simulated bytes charged per pc in a shared-code-cache index snapshot.
pub const SNAPSHOT_ENTRY_BYTES: u64 = 8;

/// Flat simulated cost of admitting one fork (kernel structures and page
/// tables for the child), charged up front by the admission check.
pub const FORK_COST_BYTES: u64 = 4096;

/// The byte-budget ledger and its pressure counters.
///
/// The governor owns the *decision state* (budget, peak, episode flags,
/// its own degraded set); the eviction ladder itself lives in the runner,
/// which holds the slices, supervisor, and shared state the rungs act on.
#[derive(Clone, Debug)]
pub struct MemoryGovernor {
    budget: u64,
    /// High-water mark of observed resident usage.
    pub peak_resident_bytes: u64,
    /// Fork-deferral episodes (one per continuous stretch of deferrals,
    /// matching the runner's stall-episode accounting).
    pub slices_deferred: u64,
    /// Checkpoints reclaimed by ladder rung 1.
    pub checkpoints_dropped: u64,
    /// Code caches flushed by ladder rung 2.
    pub caches_evicted: u64,
    /// Slices this governor admitted degraded-to-inline (ladder rung 3).
    /// Tracked here — not only in the supervisor — because a budget can
    /// be set without supervision.
    degraded: HashSet<u32>,
    /// Total rung-3 degradations, surviving merge-time release.
    degraded_total: u64,
    /// Whether the master is currently inside a deferral episode.
    deferring: bool,
}

impl MemoryGovernor {
    /// A governor enforcing `budget` simulated resident bytes.
    pub fn new(budget: u64) -> MemoryGovernor {
        MemoryGovernor {
            budget,
            peak_resident_bytes: 0,
            slices_deferred: 0,
            checkpoints_dropped: 0,
            caches_evicted: 0,
            degraded: HashSet::new(),
            degraded_total: 0,
            deferring: false,
        }
    }

    /// The configured budget in simulated bytes.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Records an observed usage sample, updating the high-water mark.
    pub fn observe(&mut self, usage: u64) {
        self.peak_resident_bytes = self.peak_resident_bytes.max(usage);
    }

    /// Whether charging `extra` more bytes on top of `usage` would
    /// exceed the budget.
    pub fn over_budget(&self, usage: u64, extra: u64) -> bool {
        usage.saturating_add(extra) > self.budget
    }

    /// Enters (or continues) a deferral episode. Episodes are counted
    /// once per continuous stretch, like the runner's stall events.
    pub fn note_deferral(&mut self) {
        if !self.deferring {
            self.deferring = true;
            self.slices_deferred += 1;
        }
    }

    /// Ends the current deferral episode (the fork was admitted).
    pub fn end_deferral(&mut self) {
        self.deferring = false;
    }

    /// Whether a deferral episode is in progress (the planner keeps
    /// epochs short while it is, so admission is re-checked promptly).
    pub fn is_deferring(&self) -> bool {
        self.deferring
    }

    /// Counts a rung-1 checkpoint reclamation.
    pub fn note_checkpoint_dropped(&mut self) {
        self.checkpoints_dropped += 1;
    }

    /// Counts a rung-2 cache flush.
    pub fn note_cache_evicted(&mut self) {
        self.caches_evicted += 1;
    }

    /// Marks a slice admitted under rung 3: it runs inline on the
    /// supervisor thread (bounded live memory) for its whole life.
    pub fn degrade(&mut self, num: u32) {
        if self.degraded.insert(num) {
            self.degraded_total += 1;
        }
    }

    /// Whether the governor pinned this slice inline.
    pub fn is_degraded(&self, num: u32) -> bool {
        self.degraded.contains(&num)
    }

    /// Slice numbers currently pinned inline by the governor.
    pub fn degraded_set(&self) -> HashSet<u32> {
        self.degraded.clone()
    }

    /// Total slices ever degraded by rung 3 (merge-time release does not
    /// roll this back; it feeds the report's `slices_degraded`).
    pub fn degraded_total(&self) -> u64 {
        self.degraded_total
    }

    /// Forgets a merged slice's degraded pin.
    pub fn release(&mut self, num: u32) {
        self.degraded.remove(&num);
    }
}

/// Incremental resident-byte ledger: the governed usage sum maintained
/// term by term instead of being walked from scratch at every decision
/// point.
///
/// The runner's original `resident_usage` recomputed two O(live-slices)
/// sums — per-slice footprints and retained checkpoints — on every
/// admission check and barrier sample. At single-run scale that walk is
/// noise; at fleet scale (many runners interleaving admission checks
/// every round) it shows up. The ledger keeps those two sums cached:
/// the runner posts a slice's footprint only when it changes (fork,
/// epoch advance, eviction, repair, merge) and the checkpoint total
/// only at guard/drop/release sites, so reading the total is O(1) in
/// the number of slices.
///
/// Determinism is untouched — the ledger holds exactly the numbers the
/// full walk would produce, and debug builds cross-check
/// [`total_with`](ResidentLedger::total_with) against the from-scratch
/// recompute at every decision point (see the runner's
/// `resident_usage`).
#[derive(Clone, Debug, Default)]
pub struct ResidentLedger {
    /// Per-slice footprint (private pages + code cache), keyed by slice
    /// number. A `BTreeMap` so debug dumps are deterministic.
    slices: BTreeMap<u32, u64>,
    /// Running sum of `slices` values.
    slices_total: u64,
    /// Retained supervisor checkpoint bytes.
    checkpoints: u64,
    /// Last shared-index snapshot charge.
    snapshot: u64,
}

impl ResidentLedger {
    /// An empty ledger.
    pub fn new() -> ResidentLedger {
        ResidentLedger::default()
    }

    /// Posts slice `num`'s current footprint (private resident pages
    /// plus code-cache bytes), replacing the previous posting.
    pub fn post_slice(&mut self, num: u32, bytes: u64) {
        let old = self.slices.insert(num, bytes).unwrap_or(0);
        self.slices_total = self.slices_total - old + bytes;
    }

    /// Forgets a merged slice's footprint.
    pub fn retire_slice(&mut self, num: u32) {
        if let Some(old) = self.slices.remove(&num) {
            self.slices_total -= old;
        }
    }

    /// Posts the current retained-checkpoint total.
    pub fn post_checkpoints(&mut self, bytes: u64) {
        self.checkpoints = bytes;
    }

    /// Posts the current shared-index snapshot charge.
    pub fn post_snapshot(&mut self, bytes: u64) {
        self.snapshot = bytes;
    }

    /// The cached slice-footprint sum.
    pub fn slice_bytes(&self) -> u64 {
        self.slices_total
    }

    /// The governed total given the two terms that are O(1) to read
    /// fresh (the master's resident bytes and the shared merge
    /// segment): cached slice footprints + cached checkpoints + cached
    /// snapshot charge + the live terms.
    pub fn total_with(&self, master_bytes: u64, shared_bytes: u64) -> u64 {
        master_bytes + self.slices_total + self.checkpoints + self.snapshot + shared_bytes
    }
}

/// Which rung of the *fleet* ladder resolved a tenant's admission —
/// the service-mode analog of
/// [`AdmissionDecision`](crate::record::AdmissionDecision).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TenantAdmission {
    /// The fleet has room: admit at the job's requested budget.
    Admit,
    /// The candidate's tenant is over its fair share and other jobs can
    /// still free memory by completing: hold the job in the queue.
    Defer,
    /// The candidate's tenant is at or under its share: admit, but with
    /// the job's memory budget clamped to the tenant's remaining share
    /// (the job runs degraded rather than the fleet thrashing).
    AdmitDegraded {
        /// The clamped per-job budget, in simulated bytes.
        budget: u64,
    },
}

/// Per-tenant record inside the [`TenantLedger`].
#[derive(Clone, Debug)]
struct TenantEntry {
    id: u32,
    weight: u64,
    /// Optional hard cap (validated ≤ fleet budget by the CLI).
    cap: Option<u64>,
    usage: u64,
    admitted: u64,
    deferred: u64,
    degraded: u64,
    evicted: u64,
}

/// Per-tenant counters exposed by the [`TenantLedger`] — the fleet's
/// admitted/deferred/degraded/evicted scoreboard, reported unscrubbed
/// by the service determinism suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantCounters {
    /// Tenant id.
    pub id: u32,
    /// Jobs admitted at full budget.
    pub admitted: u64,
    /// Admission deferrals charged to this tenant.
    pub deferred: u64,
    /// Jobs admitted with a clamped (degraded) budget.
    pub degraded: u64,
    /// Code-cache evictions charged to this tenant by the fleet ladder.
    pub evicted: u64,
}

/// The fleet's per-tenant budget ledger: weighted fair shares of one
/// fleet-wide byte budget, plus the tenant-weighted rungs the service
/// scheduler walks before admitting a job under pressure (see
/// DESIGN.md §4.13).
///
/// A tenant's **share** is `fleet_budget × weight / Σweights`
/// (deterministic largest-first remainder split via
/// [`superpin_sched::fair_shares`]), optionally capped by the tenant's
/// own budget. The fleet ladder mirrors the per-run eviction ladder,
/// reordered by fairness: over-share tenants give back memory (cache
/// evictions, deferrals) before an under-share tenant is degraded.
#[derive(Clone, Debug)]
pub struct TenantLedger {
    fleet_budget: u64,
    tenants: Vec<TenantEntry>,
}

impl TenantLedger {
    /// A ledger enforcing `fleet_budget` simulated bytes across all
    /// tenants.
    pub fn new(fleet_budget: u64) -> TenantLedger {
        TenantLedger {
            fleet_budget,
            tenants: Vec::new(),
        }
    }

    /// The fleet-wide budget.
    pub fn fleet_budget(&self) -> u64 {
        self.fleet_budget
    }

    /// Registers a tenant (declaration order is share-split order).
    /// Duplicate ids are rejected upstream by spec validation; here the
    /// second registration is ignored.
    pub fn add_tenant(&mut self, id: u32, weight: u64, cap: Option<u64>) {
        if self.tenants.iter().any(|t| t.id == id) {
            return;
        }
        self.tenants.push(TenantEntry {
            id,
            weight: weight.max(1),
            cap,
            usage: 0,
            admitted: 0,
            deferred: 0,
            degraded: 0,
            evicted: 0,
        });
    }

    /// Posts a tenant's current resident usage (the sum of its jobs'
    /// ledger totals, sampled at a round barrier).
    pub fn post_usage(&mut self, id: u32, bytes: u64) {
        if let Some(tenant) = self.tenants.iter_mut().find(|t| t.id == id) {
            tenant.usage = bytes;
        }
    }

    /// A tenant's fair share of the fleet budget: the weighted split,
    /// capped by the tenant's own budget when one is set.
    pub fn share(&self, id: u32) -> u64 {
        let weights: Vec<u64> = self.tenants.iter().map(|t| t.weight).collect();
        let shares = superpin_sched::fair_shares(self.fleet_budget, &weights);
        self.tenants
            .iter()
            .zip(shares)
            .find(|(t, _)| t.id == id)
            .map(|(t, share)| t.cap.map_or(share, |cap| share.min(cap)))
            .unwrap_or(0)
    }

    /// A tenant's last posted usage (0 for unknown tenants). The WAL
    /// journals this per round so recovery can verify the ledger state
    /// it rebuilt.
    pub fn usage(&self, id: u32) -> u64 {
        self.tenants
            .iter()
            .find(|t| t.id == id)
            .map(|t| t.usage)
            .unwrap_or(0)
    }

    /// Total posted usage across all tenants.
    pub fn fleet_usage(&self) -> u64 {
        self.tenants.iter().map(|t| t.usage).sum()
    }

    /// Whether admitting `extra` more bytes would push the fleet over
    /// its budget.
    pub fn over_budget(&self, extra: u64) -> bool {
        self.fleet_usage().saturating_add(extra) > self.fleet_budget
    }

    /// Whether the tenant's posted usage exceeds its share.
    pub fn over_share(&self, id: u32) -> bool {
        self.tenants
            .iter()
            .find(|t| t.id == id)
            .is_some_and(|t| t.usage > self.share(t.id))
    }

    /// Tenants over their share, most-over first (byte overage
    /// descending, id ascending on ties) — the fleet ladder's eviction
    /// order.
    pub fn over_share_tenants(&self) -> Vec<u32> {
        let mut over: Vec<(u64, u32)> = self
            .tenants
            .iter()
            .filter_map(|t| {
                let share = self.share(t.id);
                (t.usage > share).then(|| (t.usage - share, t.id))
            })
            .collect();
        over.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        over.into_iter().map(|(_, id)| id).collect()
    }

    /// The tenant's unused share (`share − usage`, saturating) — the
    /// clamp applied to a degraded admission's job budget.
    pub fn remaining_share(&self, id: u32) -> u64 {
        let usage = self
            .tenants
            .iter()
            .find(|t| t.id == id)
            .map_or(0, |t| t.usage);
        self.share(id).saturating_sub(usage)
    }

    /// Resolves one admission for `id` charging `extra` bytes, given
    /// whether any running job could still free memory by completing
    /// (`others_can_free`). Pure — counters are untouched, so a
    /// scheduler can re-evaluate a parked job every round without
    /// inflating the scoreboard. Walks only the *decision* rung —
    /// eviction (the fleet's rung 1) is the scheduler's job, since the
    /// ledger does not own the runners.
    pub fn decide(&self, id: u32, extra: u64, others_can_free: bool) -> TenantAdmission {
        if !self.over_budget(extra) {
            return TenantAdmission::Admit;
        }
        if self.over_share(id) && others_can_free {
            return TenantAdmission::Defer;
        }
        let budget = self.remaining_share(id).max(FORK_COST_BYTES);
        TenantAdmission::AdmitDegraded { budget }
    }

    /// [`decide`](TenantLedger::decide) plus counter bookkeeping — the
    /// path for a *fresh* admission attempt (retries of an
    /// already-counted deferral should use `decide` and count the
    /// eventual admission themselves).
    pub fn admit(&mut self, id: u32, extra: u64, others_can_free: bool) -> TenantAdmission {
        let decision = self.decide(id, extra, others_can_free);
        match decision {
            TenantAdmission::Admit => self.count_admitted(id),
            TenantAdmission::Defer => self.count_deferred(id),
            TenantAdmission::AdmitDegraded { .. } => self.count_degraded(id),
        }
        decision
    }

    /// Counts a full-budget admission.
    pub fn count_admitted(&mut self, id: u32) {
        if let Some(t) = self.tenants.iter_mut().find(|t| t.id == id) {
            t.admitted += 1;
        }
    }

    /// Counts one deferral episode against the tenant.
    pub fn count_deferred(&mut self, id: u32) {
        if let Some(t) = self.tenants.iter_mut().find(|t| t.id == id) {
            t.deferred += 1;
        }
    }

    /// Counts a degraded (budget-clamped) admission.
    pub fn count_degraded(&mut self, id: u32) {
        if let Some(t) = self.tenants.iter_mut().find(|t| t.id == id) {
            t.degraded += 1;
        }
    }

    /// Counts a fleet-ladder cache eviction against the tenant.
    pub fn count_evicted(&mut self, id: u32) {
        if let Some(t) = self.tenants.iter_mut().find(|t| t.id == id) {
            t.evicted += 1;
        }
    }

    /// The per-tenant scoreboard, in declaration order.
    pub fn counters(&self) -> Vec<TenantCounters> {
        self.tenants
            .iter()
            .map(|t| TenantCounters {
                id: t.id,
                admitted: t.admitted,
                deferred: t.deferred,
                degraded: t.degraded,
                evicted: t.evicted,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_is_a_high_water_mark() {
        let mut gov = MemoryGovernor::new(1000);
        gov.observe(10);
        gov.observe(500);
        gov.observe(200);
        assert_eq!(gov.peak_resident_bytes, 500);
    }

    #[test]
    fn over_budget_is_inclusive_of_the_charge_and_saturates() {
        let gov = MemoryGovernor::new(1000);
        assert!(!gov.over_budget(900, 100), "exactly at budget fits");
        assert!(gov.over_budget(900, 101));
        assert!(gov.over_budget(u64::MAX, 1), "no overflow wraparound");
        assert!(!MemoryGovernor::new(u64::MAX).over_budget(u64::MAX - 1, 1));
    }

    #[test]
    fn deferral_episodes_count_once_per_stretch() {
        let mut gov = MemoryGovernor::new(0);
        gov.note_deferral();
        gov.note_deferral();
        gov.note_deferral();
        assert_eq!(gov.slices_deferred, 1, "one continuous episode");
        assert!(gov.is_deferring());
        gov.end_deferral();
        assert!(!gov.is_deferring());
        gov.note_deferral();
        assert_eq!(gov.slices_deferred, 2, "new stretch, new episode");
    }

    #[test]
    fn degraded_total_survives_release() {
        let mut gov = MemoryGovernor::new(0);
        gov.degrade(3);
        gov.degrade(3); // idempotent
        assert!(gov.is_degraded(3));
        assert_eq!(gov.degraded_total(), 1);
        gov.release(3);
        assert!(!gov.is_degraded(3));
        assert_eq!(gov.degraded_total(), 1, "history is not rolled back");
        gov.degrade(4);
        assert_eq!(gov.degraded_total(), 2);
    }

    #[test]
    fn resident_ledger_tracks_postings_incrementally() {
        let mut ledger = ResidentLedger::new();
        assert_eq!(ledger.total_with(100, 10), 110);
        ledger.post_slice(1, 4096);
        ledger.post_slice(2, 8192);
        assert_eq!(ledger.slice_bytes(), 12_288);
        // Re-posting replaces, not accumulates.
        ledger.post_slice(1, 2048);
        assert_eq!(ledger.slice_bytes(), 10_240);
        ledger.post_checkpoints(500);
        ledger.post_snapshot(64);
        assert_eq!(ledger.total_with(100, 10), 100 + 10_240 + 500 + 64 + 10);
        ledger.retire_slice(2);
        assert_eq!(ledger.slice_bytes(), 2048);
        ledger.retire_slice(2); // idempotent
        assert_eq!(ledger.slice_bytes(), 2048);
    }

    #[test]
    fn tenant_shares_follow_weights_and_caps() {
        let mut ledger = TenantLedger::new(1000);
        ledger.add_tenant(1, 3, None);
        ledger.add_tenant(2, 1, Some(100));
        assert_eq!(ledger.share(1), 750);
        assert_eq!(ledger.share(2), 100, "cap tightens the weighted share");
        assert_eq!(ledger.share(9), 0, "unknown tenant has no share");
    }

    #[test]
    fn over_share_tenants_rank_by_overage() {
        let mut ledger = TenantLedger::new(1000);
        ledger.add_tenant(1, 1, None);
        ledger.add_tenant(2, 1, None);
        ledger.add_tenant(3, 2, None);
        ledger.post_usage(1, 300); // share 250 → over by 50
        ledger.post_usage(2, 400); // share 250 → over by 150
        ledger.post_usage(3, 100); // share 500 → under
        assert_eq!(ledger.over_share_tenants(), vec![2, 1]);
        assert!(ledger.over_share(2));
        assert!(!ledger.over_share(3));
        assert_eq!(ledger.remaining_share(3), 400);
    }

    #[test]
    fn admit_walks_the_tenant_rungs() {
        let mut ledger = TenantLedger::new(1_000_000);
        ledger.add_tenant(1, 1, None);
        ledger.add_tenant(2, 1, None);
        // Under budget: plain admit.
        assert_eq!(ledger.admit(1, 100, true), TenantAdmission::Admit);
        // Over budget + over share + others can free: defer.
        ledger.post_usage(1, 900_000);
        ledger.post_usage(2, 50_000);
        assert_eq!(ledger.admit(1, 100_000, true), TenantAdmission::Defer);
        // Over budget but under share: degraded admit clamped to the
        // tenant's remaining share.
        assert_eq!(
            ledger.admit(2, 100_000, true),
            TenantAdmission::AdmitDegraded { budget: 450_000 }
        );
        // Nothing else can free memory: deferring would deadlock, so
        // even an over-share tenant lands on the degraded rung (with
        // the clamp floored at the flat fork cost).
        assert_eq!(
            ledger.admit(1, 100_000, false),
            TenantAdmission::AdmitDegraded {
                budget: FORK_COST_BYTES
            }
        );
        let counters = ledger.counters();
        assert_eq!(
            (
                counters[0].admitted,
                counters[0].deferred,
                counters[0].degraded
            ),
            (1, 1, 1)
        );
        assert_eq!((counters[1].admitted, counters[1].degraded), (0, 1));
    }
}

//! Signature recording and detection (paper §4.4).
//!
//! A timeslice that ends on a timeout ends at an arbitrary instruction, so
//! SuperPin needs "a reliable mechanism that would uniquely identify a
//! timeslice boundary". When a new slice is forked, it records a
//! *signature* of the master's state at the boundary: the architectural
//! register file plus the top 100 words of the stack. The *previous*
//! slice then instruments exactly that instruction pointer with a cheap
//! inlined two-register check (`INS_InsertIfCall`); only when the quick
//! check matches does the expensive full comparison run
//! (`INS_InsertThenCall`), verifying the architectural state and then the
//! top-of-stack state.

use superpin_dbi::trace::discover_trace;
use superpin_isa::{Reg, NUM_REGS};
use superpin_vm::process::Process;

/// Number of stack words captured and compared by the full check.
pub const STACK_WORDS: usize = 100;

/// Default quick-check registers used when the recorder "cannot ascertain
/// a clear candidate within a specified block count".
pub const DEFAULT_QUICK_REGS: [Reg; 2] = [Reg::R1, Reg::SP];

/// How many basic blocks ahead the recorder scans while choosing the two
/// registers most likely to change.
pub const QUICK_SCAN_BLOCKS: usize = 4;

/// A recorded slice-boundary signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Signature {
    /// The boundary instruction pointer — detection is only attempted
    /// here.
    pub pc: u64,
    /// Full architectural register state at the boundary.
    pub regs: [u64; NUM_REGS],
    /// The top [`STACK_WORDS`] stack words (`mem[sp + 8·i]`), zero-filled
    /// where unmapped.
    pub stack: Vec<u64>,
    /// The two registers checked by the inlined quick detector.
    pub quick_regs: [Reg; 2],
    /// The recorded values of those two registers.
    pub quick_vals: [u64; 2],
}

impl Signature {
    /// Captures the signature of `process`'s current state, inferring the
    /// quick-check registers by scanning ahead.
    pub fn capture(process: &Process) -> Signature {
        let quick_regs = infer_quick_regs(process);
        Signature::capture_with_quick_regs(process, quick_regs)
    }

    /// Captures a signature with explicitly chosen quick-check registers.
    pub fn capture_with_quick_regs(process: &Process, quick_regs: [Reg; 2]) -> Signature {
        let regs = process.cpu.regs.snapshot();
        let sp = process.cpu.regs.get(Reg::SP);
        let stack = (0..STACK_WORDS as u64)
            .map(|i| process.mem.read_u64(sp + 8 * i).unwrap_or(0))
            .collect();
        Signature {
            pc: process.cpu.pc,
            regs,
            stack,
            quick_regs,
            quick_vals: [regs[quick_regs[0].index()], regs[quick_regs[1].index()]],
        }
    }

    /// Whether the two quick-check values match.
    pub fn quick_match(&self, v0: u64, v1: u64) -> bool {
        self.quick_vals == [v0, v1]
    }

    /// Whether a full register snapshot matches.
    pub fn regs_match(&self, regs: &[u64]) -> bool {
        regs.len() == NUM_REGS && self.regs[..] == *regs
    }

    /// Whether a stack snapshot matches.
    pub fn stack_match(&self, stack: &[u64]) -> bool {
        stack.len() == self.stack.len() && self.stack[..] == *stack
    }
}

/// Chooses "the two registers that are most likely to change" by scanning
/// the code ahead of the boundary for register writes, most-written
/// first. Falls back to [`DEFAULT_QUICK_REGS`] when fewer than two
/// distinct written registers are found within [`QUICK_SCAN_BLOCKS`]
/// blocks.
pub fn infer_quick_regs(process: &Process) -> [Reg; 2] {
    let mut writes = [0u32; NUM_REGS];
    let mut pc = process.cpu.pc;
    for _ in 0..QUICK_SCAN_BLOCKS {
        let Ok(trace) = discover_trace(&process.mem, pc) else {
            break;
        };
        // Registers written inside loop bodies are the ones "highly
        // likely to change over loop iterations" (paper §4.4); weight
        // blocks ending in a backward branch accordingly.
        for bbl in trace.bbls() {
            let is_loop_body = bbl.insts().iter().any(|iref| {
                matches!(iref.inst, superpin_isa::Inst::Branch { target, .. }
                    if target <= iref.addr)
            });
            let weight = if is_loop_body { 8 } else { 1 };
            for iref in bbl.insts() {
                if let Some(rd) = iref.inst.dest_reg() {
                    writes[rd.index()] += weight;
                }
            }
        }
        // Follow the static fall-through / unconditional target.
        let tail = trace.bbls().last().expect("traces are non-empty").tail();
        pc = match tail.inst.static_target() {
            Some(target) if !matches!(tail.inst, superpin_isa::Inst::Branch { .. }) => target,
            _ => trace.fallthrough(),
        };
        if pc == 0 {
            break;
        }
    }

    let mut ranked: Vec<usize> = (0..NUM_REGS).collect();
    ranked.sort_by_key(|&i| std::cmp::Reverse(writes[i]));
    let first_ok = writes[ranked[0]] > 0;
    let second_ok = writes[ranked[1]] > 0;
    match (first_ok, second_ok) {
        (true, true) => [Reg::new(ranked[0] as u8), Reg::new(ranked[1] as u8)],
        (true, false) => {
            let primary = Reg::new(ranked[0] as u8);
            let fallback = if primary == DEFAULT_QUICK_REGS[0] {
                DEFAULT_QUICK_REGS[1]
            } else {
                DEFAULT_QUICK_REGS[0]
            };
            [primary, fallback]
        }
        _ => DEFAULT_QUICK_REGS,
    }
}

/// Detection statistics (used to reproduce the paper's "only about 2% of
/// the time does the quick detector trigger a full architectural state
/// check").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SignatureStats {
    /// Quick (inlined two-register) checks evaluated.
    pub quick_checks: u64,
    /// Quick checks that matched, triggering a full check.
    pub full_checks: u64,
    /// Full checks whose architectural state matched, triggering a stack
    /// comparison.
    pub stack_checks: u64,
    /// Boundary detections (stack check matched).
    pub detections: u64,
}

impl SignatureStats {
    /// Fraction of quick checks that escalated to a full check.
    pub fn full_check_rate(&self) -> f64 {
        if self.quick_checks == 0 {
            0.0
        } else {
            self.full_checks as f64 / self.quick_checks as f64
        }
    }

    /// Accumulates another stats record.
    pub fn absorb(&mut self, other: &SignatureStats) {
        self.quick_checks += other.quick_checks;
        self.full_checks += other.full_checks;
        self.stack_checks += other.stack_checks;
        self.detections += other.detections;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superpin_isa::asm::assemble;

    fn process_for(src: &str) -> Process {
        Process::load(1, &assemble(src).expect("assemble")).expect("load")
    }

    #[test]
    fn capture_records_regs_and_stack() {
        let mut process = process_for("main:\n li r3, 77\n exit 0\n");
        process.run_until_syscall(1).expect("run one inst");
        let sp = process.cpu.regs.get(Reg::SP);
        process.mem.write_u64(sp, 0xabcd).expect("poke stack");
        let sig = Signature::capture(&process);
        assert_eq!(sig.regs[3], 77);
        assert_eq!(sig.stack.len(), STACK_WORDS);
        assert_eq!(sig.stack[0], 0xabcd);
        assert_eq!(sig.pc, process.cpu.pc);
    }

    #[test]
    fn quick_match_uses_recorded_values() {
        let process = process_for("main:\n exit 0\n");
        let sig = Signature::capture_with_quick_regs(&process, [Reg::R1, Reg::R2]);
        assert!(sig.quick_match(0, 0));
        assert!(!sig.quick_match(1, 0));
    }

    #[test]
    fn infer_prefers_frequently_written_registers() {
        // Loop writes r5 (counter) and r6 (accumulator) heavily.
        let process = process_for(
            "main:\nloop:\n addi r5, r5, 1\n add r6, r6, r5\n bne r5, r7, loop\n exit 0\n",
        );
        let quick = infer_quick_regs(&process);
        assert!(quick.contains(&Reg::R5), "quick {quick:?}");
        assert!(quick.contains(&Reg::R6), "quick {quick:?}");
    }

    #[test]
    fn infer_falls_back_to_defaults() {
        // A pure jump loop: no register writes anywhere in scan range.
        let process = process_for("main:\n jmp main\n");
        assert_eq!(infer_quick_regs(&process), DEFAULT_QUICK_REGS);
    }

    #[test]
    fn infer_with_single_written_register() {
        let process = process_for("main:\nloop:\n addi r9, r9, 1\n jmp loop\n");
        let quick = infer_quick_regs(&process);
        assert_eq!(quick[0], Reg::R9);
        assert_eq!(quick[1], DEFAULT_QUICK_REGS[0]);
    }

    #[test]
    fn full_and_stack_match() {
        let process = process_for("main:\n exit 0\n");
        let sig = Signature::capture(&process);
        let regs = process.cpu.regs.snapshot();
        assert!(sig.regs_match(&regs));
        let mut wrong = regs;
        wrong[4] ^= 1;
        assert!(!sig.regs_match(&wrong));
        assert!(sig.stack_match(&sig.stack.clone()));
        assert!(!sig.stack_match(&sig.stack[1..]));
    }

    #[test]
    fn stats_rate() {
        let stats = SignatureStats {
            quick_checks: 100,
            full_checks: 2,
            ..SignatureStats::default()
        };
        assert!((stats.full_check_rate() - 0.02).abs() < 1e-12);
        let mut total = SignatureStats::default();
        total.absorb(&stats);
        total.absorb(&stats);
        assert_eq!(total.quick_checks, 200);
        assert_eq!(SignatureStats::default().full_check_rate(), 0.0);
    }
}

//! The SuperPin tool API (paper §5).
//!
//! The paper extends Pin's C API with `SP_Init`, `SP_AddSliceBeginFunction`,
//! `SP_AddSliceEndFunction`, `SP_EndSlice`, and `SP_CreateSharedArea`. In
//! Rust the registration calls become trait methods on [`SuperTool`]:
//!
//! | Paper API                      | This crate                          |
//! |--------------------------------|-------------------------------------|
//! | `SP_Init(fun)`                 | [`SuperTool::reset`]                |
//! | `SP_AddSliceBeginFunction`     | [`SuperTool::on_slice_begin`]       |
//! | `SP_AddSliceEndFunction`       | [`SuperTool::on_slice_end`] (merge) |
//! | `SP_EndSlice()`                | `EngineCtl::request_stop` from an analysis routine |
//! | `SP_CreateSharedArea`          | [`SharedMem::create_area`]          |
//! | `PIN_AddFiniFunction`          | [`SuperTool::fini_shared`]          |

use crate::shared::SharedMem;
use superpin_dbi::Pintool;

/// A Pintool that supports SuperPin slicing.
///
/// Each slice receives a fresh clone of the registered tool, reset via
/// [`reset`](SuperTool::reset) (the function passed to `SP_Init`). When a
/// slice completes, [`on_slice_end`](SuperTool::on_slice_end) merges its
/// local data into [`SharedMem`]; merges are invoked **in slice order**
/// "to aid in determinism" (paper §4.5). After the last merge,
/// [`fini_shared`](SuperTool::fini_shared) renders the final result.
///
/// When SuperPin is disabled (`-sp 0`), the tool runs as a plain
/// [`Pintool`] and the slice hooks never fire.
///
/// `Send` is required because the parallel runner moves each slice —
/// engine, tool clone and all — into a scoped worker thread. Tools share
/// state through [`SharedMem`] (internally synchronized), not through
/// their clones, so the bound costs nothing in practice.
pub trait SuperTool: Pintool + Clone + Send + 'static {
    /// Clears slice-local statistics (the `SP_Init` reset function).
    fn reset(&mut self, slice_num: u32);

    /// Called immediately after a slice is created
    /// (`SP_AddSliceBeginFunction`).
    fn on_slice_begin(&mut self, slice_num: u32) {
        let _ = slice_num;
    }

    /// Called right before a slice terminates
    /// (`SP_AddSliceEndFunction`); merge local data into `shared` here.
    fn on_slice_end(&mut self, slice_num: u32, shared: &SharedMem);

    /// Called once, after every slice has merged; render the final
    /// result from shared memory.
    fn fini_shared(&mut self, shared: &SharedMem) {
        let _ = shared;
    }
}

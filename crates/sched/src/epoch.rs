//! Epoch planning: batching quanta between scheduling events.
//!
//! The SuperPin runner advances every runnable task once per quantum.
//! Paying a thread-pool synchronization per quantum would dwarf the work
//! inside it, so the runner batches quanta into **epochs**: a span of
//! quanta over which the runnable set — and therefore every per-quantum
//! budget — is fixed. Workers receive a whole epoch of budget at once
//! and synchronize only at epoch boundaries, where forks, merges, and
//! share recomputation happen.
//!
//! The planner's job is to predict the next *scheduling event* so the
//! epoch ends on (or just before) it:
//!
//! * **fork deadline** — the timer fork fires at a known virtual time;
//!   the caller converts it to "quanta from now".
//! * **predicted slice completion** — a slice finishing changes the
//!   runnable set. Completion is estimated from the slice's known work
//!   span and its observed ticks-per-instruction (see
//!   [`predict_completion_quanta`]). A prediction that lands short costs
//!   one extra barrier and re-plan (after which the shrinking remainder
//!   converges); one that lands long leaves the finished slice idle
//!   until the barrier — bounded by the prediction error, which decays
//!   as observed ticks-per-instruction accumulates.
//! * **forced syscalls** cannot be predicted; the runner discovers them
//!   while advancing the master serially and truncates the epoch, so
//!   the planner never needs to see them.
//!
//! Everything here is pure integer arithmetic over virtual-time state,
//! so a plan is a deterministic function of the simulation state —
//! independent of host thread count or timing. That is what keeps
//! `threads=N` runs bit-identical to `threads=1`.

/// Progress snapshot of one running slice, in the planner's units
/// (abstract ticks; the runner uses cycles).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SliceEta {
    /// Ticks the slice has consumed so far (all accounts: app, analysis,
    /// JIT, dispatch, syscall).
    pub ticks_spent: u64,
    /// Instructions the slice has executed so far.
    pub insts_done: u64,
    /// Total instructions the slice will execute — known exactly in
    /// SuperPin because the master already ran the span natively. 0 when
    /// unknown (the slice is then ignored for planning).
    pub insts_total: u64,
}

/// Fallback ticks-per-instruction for a slice that has not executed
/// anything yet (the paper's ~12× icount slowdown ballpark).
pub const DEFAULT_TICKS_PER_INST: u64 = 12;

/// Predicts how many quanta until a slice completes, given its
/// per-quantum tick budget: `⌈remaining_insts × observed_tpi / budget⌉`.
///
/// Observed ticks-per-instruction is rounded up (and is itself inflated
/// by cold-cache JIT early in a slice's life), so the estimate leans
/// slightly long; the finished slice then idles until the barrier,
/// costing only the prediction error in merge latency. Leaning short
/// instead would split every completion into a geometric series of tiny
/// epochs, and epochs are exactly what amortizes worker synchronization
/// — an order-of-magnitude wall-clock regression for a marginal
/// merge-latency win.
///
/// Always returns at least 1.
pub fn predict_completion_quanta(eta: SliceEta, budget_per_quantum: u64) -> u64 {
    let remaining = eta.insts_total.saturating_sub(eta.insts_done).max(1);
    let tpi = if eta.insts_done == 0 {
        DEFAULT_TICKS_PER_INST
    } else {
        eta.ticks_spent.div_ceil(eta.insts_done).max(1)
    };
    let remaining_ticks = remaining.saturating_mul(tpi);
    remaining_ticks.div_ceil(budget_per_quantum.max(1)).max(1)
}

/// Watchdog deadline for runaway detection: a slice whose signature has
/// not fired within `factor ×` its predicted completion (re-estimated
/// from its *current* progress, so early cold-cache overestimates decay)
/// is declared runaway by the supervisor. Returns quanta-from-now;
/// always at least `factor` so a freshly woken slice is never condemned
/// on its first barrier.
pub fn watchdog_deadline_quanta(eta: SliceEta, budget_per_quantum: u64, factor: u64) -> u64 {
    let factor = factor.max(1);
    predict_completion_quanta(eta, budget_per_quantum)
        .saturating_mul(factor)
        .max(factor)
}

/// Plans epoch lengths (in quanta) between scheduling events.
#[derive(Clone, Copy, Debug)]
pub struct EpochPlanner {
    /// Hard cap on epoch length, in quanta. 1 degenerates to the classic
    /// per-quantum loop (every quantum is a barrier).
    pub max_quanta: u64,
}

impl EpochPlanner {
    /// A planner with the given epoch cap (clamped to ≥ 1).
    pub fn new(max_quanta: u64) -> EpochPlanner {
        EpochPlanner {
            max_quanta: max_quanta.max(1),
        }
    }

    /// Plans the next epoch's length.
    ///
    /// * `deadline_quanta` — quanta until the next known timer-fork
    ///   deadline (`None` when the master cannot fork: exited, stalled,
    ///   or parked at a forced syscall).
    /// * `slices` — `(progress, per-quantum budget)` for each *running*
    ///   slice; the epoch ends at the earliest predicted completion.
    ///
    /// Returns a value in `[1, max_quanta]`.
    pub fn plan(
        &self,
        deadline_quanta: Option<u64>,
        slices: impl IntoIterator<Item = (SliceEta, u64)>,
    ) -> u64 {
        let mut quanta = self.max_quanta;
        if let Some(deadline) = deadline_quanta {
            quanta = quanta.min(deadline.max(1));
        }
        for (eta, budget) in slices {
            if eta.insts_total > 0 {
                quanta = quanta.min(predict_completion_quanta(eta, budget));
            }
        }
        quanta.max(1)
    }

    /// Epoch bound while a fork is *deferred* under memory pressure: the
    /// planner keeps epochs short so admission is re-evaluated promptly
    /// once running slices merge and free their footprint, instead of
    /// parking the master for a full `max_quanta` epoch. Deterministic:
    /// depends only on the planner's configuration.
    ///
    /// Returns a value in `[1, max_quanta]` (at most
    /// [`DEFERRAL_REVIEW_QUANTA`]).
    pub fn deferral_review_quanta(&self) -> u64 {
        self.max_quanta.clamp(1, DEFERRAL_REVIEW_QUANTA)
    }
}

/// Upper bound on epoch length while slice admission is deferred under
/// memory pressure (see [`EpochPlanner::deferral_review_quanta`]).
pub const DEFERRAL_REVIEW_QUANTA: u64 = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_applies_when_nothing_is_known() {
        let planner = EpochPlanner::new(256);
        assert_eq!(planner.plan(None, []), 256);
        // Cap clamps to at least one quantum.
        assert_eq!(EpochPlanner::new(0).plan(None, []), 1);
    }

    #[test]
    fn deferral_review_is_short_and_bounded_by_the_cap() {
        assert_eq!(
            EpochPlanner::new(256).deferral_review_quanta(),
            DEFERRAL_REVIEW_QUANTA
        );
        assert_eq!(EpochPlanner::new(3).deferral_review_quanta(), 3);
        assert_eq!(EpochPlanner::new(0).deferral_review_quanta(), 1);
    }

    #[test]
    fn fork_deadline_bounds_the_epoch() {
        let planner = EpochPlanner::new(256);
        assert_eq!(planner.plan(Some(40), []), 40);
        // A deadline that already passed still yields one quantum of
        // progress (the control step re-evaluates at the barrier).
        assert_eq!(planner.plan(Some(0), []), 1);
    }

    #[test]
    fn earliest_predicted_completion_wins() {
        let planner = EpochPlanner::new(256);
        let near = SliceEta {
            ticks_spent: 10_000,
            insts_done: 1_000, // tpi 10
            insts_total: 1_100,
        };
        let far = SliceEta {
            ticks_spent: 10_000,
            insts_done: 1_000,
            insts_total: 100_000,
        };
        // near: ⌈100 remaining × 10 tpi / 500⌉ = 2 quanta.
        let plan = planner.plan(Some(200), [(near, 500), (far, 500)]);
        assert_eq!(plan, 2);
        // Without the near slice the deadline dominates the far slice's
        // prediction of ⌈99_000 × 10 / 500⌉ = 1980.
        assert_eq!(planner.plan(Some(200), [(far, 500)]), 200);
    }

    #[test]
    fn prediction_is_the_full_remaining_estimate() {
        // Exactly divisible inputs: the prediction covers the entire
        // remaining work at the observed rate — no short bias that would
        // fragment the completion into a run of tiny epochs.
        let eta = SliceEta {
            ticks_spent: 12_000,
            insts_done: 1_000, // tpi 12
            insts_total: 11_000,
        };
        assert_eq!(predict_completion_quanta(eta, 600), 10_000 * 12 / 600);
        // Non-divisible remainders round up (lean long, not short).
        assert_eq!(predict_completion_quanta(eta, 7_000), 18);
    }

    #[test]
    fn fresh_slice_uses_default_tpi() {
        let eta = SliceEta {
            ticks_spent: 0,
            insts_done: 0,
            insts_total: 2_000,
        };
        assert_eq!(
            predict_completion_quanta(eta, 100),
            2_000 * DEFAULT_TICKS_PER_INST / 100
        );
    }

    #[test]
    fn prediction_never_returns_zero() {
        let done = SliceEta {
            ticks_spent: 500,
            insts_done: 100,
            insts_total: 100,
        };
        assert_eq!(predict_completion_quanta(done, 1_000_000), 1);
        // Degenerate inputs (zero budget, zero span) must not divide by
        // zero and still plan forward progress.
        assert!(predict_completion_quanta(SliceEta::default(), 0) >= 1);
    }

    #[test]
    fn watchdog_deadline_scales_prediction() {
        let eta = SliceEta {
            ticks_spent: 12_000,
            insts_done: 1_000, // tpi 12
            insts_total: 11_000,
        };
        let predicted = predict_completion_quanta(eta, 600);
        assert_eq!(watchdog_deadline_quanta(eta, 600, 8), predicted * 8);
        // A slice at its span still gets `factor` quanta of grace.
        let done = SliceEta {
            ticks_spent: 500,
            insts_done: 100,
            insts_total: 100,
        };
        assert_eq!(watchdog_deadline_quanta(done, 1_000_000, 8), 8);
        // Degenerate factor clamps to 1.
        assert_eq!(watchdog_deadline_quanta(done, 1_000_000, 0), 1);
    }

    #[test]
    fn unknown_span_slices_are_ignored() {
        let planner = EpochPlanner::new(64);
        let unknown = SliceEta {
            ticks_spent: 5,
            insts_done: 1,
            insts_total: 0,
        };
        assert_eq!(planner.plan(None, [(unknown, 100)]), 64);
    }
}

//! CPU topology and contention model.

/// A multiprocessor machine model.
///
/// Throughput is measured in *core-equivalents*: one uncontended physical
/// core delivers 1.0. Two effects reduce effective throughput, both from
/// the paper's overhead taxonomy (§6.3):
///
/// * **Hyperthreading** — a physical core running two logical threads
///   delivers `smt_core_throughput` (> 1, < 2) core-equivalents total, so
///   each sibling runs slower than alone ("If the master application is
///   forced to share its CPU with another slice ... this will impact
///   performance").
/// * **SMP scalability** — when `k` physical cores are busy, each runs at
///   `1 / (1 + smp_alpha · (k − 1))` ("It will run slower than running a
///   single instance with no other load on the system").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Machine {
    /// Number of physical cores (the paper's machine: 8).
    pub physical_cores: usize,
    /// Whether hyperthreading is enabled (doubles logical CPUs).
    pub smt_enabled: bool,
    /// Core-equivalents delivered by one physical core running two
    /// hyperthreads (default 1.25 ⇒ each sibling at 0.625).
    pub smt_core_throughput: f64,
    /// Per-core slowdown coefficient as more physical cores go busy.
    pub smp_alpha: f64,
}

impl Machine {
    /// The paper's testbed: 8-way SMP, hyperthreading available.
    pub fn paper_testbed() -> Machine {
        Machine {
            physical_cores: 8,
            smt_enabled: true,
            smt_core_throughput: 1.25,
            smp_alpha: 0.02,
        }
    }

    /// A machine with `physical_cores` cores and no hyperthreading.
    pub fn smp(physical_cores: usize) -> Machine {
        Machine {
            physical_cores,
            smt_enabled: false,
            ..Machine::paper_testbed()
        }
    }

    /// Number of schedulable logical CPUs.
    pub fn logical_cpus(&self) -> usize {
        if self.smt_enabled {
            self.physical_cores * 2
        } else {
            self.physical_cores
        }
    }

    fn smp_factor(&self, busy_cores: usize) -> f64 {
        if busy_cores <= 1 {
            1.0
        } else {
            1.0 / (1.0 + self.smp_alpha * (busy_cores as f64 - 1.0))
        }
    }

    /// Total machine throughput (core-equivalents) when `runnable` tasks
    /// are scheduled.
    ///
    /// Tasks fill distinct physical cores first, then hyperthread
    /// siblings; beyond the logical-CPU count the extra tasks time-slice
    /// without adding throughput.
    pub fn total_throughput(&self, runnable: usize) -> f64 {
        if runnable == 0 {
            return 0.0;
        }
        let p = self.physical_cores;
        let scheduled = runnable.min(self.logical_cpus());
        if scheduled <= p {
            scheduled as f64 * self.smp_factor(scheduled)
        } else {
            let sharing = scheduled - p; // cores running two threads
            let solo = p - sharing;
            (solo as f64 + sharing as f64 * self.smt_core_throughput) * self.smp_factor(p)
        }
    }

    /// Fair-share throughput each of `runnable` tasks receives
    /// (core-equivalents; 1.0 = full-speed uncontended core).
    pub fn per_task_throughput(&self, runnable: usize) -> f64 {
        if runnable == 0 {
            0.0
        } else {
            self.total_throughput(runnable) / runnable as f64
        }
    }
}

impl Default for Machine {
    fn default() -> Machine {
        Machine::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_task_runs_at_full_speed() {
        let m = Machine::paper_testbed();
        assert_eq!(m.per_task_throughput(1), 1.0);
        assert_eq!(m.total_throughput(0), 0.0);
    }

    #[test]
    fn logical_cpu_count() {
        assert_eq!(Machine::paper_testbed().logical_cpus(), 16);
        assert_eq!(Machine::smp(8).logical_cpus(), 8);
    }

    #[test]
    fn smp_tax_grows_with_busy_cores() {
        let m = Machine::smp(8);
        let t1 = m.per_task_throughput(1);
        let t4 = m.per_task_throughput(4);
        let t8 = m.per_task_throughput(8);
        assert!(t1 > t4 && t4 > t8);
        // 8 busy cores with alpha=0.02: each at 1/1.14 ≈ 0.877.
        assert!((t8 - 1.0 / 1.14).abs() < 1e-9);
    }

    #[test]
    fn hyperthread_siblings_share_a_core() {
        let m = Machine::paper_testbed();
        // 16 tasks on 8 cores: every core runs two threads.
        let total16 = m.total_throughput(16);
        assert!((total16 - 8.0 * 1.25 / 1.14).abs() < 1e-9);
        let per = m.per_task_throughput(16);
        assert!(per < 0.62, "HT sibling should run well below a full core");
    }

    #[test]
    fn throughput_monotonic_but_saturating() {
        let m = Machine::paper_testbed();
        let mut prev = 0.0;
        for n in 1..=16 {
            let t = m.total_throughput(n);
            assert!(t > prev, "total throughput must grow up to logical count");
            prev = t;
        }
        // Oversubscription adds no throughput.
        assert_eq!(m.total_throughput(17), m.total_throughput(16));
        assert!(m.per_task_throughput(17) < m.per_task_throughput(16));
    }

    #[test]
    fn no_smt_machine_saturates_at_physical() {
        let m = Machine::smp(8);
        assert_eq!(m.total_throughput(9), m.total_throughput(8));
    }

    #[test]
    fn mixed_solo_and_shared_cores() {
        let m = Machine::paper_testbed();
        // 10 tasks on 8 cores: 6 solo + 2 shared cores.
        let expected = (6.0 + 2.0 * 1.25) / 1.14;
        assert!((m.total_throughput(10) - expected).abs() < 1e-9);
    }
}

//! Labelled time-segment recording.

use std::collections::BTreeMap;

/// Records labelled, non-overlapping time segments for one actor (the
/// master, a slice, …). Adjacent segments with the same label coalesce.
///
/// The SuperPin runner uses a `Timeline` per actor to produce Figure 6's
/// breakdown of master run time into *running*, *sleep* (stalled on the
/// max-slice limit), and the post-exit *pipeline delay*.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Timeline {
    segments: Vec<(u64, u64, &'static str)>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// Appends a segment `[start, end)` with `label`.
    ///
    /// Zero-length segments are ignored. Segments must be appended in
    /// non-decreasing time order.
    ///
    /// # Panics
    ///
    /// Panics if `end < start` or if `start` precedes the previous
    /// segment's end (overlap).
    pub fn push(&mut self, start: u64, end: u64, label: &'static str) {
        assert!(end >= start, "segment ends before it starts");
        if end == start {
            return;
        }
        if let Some(last) = self.segments.last_mut() {
            assert!(start >= last.1, "segments must not overlap");
            if last.2 == label && last.1 == start {
                last.1 = end;
                return;
            }
        }
        self.segments.push((start, end, label));
    }

    /// Total ticks recorded under `label`.
    pub fn total(&self, label: &str) -> u64 {
        self.segments
            .iter()
            .filter(|(_, _, l)| *l == label)
            .map(|(s, e, _)| e - s)
            .sum()
    }

    /// Totals for every label.
    pub fn totals(&self) -> BTreeMap<&'static str, u64> {
        let mut map = BTreeMap::new();
        for &(start, end, label) in &self.segments {
            *map.entry(label).or_insert(0) += end - start;
        }
        map
    }

    /// End time of the last segment (0 if empty).
    pub fn end(&self) -> u64 {
        self.segments.last().map(|&(_, end, _)| end).unwrap_or(0)
    }

    /// The raw segments.
    pub fn segments(&self) -> &[(u64, u64, &'static str)] {
        &self.segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_adjacent_same_label() {
        let mut t = Timeline::new();
        t.push(0, 10, "run");
        t.push(10, 20, "run");
        t.push(20, 30, "sleep");
        assert_eq!(t.segments().len(), 2);
        assert_eq!(t.total("run"), 20);
        assert_eq!(t.total("sleep"), 10);
        assert_eq!(t.end(), 30);
    }

    #[test]
    fn gap_prevents_coalescing() {
        let mut t = Timeline::new();
        t.push(0, 10, "run");
        t.push(15, 20, "run");
        assert_eq!(t.segments().len(), 2);
        assert_eq!(t.total("run"), 15);
    }

    #[test]
    fn zero_length_segments_ignored() {
        let mut t = Timeline::new();
        t.push(5, 5, "run");
        assert!(t.segments().is_empty());
        assert_eq!(t.end(), 0);
    }

    #[test]
    fn totals_map() {
        let mut t = Timeline::new();
        t.push(0, 4, "a");
        t.push(4, 6, "b");
        t.push(6, 10, "a");
        let totals = t.totals();
        assert_eq!(totals["a"], 8);
        assert_eq!(totals["b"], 2);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlap_panics() {
        let mut t = Timeline::new();
        t.push(0, 10, "run");
        t.push(5, 12, "run");
    }

    #[test]
    #[should_panic(expected = "ends before")]
    fn inverted_segment_panics() {
        let mut t = Timeline::new();
        t.push(10, 5, "run");
    }
}

//! Per-quantum fair-share scheduling.

use crate::machine::Machine;

/// One task's share of the machine for a quantum.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Share {
    /// Caller-assigned task identifier.
    pub task: u64,
    /// Throughput in core-equivalents for the quantum: the task advances
    /// `quantum_ticks × throughput` ticks of work.
    pub throughput: f64,
}

impl Share {
    /// The task's tick budget for one quantum of `quantum_ticks`.
    ///
    /// This is **the** budget computation for the whole system: the
    /// serial and parallel runners and the epoch planner all call it, so
    /// the `f64 → u64` truncation happens in exactly one place. Every
    /// task always makes at least one tick of progress per quantum.
    pub fn budget(&self, quantum_ticks: u64) -> u64 {
        ((quantum_ticks as f64) * self.throughput).max(1.0) as u64
    }
}

/// Scheduling policy for a quantum.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Policy {
    /// All runnable tasks share machine throughput equally — what a stock
    /// OS scheduler converges to with long-running CPU-bound tasks, and
    /// the model used for the paper's figures (the master visibly slows
    /// when the machine is oversubscribed, Fig. 7 at 16 slices).
    #[default]
    FairShare,
    /// The first task (the master) is pinned to a dedicated core and only
    /// the remaining throughput is shared — an idealized-OS ablation.
    MasterFirst,
}

/// Computes per-quantum shares of a [`Machine`] among runnable tasks.
#[derive(Clone, Copy, Debug, Default)]
pub struct QuantumScheduler {
    machine: Machine,
    policy: Policy,
}

impl QuantumScheduler {
    /// Creates a scheduler over `machine` with the given policy.
    pub fn new(machine: Machine, policy: Policy) -> QuantumScheduler {
        QuantumScheduler { machine, policy }
    }

    /// The machine being scheduled.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The active policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Per-quantum throughput split for `n` runnable tasks: the first
    /// task's throughput and every other task's throughput.
    ///
    /// This is the single share-computation path behind both policies
    /// (under [`Policy::FairShare`] the two components are equal); the
    /// epoch planner and [`shares`](QuantumScheduler::shares) both use
    /// it, so policy arithmetic lives in exactly one place.
    pub fn throughput_split(&self, n: usize) -> (f64, f64) {
        if n == 0 {
            return (0.0, 0.0);
        }
        match self.policy {
            Policy::FairShare => {
                let per = self.machine.per_task_throughput(n);
                (per, per)
            }
            Policy::MasterFirst => {
                let total = self.machine.total_throughput(n);
                let master = self
                    .machine
                    .per_task_throughput(n.min(self.machine.physical_cores))
                    .min(1.0)
                    .min(total);
                let rest = if n > 1 {
                    (total - master).max(0.0) / (n - 1) as f64
                } else {
                    0.0
                };
                (master, rest)
            }
        }
    }

    /// Assigns shares for one quantum to the given runnable tasks.
    ///
    /// Returns one [`Share`] per task (all tasks make progress every
    /// quantum; oversubscription shows up as lower throughput, i.e.
    /// intra-quantum time multiplexing).
    pub fn shares(&self, runnable: &[u64]) -> Vec<Share> {
        let n = runnable.len();
        if n == 0 {
            return Vec::new();
        }
        let (first, rest) = self.throughput_split(n);
        runnable
            .iter()
            .enumerate()
            .map(|(i, &task)| Share {
                task,
                throughput: if i == 0 { first } else { rest },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_runnable_set() {
        let sched = QuantumScheduler::new(Machine::paper_testbed(), Policy::FairShare);
        assert!(sched.shares(&[]).is_empty());
    }

    #[test]
    fn fair_share_is_uniform() {
        let sched = QuantumScheduler::new(Machine::smp(4), Policy::FairShare);
        let shares = sched.shares(&[1, 2, 3]);
        assert_eq!(shares.len(), 3);
        // Epsilon compare: uniformity is a numeric property, not a
        // bit-pattern one — the shares travel through `total / n * …`
        // style arithmetic that may round differently per lane.
        assert!(shares
            .windows(2)
            .all(|w| (w[0].throughput - w[1].throughput).abs() < 1e-12));
        assert!(shares[0].throughput < 1.0, "SMP tax applies");
    }

    #[test]
    fn fair_share_split_components_are_equal() {
        let sched = QuantumScheduler::new(Machine::smp(8), Policy::FairShare);
        for n in 1..=16 {
            let (first, rest) = sched.throughput_split(n);
            assert!((first - rest).abs() < 1e-12, "n={n}");
        }
    }

    /// Pins the `(quantum × throughput).max(1.0) as u64` truncation for
    /// the exact runnable-set sizes the parallel runner fans out over.
    /// If the budget arithmetic drifts (different rounding, a reordered
    /// multiply), the parallel path silently diverges from the serial
    /// cycle accounting — these constants are the contract.
    #[test]
    fn budget_truncation_is_exact_for_paper_machine() {
        let machine = Machine::smp(8); // Figures 3-6 machine: no SMT.
        let sched = QuantumScheduler::new(machine, Policy::FairShare);
        let quantum = 2_200_000u64; // 1 ms of 2.2 GHz cycles.
                                    // (runnable tasks, expected per-task budget). Hand-computed:
                                    //   n=1 : throughput 1.0                  → 2_200_000
                                    //   n=2 : (2/1.02)/2   = 0.98039215…      → 2_156_862
                                    //   n=4 : (4/1.06)/4   = 0.94339622…      → 2_075_471
                                    //   n=16: (8/1.14)/16  = 0.43859649…      →   964_912
        for (n, expected) in [
            (1usize, 2_200_000u64),
            (2, 2_156_862),
            (4, 2_075_471),
            (16, 964_912),
        ] {
            let tasks: Vec<u64> = (0..n as u64).collect();
            let shares = sched.shares(&tasks);
            for share in &shares {
                assert_eq!(
                    share.budget(quantum),
                    expected,
                    "n={n}: budget must truncate to the pinned value"
                );
            }
        }
        // The floor: a share too small for one tick still gets one.
        let starved = Share {
            task: 1,
            throughput: 1e-12,
        };
        assert_eq!(starved.budget(100), 1);
    }

    #[test]
    fn master_first_uses_the_shared_split_path() {
        let sched = QuantumScheduler::new(Machine::smp(4), Policy::MasterFirst);
        let (first, rest) = sched.throughput_split(6);
        let shares = sched.shares(&[0, 1, 2, 3, 4, 5]);
        assert!((shares[0].throughput - first).abs() < 1e-12);
        assert!(shares[1..]
            .iter()
            .all(|s| (s.throughput - rest).abs() < 1e-12));
    }

    #[test]
    fn fair_share_degrades_when_oversubscribed() {
        let machine = Machine::smp(2);
        let sched = QuantumScheduler::new(machine, Policy::FairShare);
        let two = sched.shares(&[1, 2])[0].throughput;
        let four = sched.shares(&[1, 2, 3, 4])[0].throughput;
        assert!(four < two / 1.5, "4 tasks on 2 cores must time-slice");
    }

    #[test]
    fn master_first_pins_task_zero() {
        let sched = QuantumScheduler::new(Machine::smp(4), Policy::MasterFirst);
        let shares = sched.shares(&[0, 1, 2, 3, 4, 5]);
        let master = shares[0].throughput;
        let slice = shares[1].throughput;
        assert!(master > slice);
        // Total never exceeds machine capability.
        let total: f64 = shares.iter().map(|s| s.throughput).sum();
        assert!(total <= sched.machine().total_throughput(6) + 1e-9);
    }

    #[test]
    fn shares_preserve_task_ids() {
        let sched = QuantumScheduler::new(Machine::smp(2), Policy::FairShare);
        let shares = sched.shares(&[42, 7]);
        assert_eq!(shares[0].task, 42);
        assert_eq!(shares[1].task, 7);
    }
}

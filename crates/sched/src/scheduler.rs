//! Per-quantum fair-share scheduling.

use crate::machine::Machine;

/// One task's share of the machine for a quantum.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Share {
    /// Caller-assigned task identifier.
    pub task: u64,
    /// Throughput in core-equivalents for the quantum: the task advances
    /// `quantum_ticks × throughput` ticks of work.
    pub throughput: f64,
}

/// Scheduling policy for a quantum.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Policy {
    /// All runnable tasks share machine throughput equally — what a stock
    /// OS scheduler converges to with long-running CPU-bound tasks, and
    /// the model used for the paper's figures (the master visibly slows
    /// when the machine is oversubscribed, Fig. 7 at 16 slices).
    #[default]
    FairShare,
    /// The first task (the master) is pinned to a dedicated core and only
    /// the remaining throughput is shared — an idealized-OS ablation.
    MasterFirst,
}

/// Computes per-quantum shares of a [`Machine`] among runnable tasks.
#[derive(Clone, Copy, Debug, Default)]
pub struct QuantumScheduler {
    machine: Machine,
    policy: Policy,
}

impl QuantumScheduler {
    /// Creates a scheduler over `machine` with the given policy.
    pub fn new(machine: Machine, policy: Policy) -> QuantumScheduler {
        QuantumScheduler { machine, policy }
    }

    /// The machine being scheduled.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The active policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Assigns shares for one quantum to the given runnable tasks.
    ///
    /// Returns one [`Share`] per task (all tasks make progress every
    /// quantum; oversubscription shows up as lower throughput, i.e.
    /// intra-quantum time multiplexing).
    pub fn shares(&self, runnable: &[u64]) -> Vec<Share> {
        let n = runnable.len();
        if n == 0 {
            return Vec::new();
        }
        match self.policy {
            Policy::FairShare => {
                let per = self.machine.per_task_throughput(n);
                runnable
                    .iter()
                    .map(|&task| Share {
                        task,
                        throughput: per,
                    })
                    .collect()
            }
            Policy::MasterFirst => {
                let total = self.machine.total_throughput(n);
                let master = self
                    .machine
                    .per_task_throughput(n.min(self.machine.physical_cores))
                    .min(1.0)
                    .min(total);
                let rest = if n > 1 {
                    (total - master).max(0.0) / (n - 1) as f64
                } else {
                    0.0
                };
                runnable
                    .iter()
                    .enumerate()
                    .map(|(i, &task)| Share {
                        task,
                        throughput: if i == 0 { master } else { rest },
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_runnable_set() {
        let sched = QuantumScheduler::new(Machine::paper_testbed(), Policy::FairShare);
        assert!(sched.shares(&[]).is_empty());
    }

    #[test]
    fn fair_share_is_uniform() {
        let sched = QuantumScheduler::new(Machine::smp(4), Policy::FairShare);
        let shares = sched.shares(&[1, 2, 3]);
        assert_eq!(shares.len(), 3);
        assert!(shares
            .windows(2)
            .all(|w| w[0].throughput == w[1].throughput));
        assert!(shares[0].throughput < 1.0, "SMP tax applies");
    }

    #[test]
    fn fair_share_degrades_when_oversubscribed() {
        let machine = Machine::smp(2);
        let sched = QuantumScheduler::new(machine, Policy::FairShare);
        let two = sched.shares(&[1, 2])[0].throughput;
        let four = sched.shares(&[1, 2, 3, 4])[0].throughput;
        assert!(four < two / 1.5, "4 tasks on 2 cores must time-slice");
    }

    #[test]
    fn master_first_pins_task_zero() {
        let sched = QuantumScheduler::new(Machine::smp(4), Policy::MasterFirst);
        let shares = sched.shares(&[0, 1, 2, 3, 4, 5]);
        let master = shares[0].throughput;
        let slice = shares[1].throughput;
        assert!(master > slice);
        // Total never exceeds machine capability.
        let total: f64 = shares.iter().map(|s| s.throughput).sum();
        assert!(total <= sched.machine().total_throughput(6) + 1e-9);
    }

    #[test]
    fn shares_preserve_task_ids() {
        let sched = QuantumScheduler::new(Machine::smp(2), Policy::FairShare);
        let shares = sched.shares(&[42, 7]);
        assert_eq!(shares[0].task, 42);
        assert_eq!(shares[1].task, 7);
    }
}

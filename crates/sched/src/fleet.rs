//! Fleet-level scheduling: a weighted-fair virtual-time queue over
//! whole instrumentation *jobs*, layered above the per-run
//! [`EpochPlanner`](crate::EpochPlanner).
//!
//! The service front end (`superpin-serve`) runs many guest programs
//! over one shared worker pool. Each **round** it asks this queue which
//! jobs deserve the next epoch of machine time. The queue implements
//! classic weighted fair queueing in the virtual-time formulation:
//! every member carries a virtual timestamp that advances by
//! `cycles / weight` whenever the member consumes `cycles` of machine
//! time, and selection always picks the members with the smallest
//! timestamps. Heavier weights therefore advance more slowly per
//! consumed cycle and get selected proportionally more often, while a
//! starved light-weight member's timestamp eventually becomes the
//! minimum — starvation-freedom by construction.
//!
//! All arithmetic is integer (cycles are scaled by [`WFQ_SCALE`] before
//! the weight division) and all tie-breaks are by member id, so a
//! selection sequence is a pure function of the charge sequence —
//! the determinism bar the service's byte-identical reports rest on.

/// Fixed-point scale applied to cycle charges before the weight
/// division, so small epochs under large weights still advance the
/// virtual clock.
pub const WFQ_SCALE: u128 = 1 << 20;

/// One schedulable member of the fleet queue.
#[derive(Clone, Copy, Debug)]
struct Member {
    id: u32,
    weight: u64,
    vtime: u128,
}

/// A weighted-fair virtual-time queue of job ids.
///
/// Determinism contract: `select`, `charge`, `add`, and `remove` are
/// pure functions of the call sequence — no host time, no randomness,
/// no hash-order iteration (members are kept sorted by id).
#[derive(Clone, Debug, Default)]
pub struct FleetQueue {
    members: Vec<Member>,
}

impl FleetQueue {
    /// An empty queue.
    pub fn new() -> FleetQueue {
        FleetQueue::default()
    }

    /// Number of members currently queued.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the queue has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Adds a member with the given weight (clamped to ≥ 1).
    ///
    /// The newcomer's virtual clock starts at the current minimum of
    /// the active members (the system virtual time), not at zero — a
    /// late arrival must compete from *now* rather than replaying the
    /// machine time it never consumed, which would starve incumbents.
    ///
    /// Adding an id that is already queued is a no-op.
    pub fn add(&mut self, id: u32, weight: u64) {
        if self.members.iter().any(|m| m.id == id) {
            return;
        }
        let vtime = self.members.iter().map(|m| m.vtime).min().unwrap_or(0);
        let pos = self
            .members
            .iter()
            .position(|m| m.id > id)
            .unwrap_or(self.members.len());
        self.members.insert(
            pos,
            Member {
                id,
                weight: weight.max(1),
                vtime,
            },
        );
    }

    /// Removes a member (a completed job). Unknown ids are ignored.
    pub fn remove(&mut self, id: u32) {
        self.members.retain(|m| m.id != id);
    }

    /// Charges `cycles` of consumed machine time to a member: its
    /// virtual clock advances by `cycles × WFQ_SCALE / weight`.
    pub fn charge(&mut self, id: u32, cycles: u64) {
        if let Some(member) = self.members.iter_mut().find(|m| m.id == id) {
            member.vtime = member
                .vtime
                .saturating_add(cycles as u128 * WFQ_SCALE / member.weight as u128);
        }
    }

    /// Selects up to `n` members with the smallest virtual timestamps,
    /// id-ascending within equal timestamps. The returned order is the
    /// dispatch order; the members are *not* removed.
    pub fn select(&self, n: usize) -> Vec<u32> {
        let mut ranked: Vec<(u128, u32)> = self.members.iter().map(|m| (m.vtime, m.id)).collect();
        ranked.sort_unstable();
        ranked.into_iter().take(n).map(|(_, id)| id).collect()
    }

    /// The member's current virtual timestamp (`None` if not queued).
    pub fn vtime(&self, id: u32) -> Option<u128> {
        self.members.iter().find(|m| m.id == id).map(|m| m.vtime)
    }
}

/// Splits `total` capacity into deterministic proportional shares by
/// weight: each share is `total × weight / Σweights` (floor), with the
/// remainder handed out one unit at a time in input order — so shares
/// always sum to exactly `total` and the split is a pure function of
/// the weights. Zero weights receive zero; an all-zero weight vector
/// yields all-zero shares.
pub fn fair_shares(total: u64, weights: &[u64]) -> Vec<u64> {
    let sum: u128 = weights.iter().map(|&w| w as u128).sum();
    if sum == 0 {
        return vec![0; weights.len()];
    }
    let mut shares: Vec<u64> = weights
        .iter()
        .map(|&w| (total as u128 * w as u128 / sum) as u64)
        .collect();
    let mut leftover = total - shares.iter().sum::<u64>();
    for (share, &w) in shares.iter_mut().zip(weights) {
        if leftover == 0 {
            break;
        }
        if w > 0 {
            *share += 1;
            leftover -= 1;
        }
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the queue like the service does: select one, charge it a
    /// fixed epoch cost, repeat. Returns per-id selection counts.
    fn selection_counts(weights: &[(u32, u64)], rounds: usize, epoch_cycles: u64) -> Vec<usize> {
        let mut queue = FleetQueue::new();
        for &(id, w) in weights {
            queue.add(id, w);
        }
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..rounds {
            let picked = queue.select(1)[0];
            let idx = weights.iter().position(|&(id, _)| id == picked).unwrap();
            counts[idx] += 1;
            queue.charge(picked, epoch_cycles);
        }
        counts
    }

    #[test]
    fn service_is_proportional_to_weight() {
        let counts = selection_counts(&[(1, 3), (2, 1)], 4_000, 1_000);
        // 3:1 weights → ~3000:1000 selections, give or take rounding.
        assert!((2_900..=3_100).contains(&counts[0]), "counts {counts:?}");
        assert!((900..=1_100).contains(&counts[1]), "counts {counts:?}");
    }

    #[test]
    fn low_weight_member_is_never_starved() {
        let counts = selection_counts(&[(1, 100), (2, 1)], 1_010, 1_000);
        assert!(counts[1] >= 9, "light tenant got {counts:?}");
    }

    #[test]
    fn ties_break_by_id_ascending() {
        let mut queue = FleetQueue::new();
        queue.add(7, 2);
        queue.add(3, 2);
        queue.add(5, 2);
        assert_eq!(queue.select(3), vec![3, 5, 7]);
        assert_eq!(queue.select(2), vec![3, 5]);
    }

    #[test]
    fn late_arrival_inherits_system_virtual_time() {
        let mut queue = FleetQueue::new();
        queue.add(1, 1);
        queue.charge(1, 10_000);
        queue.add(2, 1);
        // The newcomer starts at the minimum (= member 1's clock), so
        // it does not monopolize the queue replaying history; after one
        // charge the incumbents rotate back in.
        assert_eq!(queue.vtime(2), queue.vtime(1));
        assert_eq!(queue.select(1), vec![1], "tie falls to the lower id");
        queue.charge(1, 1);
        assert_eq!(queue.select(1), vec![2]);
    }

    #[test]
    fn selection_is_deterministic_in_the_charge_sequence() {
        let drive = || {
            let mut queue = FleetQueue::new();
            queue.add(1, 5);
            queue.add(2, 3);
            queue.add(3, 1);
            let mut order = Vec::new();
            for round in 0..500u64 {
                let picked = queue.select(2);
                for &id in &picked {
                    queue.charge(id, 700 + (round % 7) * 13);
                }
                order.extend(picked);
            }
            order
        };
        assert_eq!(drive(), drive());
    }

    #[test]
    fn remove_and_zero_weight_clamp() {
        let mut queue = FleetQueue::new();
        queue.add(1, 0); // clamped to 1, not a division by zero
        queue.charge(1, 100);
        assert!(queue.vtime(1).unwrap() > 0);
        queue.remove(1);
        assert!(queue.is_empty());
        queue.remove(1); // unknown id: no-op
        assert_eq!(queue.len(), 0);
    }

    #[test]
    fn fair_shares_sum_to_total_and_follow_weights() {
        assert_eq!(fair_shares(100, &[1, 1]), vec![50, 50]);
        assert_eq!(fair_shares(100, &[3, 1]), vec![75, 25]);
        let shares = fair_shares(100, &[1, 1, 1]);
        assert_eq!(shares.iter().sum::<u64>(), 100);
        assert_eq!(shares, vec![34, 33, 33], "remainder lands in input order");
        assert_eq!(fair_shares(10, &[0, 2]), vec![0, 10]);
        assert_eq!(fair_shares(10, &[0, 0]), vec![0, 0]);
    }
}

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # superpin-sched
//!
//! A deterministic multiprocessor timing model: the substitute for the
//! paper's 8-way 2.2 GHz Xeon MP testbed (16 logical processors with
//! hyperthreading enabled, §6.2).
//!
//! The crate is *unit-agnostic*: all durations are abstract ticks (the
//! SuperPin runner uses 2.2 GHz cycles). It provides:
//!
//! * [`Machine`] — CPU topology plus the two contention effects the paper
//!   calls out in §6.3: hyperthread siblings sharing a physical core's
//!   throughput, and the SMP scalability tax ("Running on all processors
//!   taxes the memory and other subsystems").
//! * [`QuantumScheduler`] — fair-share assignment of runnable tasks onto
//!   the machine per quantum, with round-robin rotation when
//!   oversubscribed.
//! * [`EpochPlanner`] — batches quanta into multi-quantum epochs between
//!   predicted scheduling events, so a parallel runner synchronizes its
//!   workers once per epoch instead of once per quantum.
//! * [`Timeline`] — labelled time-segment recording, used to produce the
//!   run-time breakdown of Figure 6 (native / fork&others / sleep /
//!   pipeline).
//! * [`FleetQueue`] — weighted-fair virtual-time scheduling of whole
//!   *jobs* for the multi-tenant service front end (`superpin-serve`),
//!   with [`fair_shares`] for deterministic proportional budget splits.

mod epoch;
mod fleet;
mod machine;
mod scheduler;
mod timeline;

pub use epoch::{
    predict_completion_quanta, watchdog_deadline_quanta, EpochPlanner, SliceEta,
    DEFAULT_TICKS_PER_INST, DEFERRAL_REVIEW_QUANTA,
};
pub use fleet::{fair_shares, FleetQueue, WFQ_SCALE};
pub use machine::Machine;
pub use scheduler::{Policy, QuantumScheduler, Share};
pub use timeline::Timeline;

//! Property tests for the machine model and scheduler.

use proptest::prelude::*;
use superpin_sched::{Machine, Policy, QuantumScheduler};

proptest! {
    /// Total allocated throughput never exceeds what the machine can
    /// deliver, under either policy.
    #[test]
    fn prop_shares_conserve_throughput(
        physical in 1usize..16,
        smt in any::<bool>(),
        runnable in 1usize..40,
        master_first in any::<bool>(),
    ) {
        let machine = Machine {
            physical_cores: physical,
            smt_enabled: smt,
            ..Machine::paper_testbed()
        };
        let policy = if master_first { Policy::MasterFirst } else { Policy::FairShare };
        let scheduler = QuantumScheduler::new(machine, policy);
        let tasks: Vec<u64> = (0..runnable as u64).collect();
        let shares = scheduler.shares(&tasks);
        prop_assert_eq!(shares.len(), runnable);
        let total: f64 = shares.iter().map(|s| s.throughput).sum();
        prop_assert!(total <= machine.total_throughput(runnable) + 1e-9,
            "allocated {total} > capacity {}", machine.total_throughput(runnable));
        for share in &shares {
            prop_assert!(share.throughput >= 0.0);
            prop_assert!(share.throughput <= 1.0 + 1e-9, "no task runs faster than a core");
        }
    }

    /// Per-task throughput never increases as more tasks contend.
    #[test]
    fn prop_per_task_throughput_monotone_nonincreasing(
        physical in 1usize..16,
        smt in any::<bool>(),
    ) {
        let machine = Machine {
            physical_cores: physical,
            smt_enabled: smt,
            ..Machine::paper_testbed()
        };
        let mut prev = f64::INFINITY;
        for runnable in 1..=32 {
            let per = machine.per_task_throughput(runnable);
            prop_assert!(per <= prev + 1e-12, "throughput rose at {runnable} tasks");
            prev = per;
        }
    }

    /// Total machine throughput is non-decreasing in runnable tasks and
    /// saturates exactly at the logical CPU count.
    #[test]
    fn prop_total_throughput_saturates(
        physical in 1usize..16,
        smt in any::<bool>(),
    ) {
        let machine = Machine {
            physical_cores: physical,
            smt_enabled: smt,
            ..Machine::paper_testbed()
        };
        let logical = machine.logical_cpus();
        let mut prev = 0.0;
        for runnable in 1..=logical {
            let total = machine.total_throughput(runnable);
            prop_assert!(total >= prev - 1e-12);
            prev = total;
        }
        prop_assert_eq!(
            machine.total_throughput(logical),
            machine.total_throughput(logical + 5)
        );
    }
}

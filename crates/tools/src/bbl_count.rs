//! Basic-block execution profiling (Pin's classic `bblcount` shape).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::sync::Mutex;
use superpin::{SharedMem, SuperTool};
use superpin_dbi::{IPoint, Inserter, Pintool, Trace};

/// Counts executions of every basic block, keyed by head address.
///
/// Useful on its own (hot-block reports) and as the execution-frequency
/// input to coverage or layout tools. Slice-local counts merge in slice
/// order into a shared table.
#[derive(Clone, Debug, Default)]
pub struct BblCount {
    local: BTreeMap<u64, u64>,
    merged: Arc<Mutex<BTreeMap<u64, u64>>>,
}

impl BblCount {
    /// Creates an empty profiler.
    pub fn new() -> BblCount {
        BblCount::default()
    }

    /// Slice-local (or serial-mode) per-block counts.
    pub fn local_blocks(&self) -> &BTreeMap<u64, u64> {
        &self.local
    }

    /// Snapshot of the merged table.
    pub fn merged_blocks(&self) -> BTreeMap<u64, u64> {
        self.merged.lock().expect("mutex poisoned").clone()
    }

    /// The `n` hottest blocks, descending, from the merged table.
    pub fn hottest(&self, n: usize) -> Vec<(u64, u64)> {
        let mut blocks: Vec<(u64, u64)> = self
            .merged
            .lock()
            .expect("mutex poisoned")
            .iter()
            .map(|(&a, &c)| (a, c))
            .collect();
        blocks.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        blocks.truncate(n);
        blocks
    }
}

impl Pintool for BblCount {
    fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
        for bbl in trace.bbls() {
            inserter.insert_call(
                bbl.head_addr(),
                IPoint::Before,
                |tool, ctx, _| *tool.local.entry(ctx.pc).or_insert(0) += 1,
                vec![],
            );
        }
    }

    fn instrumentation_is_shareable(&self, _trace: &Trace) -> bool {
        // Calls depend only on the trace; all state is touched at
        // analysis time, so clones instrument identically.
        true
    }

    fn name(&self) -> &'static str {
        "bblcount"
    }
}

impl SuperTool for BblCount {
    fn reset(&mut self, _slice_num: u32) {
        self.local.clear();
    }

    fn on_slice_end(&mut self, _slice_num: u32, _shared: &SharedMem) {
        let mut merged = self.merged.lock().expect("mutex poisoned");
        for (&addr, &count) in &self.local {
            *merged.entry(addr).or_insert(0) += count;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superpin::baseline::run_pin;
    use superpin_isa::asm::assemble;
    use superpin_vm::process::Process;

    #[test]
    fn loop_head_is_hottest() {
        let program =
            assemble("main:\n li r1, 50\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n exit 0\n")
                .expect("assemble");
        let loop_head = program.entry() + 16;
        let pin = run_pin(Process::load(1, &program).expect("load"), BblCount::new()).expect("pin");
        let blocks = pin.tool.local_blocks();
        // The first pass through the loop body runs inside the entry
        // trace's block (blocks split at control flow, and `li` falls
        // through); the remaining 49 iterations re-enter at the head.
        assert_eq!(blocks[&loop_head], 49);
        // Block counts × block sizes must reproduce the dynamic count.
        // (loop body = 2 insts; entry li = part of the first trace.)
        let weighted: u64 = blocks
            .iter()
            .map(|(&addr, &count)| {
                // Count instructions in the block at `addr`.
                let trace = superpin_dbi::discover_trace(
                    &Process::load(1, &program).expect("load").mem,
                    addr,
                )
                .expect("trace");
                let bbl_len = trace.bbls()[0].num_insts() as u64;
                count * bbl_len
            })
            .sum();
        assert_eq!(weighted, pin.insts);
    }

    #[test]
    fn merge_accumulates_and_ranks() {
        let shared = SharedMem::new();
        let mut slice1 = BblCount::new();
        slice1.reset(1);
        slice1.local.insert(0x10, 5);
        slice1.local.insert(0x20, 1);
        slice1.on_slice_end(1, &shared);
        let mut slice2 = slice1.clone();
        slice2.reset(2);
        slice2.local.insert(0x10, 2);
        slice2.on_slice_end(2, &shared);
        assert_eq!(slice2.merged_blocks()[&0x10], 7);
        assert_eq!(slice2.hottest(1), vec![(0x10, 7)]);
    }
}

//! A set-associative LRU data-cache SuperTool.
//!
//! The paper's §5.2 walkthrough covers the direct-mapped case, where the
//! first access to a set fully determines its content. With
//! associativity, a slice's early accesses touch sets whose *other* ways
//! still hold unknown pre-slice lines, so hit/miss verdicts and even LRU
//! eviction victims can depend on state only the previous slice knows.
//!
//! This tool applies the paper's general recipe (§4.5):
//!
//! 1. *Assume* and record: while a set still contains unknown pre-slice
//!    lines, the slice logs the set's access sequence (run-length
//!    compressed) instead of judging it, and models unknown ways with
//!    placeholders.
//! 2. Once a set has observed `ways` distinct lines, its content is
//!    fully determined and the slice judges accesses locally.
//! 3. *Reconcile at merge*: the logged prefix is replayed — in slice
//!    order — against the previous slice's final state (kept in a shared
//!    area, lines in LRU-to-MRU order), which yields the exact verdicts
//!    a serial simulation would have produced.

use crate::dcache::DCacheResult;
use superpin::{AreaId, AutoMerge, SharedMem, SuperTool};
use superpin_dbi::{IArg, IPoint, Inserter, Pintool, Trace};

/// Geometry of the set-associative cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AssocDCacheConfig {
    /// Number of sets (power of two recommended).
    pub num_sets: usize,
    /// Ways per set.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl AssocDCacheConfig {
    /// 4 KiB, 2-way, 64-byte lines (32 sets).
    pub fn small() -> AssocDCacheConfig {
        AssocDCacheConfig {
            num_sets: 32,
            ways: 2,
            line_bytes: 64,
        }
    }

    /// 8 KiB, 4-way, 64-byte lines (32 sets).
    pub fn four_way() -> AssocDCacheConfig {
        AssocDCacheConfig {
            num_sets: 32,
            ways: 4,
            line_bytes: 64,
        }
    }
}

impl Default for AssocDCacheConfig {
    fn default() -> AssocDCacheConfig {
        AssocDCacheConfig::small()
    }
}

/// One set: resident lines in LRU→MRU order. `None` = unknown pre-slice
/// line (placeholder).
type SetState = Vec<Option<u64>>;

/// A serial set-associative LRU cache simulator (also the merge-time
/// replay engine).
#[derive(Clone, Debug)]
pub struct LruCache {
    cfg: AssocDCacheConfig,
    /// Per set, lines in LRU→MRU order (index 0 evicted first).
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl LruCache {
    /// An empty cache.
    pub fn new(cfg: AssocDCacheConfig) -> LruCache {
        LruCache {
            cfg,
            sets: vec![Vec::new(); cfg.num_sets],
            hits: 0,
            misses: 0,
        }
    }

    /// Creates a cache from explicit per-set contents (LRU→MRU order).
    pub fn from_state(cfg: AssocDCacheConfig, sets: Vec<Vec<u64>>) -> LruCache {
        assert_eq!(sets.len(), cfg.num_sets, "state must cover every set");
        LruCache {
            cfg,
            sets,
            hits: 0,
            misses: 0,
        }
    }

    /// Simulates one access by line id; returns `true` on a hit.
    pub fn access_line(&mut self, line: u64) -> bool {
        let set = (line % self.cfg.num_sets as u64) as usize;
        let ways = self.cfg.ways;
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|&resident| resident == line) {
            entries.remove(pos);
            entries.push(line); // MRU
            self.hits += 1;
            true
        } else {
            if entries.len() >= ways {
                entries.remove(0); // evict LRU
            }
            entries.push(line);
            self.misses += 1;
            false
        }
    }

    /// Simulates one access by byte address.
    pub fn access(&mut self, addr: u64) -> bool {
        self.access_line(addr / self.cfg.line_bytes)
    }

    /// Totals so far.
    pub fn result(&self) -> DCacheResult {
        DCacheResult {
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// Per-set contents, LRU→MRU.
    pub fn state(&self) -> &[Vec<u64>] {
        &self.sets
    }
}

/// The set-associative SuperTool.
#[derive(Clone, Debug)]
pub struct AssocDCache {
    cfg: AssocDCacheConfig,
    /// Slice-local model: per set, LRU→MRU entries, `None` = unknown
    /// pre-slice line.
    sets: Vec<SetState>,
    /// Per-set logged access prefix as (line, repeat-count) pairs —
    /// consecutive accesses to the same line are guaranteed hits, so
    /// they compress losslessly. Recorded while the set still contains
    /// unknowns.
    logs: Vec<Vec<(u64, u64)>>,
    /// Whether each set still contains unknown ways (log active).
    logging: Vec<bool>,
    /// Hits/misses judged locally (post-determinism only).
    hits: u64,
    misses: u64,
    sp_mode: bool,
    hits_area: AreaId,
    misses_area: AreaId,
    /// Carried final state: `num_sets × ways` words, LRU→MRU, `0` =
    /// empty, else `line + 1`.
    state_area: AreaId,
}

impl AssocDCache {
    /// Creates the tool and its shared areas.
    pub fn new(shared: &SharedMem, cfg: AssocDCacheConfig) -> AssocDCache {
        AssocDCache {
            cfg,
            sets: vec![Vec::new(); cfg.num_sets],
            logs: vec![Vec::new(); cfg.num_sets],
            logging: vec![true; cfg.num_sets],
            hits: 0,
            misses: 0,
            sp_mode: false,
            hits_area: shared.create_area(1, AutoMerge::Manual),
            misses_area: shared.create_area(1, AutoMerge::Manual),
            state_area: shared.create_area(cfg.num_sets * cfg.ways, AutoMerge::Manual),
        }
    }

    /// The geometry.
    pub fn config(&self) -> AssocDCacheConfig {
        self.cfg
    }

    /// Merged totals from shared memory.
    pub fn merged_result(&self, shared: &SharedMem) -> DCacheResult {
        DCacheResult {
            hits: shared.area(self.hits_area).read(0),
            misses: shared.area(self.misses_area).read(0),
        }
    }

    /// Slice-local judged totals (serial mode: the full result).
    pub fn local_result(&self) -> DCacheResult {
        DCacheResult {
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// Simulates one access.
    pub fn access(&mut self, addr: u64) {
        let line = addr / self.cfg.line_bytes;
        let set_index = (line % self.cfg.num_sets as u64) as usize;
        let ways = self.cfg.ways;

        if self.sp_mode && self.logging[set_index] {
            // Log (RLE) while the set still has unknown pre-slice ways.
            let log = &mut self.logs[set_index];
            match log.last_mut() {
                Some((last, count)) if *last == line => *count += 1,
                _ => log.push((line, 1)),
            }
            // Maintain the placeholder model to detect determinism.
            let entries = &mut self.sets[set_index];
            if let Some(pos) = entries.iter().position(|&e| e == Some(line)) {
                entries.remove(pos);
                entries.push(Some(line));
            } else {
                // Not among known lines. Whether it hits an unknown way
                // cannot be decided yet; conservatively *keep* unknowns
                // (an assumed hit cannot evict). The merge replay fixes
                // everything; the model only tracks known lines to test
                // for determinism.
                if entries.len() >= ways {
                    entries.remove(0);
                }
                entries.push(Some(line));
            }
            // Determined once `ways` distinct known lines are resident.
            let known = self.sets[set_index].iter().filter(|e| e.is_some()).count();
            if known >= ways {
                self.logging[set_index] = false;
            }
            return;
        }

        // Locally judged access (serial mode, or a determined set).
        let entries = &mut self.sets[set_index];
        if let Some(pos) = entries.iter().position(|&e| e == Some(line)) {
            entries.remove(pos);
            entries.push(Some(line));
            self.hits += 1;
        } else {
            if entries.len() >= ways {
                entries.remove(0);
            }
            entries.push(Some(line));
            self.misses += 1;
        }
    }

    fn read_carried_state(&self, shared: &SharedMem) -> Vec<Vec<u64>> {
        let area = shared.area(self.state_area);
        (0..self.cfg.num_sets)
            .map(|set| {
                (0..self.cfg.ways)
                    .filter_map(|way| {
                        let word = area.read(set * self.cfg.ways + way);
                        (word != 0).then(|| word - 1)
                    })
                    .collect()
            })
            .collect()
    }

    fn write_carried_state(&self, shared: &SharedMem, state: &[Vec<u64>]) {
        let area = shared.area(self.state_area);
        for (set, entries) in state.iter().enumerate() {
            for way in 0..self.cfg.ways {
                let word = entries.get(way).map(|&line| line + 1).unwrap_or(0);
                area.write(set * self.cfg.ways + way, word);
            }
        }
    }
}

impl Pintool for AssocDCache {
    fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
        for iref in trace.insts() {
            if iref.inst.is_mem_read() || iref.inst.is_mem_write() {
                inserter.insert_call(
                    iref.addr,
                    IPoint::Before,
                    |tool, ctx, _| tool.access(ctx.arg(0)),
                    vec![IArg::MemAddr],
                );
            }
        }
    }

    fn instrumentation_is_shareable(&self, _trace: &Trace) -> bool {
        // Calls depend only on the trace; all state is touched at
        // analysis time, so clones instrument identically.
        true
    }

    fn name(&self) -> &'static str {
        "dcache-assoc"
    }
}

impl SuperTool for AssocDCache {
    fn reset(&mut self, _slice_num: u32) {
        self.sets = vec![Vec::new(); self.cfg.num_sets];
        self.logs = vec![Vec::new(); self.cfg.num_sets];
        self.logging = vec![true; self.cfg.num_sets];
        self.hits = 0;
        self.misses = 0;
        self.sp_mode = true;
    }

    fn on_slice_end(&mut self, _slice_num: u32, shared: &SharedMem) {
        // Replay this slice's logged prefixes — and re-derive the final
        // state — against the previous slice's carried state.
        let mut replay = LruCache::from_state(self.cfg, self.read_carried_state(shared));
        let mut hits = self.hits;
        let mut misses = self.misses;
        for log in &self.logs {
            for &(line, count) in log {
                if replay.access_line(line) {
                    hits += 1;
                } else {
                    misses += 1;
                }
                // The collapsed repeats re-access the MRU line: all hits.
                hits += count - 1;
            }
        }
        // Post-log accesses were judged exactly; re-apply their effect on
        // the state by replaying the determined sets' known contents: a
        // determined set's final content is exactly its slice-local
        // entries (all known), in order.
        let mut final_state = replay.state().to_vec();
        for (set, entries) in self.sets.iter().enumerate() {
            if !self.logging[set] {
                // Fully determined: local order is authoritative.
                final_state[set] = entries.iter().map(|e| e.expect("determined")).collect();
            }
            // Still-logging sets were fully handled by the replay above
            // (their logged prefix is their entire access history).
        }
        shared.area(self.hits_area).add(0, hits);
        shared.area(self.misses_area).add(0, misses);
        self.write_carried_state(shared, &final_state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sliced_result(cfg: AssocDCacheConfig, chunks: &[&[u64]]) -> DCacheResult {
        let shared = SharedMem::new();
        let template = AssocDCache::new(&shared, cfg);
        let mut tool = template.clone();
        for (i, chunk) in chunks.iter().enumerate() {
            tool = template.clone();
            tool.reset(i as u32 + 1);
            for &addr in *chunk {
                tool.access(addr);
            }
            tool.on_slice_end(i as u32 + 1, &shared);
        }
        tool.merged_result(&shared)
    }

    fn serial_result(cfg: AssocDCacheConfig, stream: &[u64]) -> DCacheResult {
        let mut cache = LruCache::new(cfg);
        for &addr in stream {
            cache.access(addr);
        }
        cache.result()
    }

    #[test]
    fn lru_basics() {
        let mut cache = LruCache::new(AssocDCacheConfig::small());
        // Two lines in the same set (set stride = 32 lines * 64 B).
        let (a, b, c) = (0x0, 0x800 * 64, 0x1000 * 64);
        assert!(!cache.access(a));
        assert!(!cache.access(b));
        assert!(cache.access(a)); // still resident (2-way)
        assert!(!cache.access(c)); // evicts b (LRU)
        assert!(!cache.access(b)); // b was evicted
        assert_eq!(cache.result().misses, 4);
        assert_eq!(cache.result().hits, 1);
    }

    #[test]
    fn conflict_aware_reconciliation_across_one_split() {
        let cfg = AssocDCacheConfig::small();
        // Lines A and B map to set 0; slice 2's first access to B must
        // be judged against slice 1's final state {A, B}.
        let a = 0u64;
        let b = 32 * 64; // same set, different line
        let stream = [a, b, a, b, b, a];
        let want = serial_result(cfg, &stream);
        for split in 1..stream.len() {
            let got = sliced_result(cfg, &[&stream[..split], &stream[split..]]);
            assert_eq!(got, want, "split at {split}");
        }
    }

    #[test]
    fn unknown_way_eviction_is_replay_exact() {
        let cfg = AssocDCacheConfig::small();
        // Slice 1 leaves {A, B}; slice 2 accesses C (evicts A), then A
        // (miss!), exercising the order-dependent eviction case.
        let a = 0u64;
        let b = 32 * 64;
        let c = 64 * 64;
        let stream = [a, b, c, a, c, b];
        let want = serial_result(cfg, &stream);
        for split in 1..stream.len() {
            let got = sliced_result(cfg, &[&stream[..split], &stream[split..]]);
            assert_eq!(got, want, "split at {split}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The sliced set-associative simulation with merge-time replay
        /// is exact for arbitrary streams and split points, at 2 and 4
        /// ways.
        #[test]
        fn prop_sliced_equals_serial(
            // Small address universe to force conflicts.
            stream in proptest::collection::vec(0u64..(8 * 32 * 64), 1..200),
            cut in 0usize..199,
            four_way in any::<bool>(),
        ) {
            let cfg = if four_way {
                AssocDCacheConfig::four_way()
            } else {
                AssocDCacheConfig::small()
            };
            let want = serial_result(cfg, &stream);
            let cut = cut.min(stream.len() - 1).max(1.min(stream.len() - 1));
            let chunks: Vec<&[u64]> = if cut == 0 || cut >= stream.len() {
                vec![&stream[..]]
            } else {
                vec![&stream[..cut], &stream[cut..]]
            };
            prop_assert_eq!(sliced_result(cfg, &chunks), want);
        }

        /// Three-way splits are exact too (state chains through merges).
        #[test]
        fn prop_three_slices_exact(
            stream in proptest::collection::vec(0u64..(4 * 32 * 64), 3..150),
            cut1 in 1usize..50,
            cut2 in 1usize..50,
        ) {
            let cfg = AssocDCacheConfig::small();
            let want = serial_result(cfg, &stream);
            let a = cut1.min(stream.len() - 2);
            let b = (a + cut2).min(stream.len() - 1);
            let chunks: Vec<&[u64]> = vec![&stream[..a], &stream[a..b], &stream[b..]];
            prop_assert_eq!(sliced_result(cfg, &chunks), want);
        }
    }
}

//! By-name tool dispatch for front ends that pick a pintool from a
//! string (the `spin-serve` job queue, where every job line names its
//! tool).
//!
//! [`SuperPinRunner`](superpin::SuperPinRunner) is generic over its
//! tool, so "build the runner for whatever tool this job names" needs
//! rank-2 dispatch: a caller-supplied [`ToolVisitor`] whose generic
//! `visit` is instantiated with the concrete tool type behind the name.
//! The visitor typically boxes the typed runner behind an object-safe
//! driver trait, erasing the type exactly once, at job admission.

use superpin::{SharedMem, SuperTool};

use crate::{BblCount, BranchProfile, ICount1, ICount2, ITrace, InsMix, MemProfile};

/// Tool names the service registry dispatches, in stable order. The
/// names match the `superpin` CLI's `-t` values; tools that need extra
/// configuration (cache geometries, sample budgets) are deliberately
/// not servable by bare name.
pub const SERVE_TOOL_NAMES: &[&str] = &[
    "icount1", "icount2", "bblcount", "insmix", "itrace", "branch", "mem",
];

/// A computation generic over which [`SuperTool`] it receives — the
/// rank-2 half of [`with_tool`].
pub trait ToolVisitor {
    /// The visitor's result type.
    type Out;

    /// Runs with the concrete tool built for the requested name.
    fn visit<T: SuperTool>(self, tool: T) -> Self::Out;
}

/// Builds the tool registered under `name` (backed by `shared`) and
/// hands it to the visitor. `None` for names outside
/// [`SERVE_TOOL_NAMES`].
pub fn with_tool<V: ToolVisitor>(name: &str, shared: &SharedMem, visitor: V) -> Option<V::Out> {
    match name {
        "icount1" => Some(visitor.visit(ICount1::new(shared))),
        "icount2" => Some(visitor.visit(ICount2::new(shared))),
        "bblcount" => Some(visitor.visit(BblCount::new())),
        "insmix" => Some(visitor.visit(InsMix::new(shared))),
        "itrace" => Some(visitor.visit(ITrace::new())),
        "branch" => Some(visitor.visit(BranchProfile::new())),
        "mem" => Some(visitor.visit(MemProfile::new(shared))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NameOfTool;

    impl ToolVisitor for NameOfTool {
        type Out = &'static str;

        fn visit<T: SuperTool>(self, _tool: T) -> &'static str {
            std::any::type_name::<T>()
        }
    }

    #[test]
    fn every_registered_name_dispatches() {
        let shared = SharedMem::new();
        for name in SERVE_TOOL_NAMES {
            let ty = with_tool(name, &shared, NameOfTool);
            assert!(ty.is_some(), "{name} failed to dispatch");
        }
        assert_eq!(with_tool("dcache", &shared, NameOfTool), None);
        assert_eq!(with_tool("nope", &shared, NameOfTool), None);
    }

    #[test]
    fn dispatch_reaches_the_named_type() {
        let shared = SharedMem::new();
        let ty = with_tool("icount2", &shared, NameOfTool).unwrap();
        assert!(ty.ends_with("ICount2"), "dispatched {ty}");
    }
}

//! Per-branch-site taken/fall-through profiling.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::sync::Mutex;
use superpin::{SharedMem, SuperTool};
use superpin_dbi::{IArg, IPoint, Inserter, Pintool, Trace};
use superpin_isa::Inst;

/// Counts for one branch site.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BranchSiteStats {
    /// Times the branch was taken.
    pub taken: u64,
    /// Times it fell through.
    pub not_taken: u64,
}

impl BranchSiteStats {
    /// Fraction taken in [0, 1].
    pub fn taken_ratio(&self) -> f64 {
        let total = self.taken + self.not_taken;
        if total == 0 {
            0.0
        } else {
            self.taken as f64 / total as f64
        }
    }
}

/// Profiles every conditional branch. Slice-local counts merge (in slice
/// order) into a shared table — the "shared memory region" of paper §4.5
/// holding structured rather than scalar data.
#[derive(Clone, Debug, Default)]
pub struct BranchProfile {
    local: BTreeMap<u64, BranchSiteStats>,
    merged: Arc<Mutex<BTreeMap<u64, BranchSiteStats>>>,
}

impl BranchProfile {
    /// Creates an empty profiler.
    pub fn new() -> BranchProfile {
        BranchProfile::default()
    }

    /// Slice-local (or serial-mode) per-site counts.
    pub fn local_sites(&self) -> &BTreeMap<u64, BranchSiteStats> {
        &self.local
    }

    /// Snapshot of the merged table.
    pub fn merged_sites(&self) -> BTreeMap<u64, BranchSiteStats> {
        self.merged.lock().expect("mutex poisoned").clone()
    }

    fn observe(&mut self, pc: u64, taken: bool) {
        let site = self.local.entry(pc).or_default();
        if taken {
            site.taken += 1;
        } else {
            site.not_taken += 1;
        }
    }
}

impl Pintool for BranchProfile {
    fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
        for iref in trace.insts() {
            if matches!(iref.inst, Inst::Branch { .. }) {
                inserter.insert_call(
                    iref.addr,
                    IPoint::After,
                    |tool, ctx, _| tool.observe(ctx.pc, ctx.arg(0) == 1),
                    vec![IArg::BranchTaken],
                );
            }
        }
    }

    fn instrumentation_is_shareable(&self, _trace: &Trace) -> bool {
        // Calls depend only on the trace; all state is touched at
        // analysis time, so clones instrument identically.
        true
    }

    fn name(&self) -> &'static str {
        "branch-profile"
    }
}

impl SuperTool for BranchProfile {
    fn reset(&mut self, _slice_num: u32) {
        self.local.clear();
    }

    fn on_slice_end(&mut self, _slice_num: u32, _shared: &SharedMem) {
        let mut merged = self.merged.lock().expect("mutex poisoned");
        for (&pc, &stats) in &self.local {
            let entry = merged.entry(pc).or_default();
            entry.taken += stats.taken;
            entry.not_taken += stats.not_taken;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superpin::baseline::run_pin;
    use superpin_isa::asm::assemble;
    use superpin_vm::process::Process;

    #[test]
    fn profiles_loop_branch() {
        let program =
            assemble("main:\n li r1, 10\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n exit 0\n")
                .expect("assemble");
        let branch_pc = program.entry() + 24;
        let pin = run_pin(
            Process::load(1, &program).expect("load"),
            BranchProfile::new(),
        )
        .expect("pin");
        let sites = pin.tool.local_sites();
        let site = sites[&branch_pc];
        assert_eq!(site.taken, 9);
        assert_eq!(site.not_taken, 1);
        assert!((site.taken_ratio() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_across_slices() {
        let shared = SharedMem::new();
        let mut slice1 = BranchProfile::new();
        slice1.reset(1);
        slice1.observe(0x10, true);
        slice1.observe(0x10, false);
        slice1.on_slice_end(1, &shared);
        // Clones share the merged table (shared memory across slices).
        let mut slice2 = slice1.clone();
        slice2.reset(2);
        slice2.observe(0x10, true);
        slice2.on_slice_end(2, &shared);
        let merged = slice2.merged_sites();
        assert_eq!(
            merged[&0x10],
            BranchSiteStats {
                taken: 2,
                not_taken: 1
            }
        );
    }
}

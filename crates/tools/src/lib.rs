#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # superpin-tools
//!
//! The Pintools used throughout the SuperPin reproduction — each one a
//! [`Pintool`](superpin_dbi::Pintool) that also implements
//! [`SuperTool`](superpin::SuperTool) so it runs unchanged under
//! traditional Pin *and* under SuperPin slicing:
//!
//! * [`ICount1`] — a counter call after **every instruction** (the
//!   paper's instrumentation-limited tool, Figures 3–4).
//! * [`ICount2`] — a counter call per **basic block** (Figure 5; the
//!   SuperPin version is the paper's Figure 2 listing).
//! * [`DCache`] — a data-cache simulator with the paper's §5.2
//!   assumed-hit reconciliation across slice boundaries; its merged
//!   result is *exactly* equal to a serial simulation.
//! * [`ITrace`] — an instruction tracer whose per-slice buffers are
//!   appended in slice order (paper §4.5).
//! * [`BranchProfile`] — per-branch taken/fall-through counts.
//! * [`MemProfile`] — load/store counts and bytes moved.
//! * [`Sampler`] — a Shadow-Profiler-style sampling tool that ends each
//!   slice early via the `SP_EndSlice` analogue (paper §5).

mod bbl_count;
mod branch_profile;
mod dcache;
mod dcache_assoc;
mod icache;
mod icount;
mod insmix;
mod itrace;
mod mem_profile;
mod sampler;

mod registry;

pub use bbl_count::BblCount;
pub use branch_profile::{BranchProfile, BranchSiteStats};
pub use dcache::{DCache, DCacheConfig, DCacheResult};
pub use dcache_assoc::{AssocDCache, AssocDCacheConfig, LruCache};
pub use icache::ICache;
pub use icount::{ICount1, ICount2};
pub use insmix::{InsMix, MixCategory, MixCounts};
pub use itrace::ITrace;
pub use mem_profile::{MemProfile, MemProfileTotals};
pub use registry::{with_tool, ToolVisitor, SERVE_TOOL_NAMES};
pub use sampler::{Sampler, BUCKET_BYTES};

#[cfg(test)]
mod send_audit {
    //! The parallel runner moves each slice — tool clone included — into
    //! a scoped worker thread, so every tool must satisfy the
    //! `SuperTool: … + Send + 'static` bound. This is a compile-time
    //! audit: if a tool ever grows an `Rc`, `RefCell`-of-shared, or raw
    //! pointer, this module stops compiling, long before a runtime race.
    use super::*;

    fn assert_super_tool<T: superpin::SuperTool>() {}

    #[test]
    fn every_tool_is_a_send_super_tool() {
        assert_super_tool::<BblCount>();
        assert_super_tool::<BranchProfile>();
        assert_super_tool::<DCache>();
        assert_super_tool::<AssocDCache>();
        assert_super_tool::<ICache>();
        assert_super_tool::<ICount1>();
        assert_super_tool::<ICount2>();
        assert_super_tool::<InsMix>();
        assert_super_tool::<ITrace>();
        assert_super_tool::<MemProfile>();
        assert_super_tool::<Sampler>();
    }
}

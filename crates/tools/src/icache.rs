//! An instruction-cache simulator SuperTool.
//!
//! Pin's toolkit ships an icache sibling to `dcache.cpp`; this tool
//! reuses the direct-mapped assumed-hit reconciliation of [`DCache`]
//! (paper §5.2) but feeds it instruction fetch addresses rather than
//! data effective addresses.

use crate::dcache::{DCache, DCacheConfig, DCacheResult};
use superpin::{SharedMem, SuperTool};
use superpin_dbi::{IArg, IPoint, Inserter, Pintool, Trace};

/// Direct-mapped instruction-cache simulator with cross-slice
/// reconciliation.
#[derive(Clone, Debug)]
pub struct ICache {
    inner: DCache,
}

impl ICache {
    /// Creates the tool and its shared areas.
    pub fn new(shared: &SharedMem, cfg: DCacheConfig) -> ICache {
        ICache {
            inner: DCache::new(shared, cfg),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> DCacheConfig {
        self.inner.config()
    }

    /// Slice-local (or serial-mode) totals before reconciliation.
    pub fn local_result(&self) -> DCacheResult {
        self.inner.local_result()
    }

    /// Merged totals from shared memory (SuperPin mode).
    pub fn merged_result(&self, shared: &SharedMem) -> DCacheResult {
        self.inner.merged_result(shared)
    }

    /// Simulates one instruction fetch.
    pub fn fetch(&mut self, pc: u64) {
        self.inner.access(pc);
    }
}

impl Pintool for ICache {
    fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
        for iref in trace.insts() {
            inserter.insert_call(
                iref.addr,
                IPoint::Before,
                |tool, ctx, _| tool.fetch(ctx.arg(0)),
                vec![IArg::InstPtr],
            );
        }
    }

    fn instrumentation_is_shareable(&self, _trace: &Trace) -> bool {
        // Calls depend only on the trace; all state is touched at
        // analysis time, so clones instrument identically.
        true
    }

    fn name(&self) -> &'static str {
        "icache"
    }
}

impl SuperTool for ICache {
    fn reset(&mut self, slice_num: u32) {
        self.inner.reset(slice_num);
    }

    fn on_slice_end(&mut self, slice_num: u32, shared: &SharedMem) {
        self.inner.on_slice_end(slice_num, shared);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superpin::baseline::run_pin;
    use superpin_isa::asm::assemble;
    use superpin_vm::process::Process;

    #[test]
    fn hot_loop_hits_after_cold_fetches() {
        let program =
            assemble("main:\n li r1, 100\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n exit 0\n")
                .expect("assemble");
        let shared = SharedMem::new();
        let pin = run_pin(
            Process::load(1, &program).expect("load"),
            ICache::new(&shared, DCacheConfig::small()),
        )
        .expect("pin");
        let result = pin.tool.local_result();
        assert_eq!(result.accesses(), pin.insts);
        // The whole program fits in one or two lines: a few cold misses,
        // everything else hits.
        assert!(result.misses <= 2, "misses {}", result.misses);
        assert!(result.hits > 190);
    }

    #[test]
    fn sliced_icache_matches_serial() {
        // Reuse the tool-level reconciliation directly on a fetch stream.
        use superpin::SuperTool as _;
        let stream: Vec<u64> = (0..400u64).map(|i| 0x1000 + (i % 7) * 1024).collect();
        let shared = SharedMem::new();
        let mut serial = ICache::new(&shared, DCacheConfig::small());
        for &pc in &stream {
            serial.fetch(pc);
        }
        let want = serial.local_result();

        let shared = SharedMem::new();
        let template = ICache::new(&shared, DCacheConfig::small());
        let mut tool = template.clone();
        tool.reset(1);
        for (i, &pc) in stream.iter().enumerate() {
            tool.fetch(pc);
            if i == 137 {
                tool.on_slice_end(1, &shared);
                tool = template.clone();
                tool.reset(2);
            }
        }
        tool.on_slice_end(2, &shared);
        assert_eq!(tool.merged_result(&shared), want);
    }
}

//! An instruction tracer with buffered, in-order merging.
//!
//! Paper §4.5: "if we are tracing instructions, the slice output will be
//! buffered, then appended to the output during merging." Because merges
//! run in slice order, the concatenated trace equals the serial trace.

use superpin::{SharedMem, SuperTool};
use superpin_dbi::{IArg, IPoint, Inserter, Pintool, Trace};

/// Traces every executed instruction address into a per-slice buffer.
#[derive(Clone, Debug, Default)]
pub struct ITrace {
    buffer: Vec<u8>,
}

impl ITrace {
    /// Creates an empty tracer.
    pub fn new() -> ITrace {
        ITrace::default()
    }

    /// The slice-local buffer (little-endian u64 addresses).
    pub fn local_buffer(&self) -> &[u8] {
        &self.buffer
    }

    /// Decodes a merged (or local) buffer back into addresses.
    pub fn decode(bytes: &[u8]) -> Vec<u64> {
        bytes
            .chunks_exact(8)
            .map(|chunk| u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes")))
            .collect()
    }

    /// The merged trace from shared memory.
    pub fn merged_trace(shared: &SharedMem) -> Vec<u64> {
        ITrace::decode(&shared.output())
    }
}

impl Pintool for ITrace {
    fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
        for iref in trace.insts() {
            inserter.insert_call(
                iref.addr,
                IPoint::Before,
                |tool, ctx, _| tool.buffer.extend_from_slice(&ctx.arg(0).to_le_bytes()),
                vec![IArg::InstPtr],
            );
        }
    }

    fn instrumentation_is_shareable(&self, _trace: &Trace) -> bool {
        // Calls depend only on the trace; all state is touched at
        // analysis time, so clones instrument identically.
        true
    }

    fn name(&self) -> &'static str {
        "itrace"
    }
}

impl SuperTool for ITrace {
    fn reset(&mut self, _slice_num: u32) {
        self.buffer.clear();
    }

    fn on_slice_end(&mut self, _slice_num: u32, shared: &SharedMem) {
        shared.append_output(&self.buffer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superpin::baseline::run_pin;
    use superpin_isa::asm::assemble;
    use superpin_vm::process::Process;

    #[test]
    fn serial_trace_follows_execution_order() {
        let program =
            assemble("main:\n li r1, 2\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n exit 0\n")
                .expect("assemble");
        let entry = program.entry();
        let pin = run_pin(Process::load(1, &program).expect("load"), ITrace::new()).expect("pin");
        let trace = ITrace::decode(pin.tool.local_buffer());
        assert_eq!(trace.len() as u64, pin.insts);
        assert_eq!(trace[0], entry);
        // Loop body visited twice.
        let loop_head = entry + 16;
        assert_eq!(trace.iter().filter(|&&pc| pc == loop_head).count(), 2);
    }

    #[test]
    fn merge_appends_in_slice_order() {
        let shared = SharedMem::new();
        let mut slice1 = ITrace::new();
        slice1.reset(1);
        slice1.buffer.extend_from_slice(&1u64.to_le_bytes());
        slice1.on_slice_end(1, &shared);
        let mut slice2 = ITrace::new();
        slice2.reset(2);
        slice2.buffer.extend_from_slice(&2u64.to_le_bytes());
        slice2.on_slice_end(2, &shared);
        assert_eq!(ITrace::merged_trace(&shared), vec![1, 2]);
    }
}

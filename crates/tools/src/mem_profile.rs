//! Load/store profiling via an auto-merged shared area.
//!
//! Demonstrates `SP_CreateSharedArea`'s *automatic* merge mode: the tool
//! never writes a merge function for its counters — it hands its local
//! words to the area and [`superpin::AutoMerge::Add`] combines them.

use superpin::{AreaId, AutoMerge, SharedMem, SuperTool};
use superpin_dbi::{IArg, IPoint, Inserter, Pintool, Trace};

/// Aggregated memory-operation totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemProfileTotals {
    /// Load instructions executed.
    pub loads: u64,
    /// Store instructions executed.
    pub stores: u64,
    /// Bytes read by loads.
    pub bytes_read: u64,
    /// Bytes written by stores.
    pub bytes_written: u64,
}

/// Counts loads, stores, and bytes moved.
#[derive(Clone, Debug)]
pub struct MemProfile {
    totals: MemProfileTotals,
    area: AreaId,
}

impl MemProfile {
    /// Creates the tool with an [`AutoMerge::Add`] area of four words.
    pub fn new(shared: &SharedMem) -> MemProfile {
        MemProfile {
            totals: MemProfileTotals::default(),
            area: shared.create_area(4, AutoMerge::Add),
        }
    }

    /// Slice-local totals.
    pub fn local_totals(&self) -> MemProfileTotals {
        self.totals
    }

    /// Merged totals from the shared area.
    pub fn merged_totals(&self, shared: &SharedMem) -> MemProfileTotals {
        let area = shared.area(self.area);
        MemProfileTotals {
            loads: area.read(0),
            stores: area.read(1),
            bytes_read: area.read(2),
            bytes_written: area.read(3),
        }
    }
}

impl Pintool for MemProfile {
    fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
        for iref in trace.insts() {
            if iref.inst.is_mem_read() || iref.inst.is_mem_write() {
                inserter.insert_call(
                    iref.addr,
                    IPoint::Before,
                    |tool, ctx, _| {
                        let size = ctx.arg(0);
                        if ctx.arg(1) == 1 {
                            tool.totals.stores += 1;
                            tool.totals.bytes_written += size;
                        } else {
                            tool.totals.loads += 1;
                            tool.totals.bytes_read += size;
                        }
                    },
                    vec![IArg::MemSize, IArg::IsMemWrite],
                );
            }
        }
    }

    fn instrumentation_is_shareable(&self, _trace: &Trace) -> bool {
        // Calls depend only on the trace; all state is touched at
        // analysis time, so clones instrument identically.
        true
    }

    fn name(&self) -> &'static str {
        "mem-profile"
    }
}

impl SuperTool for MemProfile {
    fn reset(&mut self, _slice_num: u32) {
        self.totals = MemProfileTotals::default();
    }

    fn on_slice_end(&mut self, _slice_num: u32, shared: &SharedMem) {
        // Automatic merge: hand the local words to the Add-mode area.
        shared.area(self.area).merge_locals(&[
            self.totals.loads,
            self.totals.stores,
            self.totals.bytes_read,
            self.totals.bytes_written,
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superpin::baseline::run_pin;
    use superpin_isa::asm::assemble;
    use superpin_vm::process::Process;

    #[test]
    fn counts_loads_and_stores_with_widths() {
        let program = assemble(
            r#"
            .data
            buf: .word 1, 2
            .text
            main:
                la  r2, buf
                ld  r3, 0(r2)
                ldw r4, 8(r2)
                stb r3, 1(r2)
                st  r4, 8(r2)
                exit 0
            "#,
        )
        .expect("assemble");
        let shared = SharedMem::new();
        let pin = run_pin(
            Process::load(1, &program).expect("load"),
            MemProfile::new(&shared),
        )
        .expect("pin");
        let totals = pin.tool.local_totals();
        assert_eq!(totals.loads, 2);
        assert_eq!(totals.stores, 2);
        assert_eq!(totals.bytes_read, 8 + 4);
        assert_eq!(totals.bytes_written, 1 + 8);
    }

    #[test]
    fn auto_merge_adds_slices() {
        let shared = SharedMem::new();
        let mut slice1 = MemProfile::new(&shared);
        slice1.reset(1);
        slice1.totals = MemProfileTotals {
            loads: 1,
            stores: 2,
            bytes_read: 8,
            bytes_written: 16,
        };
        slice1.on_slice_end(1, &shared);
        let mut slice2 = slice1.clone();
        slice2.reset(2);
        slice2.totals.loads = 9;
        slice2.on_slice_end(2, &shared);
        let merged = slice2.merged_totals(&shared);
        assert_eq!(merged.loads, 10);
        assert_eq!(merged.stores, 2);
        assert_eq!(merged.bytes_written, 16);
    }
}

//! Instruction-counting tools (paper §5.1).
//!
//! "Two versions of the traditional icount pintool are shipped with Pin.
//! The first version, icount1, instruments the application at the
//! granularity of an instruction. ... An optimized version of this
//! Pintool is called icount2, which operates at a basic-block
//! granularity."

use superpin::{AreaId, AutoMerge, SharedMem, SuperTool};
use superpin_dbi::{IPoint, Inserter, Pintool, Trace};

/// `icount1`: a counter increment after every instruction.
#[derive(Clone, Debug)]
pub struct ICount1 {
    /// Slice-local count (`icount` in the paper's listing).
    count: u64,
    area: AreaId,
}

impl ICount1 {
    /// Creates the tool, allocating its shared total in `shared`
    /// (`SP_CreateSharedArea`).
    pub fn new(shared: &SharedMem) -> ICount1 {
        ICount1 {
            count: 0,
            area: shared.create_area(1, AutoMerge::Manual),
        }
    }

    /// The slice-local (or, under plain Pin, global) count.
    pub fn local_count(&self) -> u64 {
        self.count
    }

    /// The merged total ("Total Count" in the paper's Fini).
    pub fn total(&self, shared: &SharedMem) -> u64 {
        shared.area(self.area).read(0)
    }
}

impl Pintool for ICount1 {
    fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
        for iref in trace.insts() {
            inserter.insert_call(
                iref.addr,
                IPoint::Before,
                |tool, _, _| tool.count += 1,
                vec![],
            );
        }
    }

    fn instrumentation_is_shareable(&self, _trace: &Trace) -> bool {
        // Calls depend only on the trace; all state is touched at
        // analysis time, so clones instrument identically.
        true
    }

    fn name(&self) -> &'static str {
        "icount1"
    }
}

impl SuperTool for ICount1 {
    fn reset(&mut self, _slice_num: u32) {
        self.count = 0;
    }

    fn on_slice_end(&mut self, _slice_num: u32, shared: &SharedMem) {
        shared.area(self.area).add(0, self.count);
    }
}

/// `icount2`: one counter increment per basic block, adding the block's
/// instruction count — the SuperPin version of the paper's Figure 2.
#[derive(Clone, Debug)]
pub struct ICount2 {
    count: u64,
    area: AreaId,
}

impl ICount2 {
    /// Creates the tool, allocating its shared total in `shared`.
    pub fn new(shared: &SharedMem) -> ICount2 {
        ICount2 {
            count: 0,
            area: shared.create_area(1, AutoMerge::Manual),
        }
    }

    /// The slice-local (or, under plain Pin, global) count.
    pub fn local_count(&self) -> u64 {
        self.count
    }

    /// The merged total.
    pub fn total(&self, shared: &SharedMem) -> u64 {
        shared.area(self.area).read(0)
    }
}

impl Pintool for ICount2 {
    fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
        for bbl in trace.bbls() {
            let n = bbl.num_insts() as u64;
            inserter.insert_call(
                bbl.head_addr(),
                IPoint::Before,
                move |tool, _, _| tool.count += n,
                vec![],
            );
        }
    }

    fn instrumentation_is_shareable(&self, _trace: &Trace) -> bool {
        // Calls depend only on the trace; all state is touched at
        // analysis time, so clones instrument identically.
        true
    }

    fn name(&self) -> &'static str {
        "icount2"
    }
}

impl SuperTool for ICount2 {
    /// The paper's `ToolReset`.
    fn reset(&mut self, _slice_num: u32) {
        self.count = 0;
    }

    /// The paper's `Merge`: `*sharedData += icount`.
    fn on_slice_end(&mut self, _slice_num: u32, shared: &SharedMem) {
        shared.area(self.area).add(0, self.count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superpin::baseline::{run_native, run_pin};
    use superpin_isa::asm::assemble;
    use superpin_vm::process::Process;

    const SRC: &str = "main:\n li r1, 300\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n exit 0\n";

    fn process() -> Process {
        Process::load(1, &assemble(SRC).expect("assemble")).expect("load")
    }

    #[test]
    fn icount1_matches_ground_truth_under_pin() {
        let shared = SharedMem::new();
        let native = run_native(process()).expect("native");
        let pin = run_pin(process(), ICount1::new(&shared)).expect("pin");
        assert_eq!(pin.tool.local_count(), native.insts);
    }

    #[test]
    fn icount2_matches_icount1_output() {
        // "While the output of both tools will be identical, the icount2
        // tool will have much lower overhead."
        let shared = SharedMem::new();
        let pin1 = run_pin(process(), ICount1::new(&shared)).expect("pin1");
        let pin2 = run_pin(process(), ICount2::new(&shared)).expect("pin2");
        assert_eq!(pin1.tool.local_count(), pin2.tool.local_count());
        assert!(
            pin2.cycles < pin1.cycles,
            "icount2 ({}) must be cheaper than icount1 ({})",
            pin2.cycles,
            pin1.cycles
        );
    }

    #[test]
    fn merge_accumulates_into_shared_area() {
        let shared = SharedMem::new();
        let mut tool = ICount2::new(&shared);
        tool.count = 41;
        tool.on_slice_end(1, &shared);
        tool.reset(2);
        assert_eq!(tool.local_count(), 0);
        tool.count = 1;
        tool.on_slice_end(2, &shared);
        assert_eq!(tool.total(&shared), 42);
    }
}

//! Dynamic instruction-mix profiling (Pin's `insmix` shape).

use superpin::{AreaId, AutoMerge, SharedMem, SuperTool};
use superpin_dbi::{IPoint, Inserter, Pintool, Trace};
use superpin_isa::Inst;

/// Instruction categories tracked by [`InsMix`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MixCategory {
    /// Register ALU, immediates, and moves.
    Alu,
    /// Loads.
    Load,
    /// Stores.
    Store,
    /// Conditional branches.
    Branch,
    /// Calls, returns, and jumps.
    ControlTransfer,
    /// System calls.
    Syscall,
    /// `nop` / `halt`.
    Other,
}

impl MixCategory {
    /// All categories in table order.
    pub const ALL: [MixCategory; 7] = [
        MixCategory::Alu,
        MixCategory::Load,
        MixCategory::Store,
        MixCategory::Branch,
        MixCategory::ControlTransfer,
        MixCategory::Syscall,
        MixCategory::Other,
    ];

    /// Classifies an instruction.
    pub fn of(inst: Inst) -> MixCategory {
        match inst {
            Inst::Alu { .. } | Inst::AluImm { .. } | Inst::Li { .. } | Inst::Mov { .. } => {
                MixCategory::Alu
            }
            Inst::Ld { .. } => MixCategory::Load,
            Inst::St { .. } => MixCategory::Store,
            Inst::Branch { .. } => MixCategory::Branch,
            Inst::Jmp { .. } | Inst::Jal { .. } | Inst::Jalr { .. } => MixCategory::ControlTransfer,
            Inst::Syscall => MixCategory::Syscall,
            Inst::Halt | Inst::Nop => MixCategory::Other,
        }
    }

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            MixCategory::Alu => "alu",
            MixCategory::Load => "load",
            MixCategory::Store => "store",
            MixCategory::Branch => "branch",
            MixCategory::ControlTransfer => "control",
            MixCategory::Syscall => "syscall",
            MixCategory::Other => "other",
        }
    }

    fn index(self) -> usize {
        MixCategory::ALL
            .iter()
            .position(|&c| c == self)
            .expect("category is in ALL")
    }
}

/// Per-category dynamic instruction counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MixCounts {
    counts: [u64; 7],
}

impl MixCounts {
    /// Count for one category.
    pub fn get(&self, category: MixCategory) -> u64 {
        self.counts[category.index()]
    }

    /// Total instructions across categories.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of the total in `category` (0 if empty).
    pub fn fraction(&self, category: MixCategory) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(category) as f64 / total as f64
        }
    }
}

/// Counts executed instructions per category. Classification happens at
/// instrumentation time (one constant-argument call per instruction), so
/// the analysis routine is branch-free.
#[derive(Clone, Debug)]
pub struct InsMix {
    local: MixCounts,
    area: AreaId,
}

impl InsMix {
    /// Creates the tool with an auto-merged shared area (one word per
    /// category).
    pub fn new(shared: &SharedMem) -> InsMix {
        InsMix {
            local: MixCounts::default(),
            area: shared.create_area(MixCategory::ALL.len(), AutoMerge::Add),
        }
    }

    /// Slice-local counts.
    pub fn local_counts(&self) -> MixCounts {
        self.local
    }

    /// Merged counts from shared memory.
    pub fn merged_counts(&self, shared: &SharedMem) -> MixCounts {
        let area = shared.area(self.area);
        let mut counts = MixCounts::default();
        for (i, slot) in counts.counts.iter_mut().enumerate() {
            *slot = area.read(i);
        }
        counts
    }
}

impl Pintool for InsMix {
    fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
        for iref in trace.insts() {
            let index = MixCategory::of(iref.inst).index();
            inserter.insert_call(
                iref.addr,
                IPoint::Before,
                move |tool, _, _| tool.local.counts[index] += 1,
                vec![],
            );
        }
    }

    fn instrumentation_is_shareable(&self, _trace: &Trace) -> bool {
        // Calls depend only on the trace; all state is touched at
        // analysis time, so clones instrument identically.
        true
    }

    fn name(&self) -> &'static str {
        "insmix"
    }
}

impl SuperTool for InsMix {
    fn reset(&mut self, _slice_num: u32) {
        self.local = MixCounts::default();
    }

    fn on_slice_end(&mut self, _slice_num: u32, shared: &SharedMem) {
        shared.area(self.area).merge_locals(&self.local.counts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superpin::baseline::{run_native, run_pin};
    use superpin_isa::asm::assemble;
    use superpin_vm::process::Process;

    #[test]
    fn classification_covers_every_instruction() {
        use superpin_isa::{AluOp, BranchKind, MemWidth, Reg};
        let cases = [
            (Inst::Nop, MixCategory::Other),
            (
                Inst::Alu {
                    op: AluOp::Add,
                    rd: Reg::R1,
                    rs1: Reg::R2,
                    rs2: Reg::R3,
                },
                MixCategory::Alu,
            ),
            (
                Inst::Li {
                    rd: Reg::R1,
                    imm: 1,
                },
                MixCategory::Alu,
            ),
            (
                Inst::Ld {
                    rd: Reg::R1,
                    base: Reg::R2,
                    offset: 0,
                    width: MemWidth::D,
                },
                MixCategory::Load,
            ),
            (
                Inst::St {
                    rs: Reg::R1,
                    base: Reg::R2,
                    offset: 0,
                    width: MemWidth::D,
                },
                MixCategory::Store,
            ),
            (
                Inst::Branch {
                    kind: BranchKind::Eq,
                    rs1: Reg::R1,
                    rs2: Reg::R2,
                    target: 0,
                },
                MixCategory::Branch,
            ),
            (Inst::Jmp { target: 0 }, MixCategory::ControlTransfer),
            (Inst::Syscall, MixCategory::Syscall),
        ];
        for (inst, want) in cases {
            assert_eq!(MixCategory::of(inst), want, "{inst}");
        }
    }

    #[test]
    fn mix_totals_match_dynamic_count() {
        let program = assemble(
            r#"
            .data
            buf: .space 64
            .text
            main:
                la  r2, buf
                li  r1, 20
            loop:
                ld  r3, 0(r2)
                addi r3, r3, 1
                st  r3, 0(r2)
                subi r1, r1, 1
                bne r1, r0, loop
                exit 0
            "#,
        )
        .expect("assemble");
        let native = run_native(Process::load(1, &program).expect("load")).expect("native");
        let shared = SharedMem::new();
        let pin = run_pin(
            Process::load(1, &program).expect("load"),
            InsMix::new(&shared),
        )
        .expect("pin");
        let mix = pin.tool.local_counts();
        assert_eq!(mix.total(), native.insts);
        assert_eq!(mix.get(MixCategory::Load), 20);
        assert_eq!(mix.get(MixCategory::Store), 20);
        assert_eq!(mix.get(MixCategory::Branch), 20);
        assert_eq!(mix.get(MixCategory::Syscall), 1);
        assert!(mix.fraction(MixCategory::Alu) > 0.3);
    }

    #[test]
    fn auto_merge_accumulates_across_slices() {
        let shared = SharedMem::new();
        let mut slice1 = InsMix::new(&shared);
        slice1.reset(1);
        slice1.local.counts[MixCategory::Load.index()] = 4;
        slice1.on_slice_end(1, &shared);
        let mut slice2 = slice1.clone();
        slice2.reset(2);
        slice2.local.counts[MixCategory::Load.index()] = 6;
        slice2.on_slice_end(2, &shared);
        let merged = slice2.merged_counts(&shared);
        assert_eq!(merged.get(MixCategory::Load), 10);
    }
}

//! `spinlint` — static lints over superpin programs.
//!
//! Runs the `superpin-analysis` lint suite (undefined register reads,
//! unreachable blocks, fall-off-end, stack imbalance, dead stores)
//! over assembly files or generated workloads and prints the findings
//! compiler-style.
//!
//! ```text
//! spinlint prog.s another.s      # lint assembly source files
//! spinlint --workload gcc        # lint one generated workload
//! spinlint --all-workloads       # lint the whole catalog
//! ```
//!
//! Exit status: 0 if every linted program is free of errors and
//! warnings (info findings are advisory), 1 otherwise, 2 on usage or
//! input errors.

use std::process::ExitCode;

use superpin_analysis::{run_lints, LintReport, Severity};
use superpin_isa::{asm, Program};
use superpin_workloads::{catalog, find, Scale};

const USAGE: &str = "\
usage: spinlint [options] [file.s ...]
  <file.s>            lint assembly source files
  --workload <name>   lint the generated workload <name>
  --all-workloads     lint every workload in the catalog
  --scale <s>         workload scale: tiny | small | medium | large (default tiny)
  --input <n>         workload input id (default 0)
  --quiet             suppress info-severity findings
  --help              show this help";

struct Options {
    files: Vec<String>,
    workloads: Vec<String>,
    all_workloads: bool,
    scale: Scale,
    input: u64,
    quiet: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        files: Vec::new(),
        workloads: Vec::new(),
        all_workloads: false,
        scale: Scale::Tiny,
        input: 0,
        quiet: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--workload" => {
                let name = iter.next().ok_or("--workload needs a name")?;
                options.workloads.push(name.clone());
            }
            "--all-workloads" => options.all_workloads = true,
            "--scale" => {
                options.scale = match iter.next().map(String::as_str) {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("medium") => Scale::Medium,
                    Some("large") => Scale::Large,
                    Some(other) => return Err(format!("unknown scale `{other}`")),
                    None => return Err("--scale needs a value".to_owned()),
                };
            }
            "--input" => {
                let raw = iter.next().ok_or("--input needs a value")?;
                options.input = raw.parse().map_err(|_| format!("bad input id `{raw}`"))?;
            }
            "--quiet" => options.quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            file => options.files.push(file.to_owned()),
        }
    }
    if options.files.is_empty() && options.workloads.is_empty() && !options.all_workloads {
        return Err("nothing to lint".to_owned());
    }
    Ok(options)
}

/// Lints one program; returns true if it is clean of errors/warnings.
fn lint_one(name: &str, program: &Program, quiet: bool) -> bool {
    let report = match run_lints(program) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("{name}: analysis failed: {e}");
            return false;
        }
    };
    print_report(name, &report, quiet);
    report.is_clean()
}

fn print_report(name: &str, report: &LintReport, quiet: bool) {
    let mut shown = 0usize;
    for finding in report.findings() {
        if quiet && finding.severity() == Severity::Info {
            continue;
        }
        println!("{name}: {finding}");
        shown += 1;
    }
    let suppressed = report.findings().len() - shown;
    let status = if report.is_clean() { "clean" } else { "DIRTY" };
    println!(
        "{name}: {} — {} error(s), {} warning(s), {} info ({} shown)",
        status,
        report.errors(),
        report.warnings(),
        report.infos(),
        report.findings().len() - suppressed,
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            if message.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("spinlint: {message}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut all_clean = true;
    for path in &options.files {
        let source = match std::fs::read_to_string(path) {
            Ok(source) => source,
            Err(e) => {
                eprintln!("spinlint: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match asm::assemble(&source) {
            Ok(program) => all_clean &= lint_one(path, &program, options.quiet),
            Err(e) => {
                eprintln!("spinlint: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let mut specs = Vec::new();
    if options.all_workloads {
        specs.extend(catalog());
    } else {
        for name in &options.workloads {
            match find(name) {
                Some(spec) => specs.push(spec),
                None => {
                    eprintln!(
                        "spinlint: unknown workload `{name}` (try one of: {})",
                        catalog()
                            .iter()
                            .map(|s| s.name)
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    return ExitCode::from(2);
                }
            }
        }
    }
    for spec in specs {
        let program = spec.build_with_input(options.scale, options.input);
        all_clean &= lint_one(spec.name, &program, options.quiet);
    }

    if all_clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! `spinlint` — static lints over superpin programs.
//!
//! Runs the `superpin-analysis` lint suite (undefined register reads,
//! unreachable blocks, fall-off-end, stack imbalance, dead stores)
//! over assembly files or generated workloads and prints the findings
//! compiler-style. With `--whole-program` the interprocedural passes
//! run too: unreachable functions, indirect transfers whose target set
//! cannot be statically bounded, and self-modifying code overlapping a
//! hot loop.
//!
//! ```text
//! spinlint prog.s another.s          # lint assembly source files
//! spinlint --workload gcc            # lint one generated workload
//! spinlint --all-workloads           # lint the whole catalog
//! spinlint --whole-program --all-workloads --emit-json lint.json
//! ```
//!
//! Exit status: 0 if every linted program is free of errors and
//! warnings (info findings are advisory), 1 otherwise, 2 on usage or
//! input errors. Error-severity findings always force a nonzero exit,
//! so CI can gate on the catalog staying lint-clean.

use std::fmt::Write as _;
use std::process::ExitCode;

use superpin_analysis::{run_lints, run_whole_program_lints, LintReport, Severity};
use superpin_isa::{asm, Program};
use superpin_workloads::{catalog, find, Scale};

const USAGE: &str = "\
usage: spinlint [options] [file.s ...]
  <file.s>            lint assembly source files
  --workload <name>   lint the generated workload <name>
  --all-workloads     lint every workload in the catalog
  --whole-program     also run interprocedural lints (call-graph
                      reachability, indirect-target resolution, SMC)
  --scale <s>         workload scale: tiny | small | medium | large (default tiny)
  --input <n>         workload input id (default 0)
  --emit-json <path>  write all findings as JSON to <path> ('-' = stdout)
  --quiet             suppress info-severity findings
  --help              show this help";

struct Options {
    files: Vec<String>,
    workloads: Vec<String>,
    all_workloads: bool,
    whole_program: bool,
    scale: Scale,
    input: u64,
    emit_json: Option<String>,
    quiet: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        files: Vec::new(),
        workloads: Vec::new(),
        all_workloads: false,
        whole_program: false,
        scale: Scale::Tiny,
        input: 0,
        emit_json: None,
        quiet: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--workload" => {
                let name = iter.next().ok_or("--workload needs a name")?;
                options.workloads.push(name.clone());
            }
            "--all-workloads" => options.all_workloads = true,
            "--whole-program" => options.whole_program = true,
            "--scale" => {
                options.scale = match iter.next().map(String::as_str) {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("medium") => Scale::Medium,
                    Some("large") => Scale::Large,
                    Some(other) => return Err(format!("unknown scale `{other}`")),
                    None => return Err("--scale needs a value".to_owned()),
                };
            }
            "--input" => {
                let raw = iter.next().ok_or("--input needs a value")?;
                options.input = raw.parse().map_err(|_| format!("bad input id `{raw}`"))?;
            }
            "--emit-json" => {
                let path = iter.next().ok_or("--emit-json needs a path")?;
                options.emit_json = Some(path.clone());
            }
            "--quiet" => options.quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            file => options.files.push(file.to_owned()),
        }
    }
    if options.files.is_empty() && options.workloads.is_empty() && !options.all_workloads {
        return Err("nothing to lint".to_owned());
    }
    Ok(options)
}

/// Lints one program; `None` means the analysis itself failed.
fn lint_one(name: &str, program: &Program, options: &Options) -> Option<LintReport> {
    let result = if options.whole_program {
        run_whole_program_lints(program)
    } else {
        run_lints(program)
    };
    match result {
        Ok(report) => {
            print_report(name, &report, options.quiet);
            Some(report)
        }
        Err(e) => {
            eprintln!("{name}: analysis failed: {e}");
            None
        }
    }
}

fn print_report(name: &str, report: &LintReport, quiet: bool) {
    let mut shown = 0usize;
    for finding in report.findings() {
        if quiet && finding.severity() == Severity::Info {
            continue;
        }
        println!("{name}: {finding}");
        shown += 1;
    }
    let suppressed = report.findings().len() - shown;
    let status = if report.is_clean() { "clean" } else { "DIRTY" };
    println!(
        "{name}: {} — {} error(s), {} warning(s), {} info ({} shown)",
        status,
        report.errors(),
        report.warnings(),
        report.infos(),
        report.findings().len() - suppressed,
    );
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes every report (the workspace's dependency policy has no
/// JSON crate; the records are flat, so a hand-rolled emitter keeps the
/// output machine-readable without a new dependency).
fn reports_to_json(reports: &[(String, LintReport)], whole_program: bool) -> String {
    let mut total_errors = 0usize;
    let mut total_warnings = 0usize;
    let mut out = String::from("{\"programs\":[");
    for (i, (name, report)) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        total_errors += report.errors();
        total_warnings += report.warnings();
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"errors\":{},\"warnings\":{},\"infos\":{},\"clean\":{},\"findings\":[",
            json_escape(name),
            report.errors(),
            report.warnings(),
            report.infos(),
            report.is_clean(),
        );
        for (j, finding) in report.findings().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"kind\":\"{}\",\"severity\":\"{}\",\"addr\":{},\"message\":\"{}\"}}",
                finding.kind.slug(),
                finding.severity(),
                finding.addr,
                json_escape(&finding.message),
            );
        }
        out.push_str("]}");
    }
    let _ = write!(
        out,
        "],\"whole_program\":{whole_program},\"total_errors\":{total_errors},\
         \"total_warnings\":{total_warnings},\"clean\":{}}}",
        total_errors == 0 && total_warnings == 0
    );
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            if message.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("spinlint: {message}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut reports: Vec<(String, LintReport)> = Vec::new();
    let mut analysis_failed = false;
    for path in &options.files {
        let source = match std::fs::read_to_string(path) {
            Ok(source) => source,
            Err(e) => {
                eprintln!("spinlint: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match asm::assemble(&source) {
            Ok(program) => match lint_one(path, &program, &options) {
                Some(report) => reports.push((path.clone(), report)),
                None => analysis_failed = true,
            },
            Err(e) => {
                eprintln!("spinlint: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let mut specs = Vec::new();
    if options.all_workloads {
        specs.extend(catalog());
    } else {
        for name in &options.workloads {
            match find(name) {
                Some(spec) => specs.push(spec),
                None => {
                    eprintln!(
                        "spinlint: unknown workload `{name}` (try one of: {})",
                        catalog()
                            .iter()
                            .map(|s| s.name)
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    return ExitCode::from(2);
                }
            }
        }
    }
    for spec in specs {
        let program = spec.build_with_input(options.scale, options.input);
        match lint_one(spec.name, &program, &options) {
            Some(report) => reports.push((spec.name.to_owned(), report)),
            None => analysis_failed = true,
        }
    }

    if let Some(path) = &options.emit_json {
        let json = reports_to_json(&reports, options.whole_program);
        if path == "-" {
            println!("{json}");
        } else if let Err(e) = superpin_replay::atomic_write(path, json.as_bytes()) {
            eprintln!("spinlint: {path}: {e}");
            return ExitCode::from(2);
        }
    }

    let all_clean = !analysis_failed && reports.iter().all(|(_, report)| report.is_clean());
    if all_clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

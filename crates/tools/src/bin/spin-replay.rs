//! `spin-replay` — record, replay, and diff SuperPin runs.
//!
//! ```text
//! spin-replay record gcc -o gcc.splog --threads 4 --chaos-seed 2 --chaos-rate 0.02
//! spin-replay replay gcc.splog --threads 1 --emit-report report.json
//! spin-replay diff gcc.splog gcc-perturbed.splog
//! ```
//!
//! `record` executes a workload live, streaming its nondeterministic
//! surface (syscall effects, epoch plans, governed admissions, the
//! fault ledger) into a versioned `.splog` log alongside the final
//! report. `replay` re-executes a run from the log alone — at any
//! `--threads` count — and verifies the replayed report field for field
//! against the recording. `diff` replays two logs in lockstep and
//! bisects their first divergence to an epoch barrier, quantum window,
//! and master instruction range. `fsck` scans any SuperPin container —
//! `.splog` recording, `SPFL` fleet log, or `SPWAL` fleet journal — and
//! prints a frame census plus an integrity verdict; `--repair`
//! truncates to the last good frame into a `<file>.salvaged` quarantine
//! copy, never touching the original.
//!
//! Exit status: 0 on success (`replay` verified / `diff` identical /
//! `fsck` clean), 1 on divergence, damage, or simulator error, 2 on
//! usage or I/O errors.

use std::process::ExitCode;
use superpin::{FailPlan, PlanKnobs, SharedMem};
use superpin_replay::fleet::{FleetLog, FLEET_MAGIC};
use superpin_replay::json::report_to_json;
use superpin_replay::log::{explain_decode_failure, scan};
use superpin_replay::wal::{
    atomic_write, salvage, FrameDamage, WAL_FRAME_COMMIT, WAL_FRAME_END, WAL_FRAME_HEADER,
    WAL_FRAME_RECORD, WAL_MAGIC,
};
use superpin_replay::{
    diff_logs, record_run, replay_run, verify_replay, DiffOutcome, ReplayLog, RunRecipe, MAGIC,
};
use superpin_tools::{ICount1, ICount2};
use superpin_workloads::Scale;

const USAGE: &str = "\
usage: spin-replay <verb> [options]

verbs:
  record <workload> -o <log.splog>   run live, write the log
  replay <log.splog>                 re-execute from the log, verify
  diff <a.splog> <b.splog>           lockstep-replay both, report the
                                     first divergence
  fsck <file> [--repair]             frame census + integrity verdict
                                     for any .splog / SPFL / SPWAL
                                     file; --repair truncates to the
                                     last good frame into
                                     <file>.salvaged

record options:
  -o <path>            output log path (required)
  -t <tool>            icount1 | icount2 (default icount1)
  --scale <s>          tiny | small | medium | large (default tiny)
  --input <n>          workload input id (default 0)
  --threads <n>        host threads (default 1)
  --spmsec <n>         timeslice in paper milliseconds (default 2000)
  --spmp <n>           max running slices (default 8)
  --chaos-seed <n>     arm fault injection with this seed
  --chaos-rate <r>     fault rate in [0,1] (default 0.01 when armed)
  --mem-budget <bytes> arm the memory governor
  --supervise          arm the slice supervisor (implied by chaos)
  --plan               install the ahead-of-time superblock plan
  --tag <str>          free-form provenance tag stored in the header

replay options:
  --threads <n>        host threads for the replay (default 1)

common options:
  --emit-report <path> write the (recorded / replayed) report as JSON
  --help               show this help";

fn fail(message: &str) -> ExitCode {
    eprintln!("spin-replay: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn parse_scale(text: &str) -> Option<Scale> {
    match text {
        "tiny" => Some(Scale::Tiny),
        "small" => Some(Scale::Small),
        "medium" => Some(Scale::Medium),
        "large" => Some(Scale::Large),
        _ => None,
    }
}

fn load_log(path: &str) -> Result<ReplayLog, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // On failure, re-scan the bytes to say *why*: a salvageable
    // truncation (kill mid-write) reads very differently from
    // corruption, and `fsck --repair` can fix the former.
    ReplayLog::decode(&bytes).map_err(|e| format!("{path}: {}", explain_decode_failure(&bytes, &e)))
}

fn write_file(path: &str, contents: &[u8]) -> Result<(), String> {
    atomic_write(path, contents).map_err(|e| format!("cannot write {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help") || args.is_empty() {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match args[0].as_str() {
        "record" => cmd_record(&args[1..]),
        "replay" => cmd_replay(&args[1..]),
        "diff" => cmd_diff(&args[1..]),
        "fsck" => cmd_fsck(&args[1..]),
        other => fail(&format!("unknown verb `{other}`")),
    }
}

struct RecordArgs {
    recipe: RunRecipe,
    out: String,
    emit_report: Option<String>,
}

fn parse_record_args(args: &[String]) -> Result<RecordArgs, String> {
    let mut workload = None;
    let mut out = None;
    let mut emit_report = None;
    let mut scale = Scale::Tiny;
    let mut input = 0u64;
    let mut tool = "icount1".to_string();
    let mut threads = 1usize;
    let mut spmsec = 2000u64;
    let mut spmp = 8usize;
    let mut chaos_seed = None;
    let mut chaos_rate = 0.01f64;
    let mut mem_budget = None;
    let mut supervise = false;
    let mut plan = false;
    let mut tag = String::new();

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |what: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value"))
        };
        match arg.as_str() {
            "-o" => out = Some(value("-o")?),
            "-t" => tool = value("-t")?,
            "--scale" => {
                let text = value("--scale")?;
                scale = parse_scale(&text).ok_or_else(|| format!("unknown scale `{text}`"))?;
            }
            "--input" => input = value("--input")?.parse().map_err(|_| "bad --input")?,
            "--threads" => threads = value("--threads")?.parse().map_err(|_| "bad --threads")?,
            "--spmsec" => spmsec = value("--spmsec")?.parse().map_err(|_| "bad --spmsec")?,
            "--spmp" => spmp = value("--spmp")?.parse().map_err(|_| "bad --spmp")?,
            "--chaos-seed" => {
                chaos_seed = Some(
                    value("--chaos-seed")?
                        .parse()
                        .map_err(|_| "bad --chaos-seed")?,
                )
            }
            "--chaos-rate" => {
                chaos_rate = value("--chaos-rate")?
                    .parse()
                    .map_err(|_| "bad --chaos-rate")?
            }
            "--mem-budget" => {
                mem_budget = Some(
                    value("--mem-budget")?
                        .parse()
                        .map_err(|_| "bad --mem-budget")?,
                )
            }
            "--supervise" => supervise = true,
            "--plan" => plan = true,
            "--tag" => tag = value("--tag")?,
            "--emit-report" => emit_report = Some(value("--emit-report")?),
            other if !other.starts_with('-') && workload.is_none() => {
                workload = Some(other.to_string());
            }
            other => return Err(format!("unknown record option `{other}`")),
        }
    }

    let workload = workload.ok_or("record needs a workload name")?;
    let out = out.ok_or("record needs -o <path>")?;
    let mut recipe = RunRecipe::standard(&workload, scale);
    recipe.input = input;
    recipe.tool = tool;
    recipe.threads = threads.max(1);
    recipe.spmsec = spmsec;
    recipe.spmp = spmp;
    recipe.chaos = chaos_seed.map(|seed| FailPlan::new(seed, chaos_rate));
    recipe.mem_budget = mem_budget;
    recipe.supervise = supervise;
    recipe.plan = plan.then(PlanKnobs::default);
    recipe.tag = tag;
    Ok(RecordArgs {
        recipe,
        out,
        emit_report,
    })
}

fn cmd_record(args: &[String]) -> ExitCode {
    let parsed = match parse_record_args(args) {
        Ok(parsed) => parsed,
        Err(message) => return fail(&message),
    };
    let shared = SharedMem::new();
    let recorded = match parsed.recipe.tool.as_str() {
        "icount1" => record_run(&parsed.recipe, ICount1::new(&shared), &shared),
        "icount2" => record_run(&parsed.recipe, ICount2::new(&shared), &shared),
        other => return fail(&format!("unknown tool `{other}`")),
    };
    let log = match recorded {
        Ok(log) => log,
        Err(err) => {
            eprintln!("spin-replay: record failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(message) = write_file(&parsed.out, &log.encode()) {
        return fail(&message);
    }
    if let Some(path) = &parsed.emit_report {
        if let Err(message) = write_file(path, report_to_json(&log.report).as_bytes()) {
            return fail(&message);
        }
    }
    println!(
        "recorded {} at threads={}: {} events, {} epochs, {} slices -> {}",
        log.recipe.name,
        log.recipe.threads,
        log.events.len(),
        log.report.epochs,
        log.report.slices.len(),
        parsed.out,
    );
    ExitCode::SUCCESS
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let mut log_path = None;
    let mut threads = 1usize;
    let mut emit_report = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threads" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => threads = n,
                None => return fail("bad --threads"),
            },
            "--emit-report" => match iter.next() {
                Some(path) => emit_report = Some(path.clone()),
                None => return fail("--emit-report needs a path"),
            },
            other if !other.starts_with('-') && log_path.is_none() => {
                log_path = Some(other.to_string());
            }
            other => return fail(&format!("unknown replay option `{other}`")),
        }
    }
    let log_path = match log_path {
        Some(path) => path,
        None => return fail("replay needs a log path"),
    };
    let log = match load_log(&log_path) {
        Ok(log) => log,
        Err(message) => return fail(&message),
    };
    let shared = SharedMem::new();
    let replayed = match log.recipe.tool.as_str() {
        "icount1" => replay_run(&log, threads.max(1), ICount1::new(&shared), &shared),
        "icount2" => replay_run(&log, threads.max(1), ICount2::new(&shared), &shared),
        other => return fail(&format!("log records unknown tool `{other}`")),
    };
    let report = match replayed {
        Ok(report) => report,
        Err(err) => {
            eprintln!("spin-replay: replay DIVERGED: {err}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &emit_report {
        if let Err(message) = write_file(path, report_to_json(&report).as_bytes()) {
            return fail(&message);
        }
    }
    match verify_replay(&log, &report) {
        None => {
            println!(
                "replay of {} verified: report identical to the recording \
                 (recorded threads={}, replayed threads={}, {} epochs)",
                log.recipe.name,
                log.recipe.threads,
                threads.max(1),
                report.epochs,
            );
            ExitCode::SUCCESS
        }
        Some(field) => {
            eprintln!("spin-replay: replay DIVERGED: first differing report field: {field}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();
    if paths.len() != 2 || args.len() != 2 {
        return fail("diff needs exactly two log paths");
    }
    let (log_a, log_b) = match (load_log(paths[0]), load_log(paths[1])) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(message), _) | (_, Err(message)) => return fail(&message),
    };
    let shared_a = SharedMem::new();
    let shared_b = SharedMem::new();
    let outcome = match (log_a.recipe.tool.as_str(), log_b.recipe.tool.as_str()) {
        ("icount1", "icount1") => diff_logs(
            &log_a,
            ICount1::new(&shared_a),
            &shared_a,
            &log_b,
            ICount1::new(&shared_b),
            &shared_b,
        ),
        ("icount1", "icount2") => diff_logs(
            &log_a,
            ICount1::new(&shared_a),
            &shared_a,
            &log_b,
            ICount2::new(&shared_b),
            &shared_b,
        ),
        ("icount2", "icount1") => diff_logs(
            &log_a,
            ICount2::new(&shared_a),
            &shared_a,
            &log_b,
            ICount1::new(&shared_b),
            &shared_b,
        ),
        ("icount2", "icount2") => diff_logs(
            &log_a,
            ICount2::new(&shared_a),
            &shared_a,
            &log_b,
            ICount2::new(&shared_b),
            &shared_b,
        ),
        (a, b) => return fail(&format!("cannot diff tools `{a}` vs `{b}`")),
    };
    match outcome {
        Ok(DiffOutcome::Identical { epochs }) => {
            println!(
                "identical: {} vs {} agree at every epoch barrier ({epochs} epochs)",
                paths[0], paths[1]
            );
            ExitCode::SUCCESS
        }
        Ok(DiffOutcome::Diverged(report)) => {
            println!("{report}");
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("spin-replay: diff failed: {err}");
            ExitCode::FAILURE
        }
    }
}

/// Writes the salvaged prefix next to the original, never over it.
fn write_quarantine(path: &str, bytes: &[u8]) -> ExitCode {
    let out = format!("{path}.salvaged");
    match atomic_write(&out, bytes) {
        Ok(()) => {
            println!("  repaired: {} byte(s) -> {out}", bytes.len());
            ExitCode::FAILURE // the original is still damaged
        }
        Err(err) => fail(&format!("cannot write {out}: {err}")),
    }
}

fn cmd_fsck(args: &[String]) -> ExitCode {
    let mut repair = false;
    let mut path = None;
    for arg in args {
        match arg.as_str() {
            "--repair" => repair = true,
            other if !other.starts_with('-') && path.is_none() => path = Some(other.to_string()),
            other => return fail(&format!("unknown fsck option `{other}`")),
        }
    }
    let Some(path) = path else {
        return fail("fsck needs a file path");
    };
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(err) => return fail(&format!("cannot read {path}: {err}")),
    };
    if bytes.starts_with(WAL_MAGIC) {
        fsck_wal(&path, &bytes, repair)
    } else if bytes.starts_with(MAGIC) {
        fsck_splog(&path, &bytes, repair)
    } else if bytes.starts_with(FLEET_MAGIC) {
        fsck_fleet(&path, &bytes, repair)
    } else {
        eprintln!(
            "spin-replay: {path}: unrecognized magic {:?} — not a .splog, SPFL, or SPWAL file",
            &bytes[..bytes.len().min(5)]
        );
        ExitCode::from(2)
    }
}

/// Census + verdict for an `SPWAL` fleet journal.
fn fsck_wal(path: &str, bytes: &[u8], repair: bool) -> ExitCode {
    let scanned = match salvage(bytes) {
        Ok(scanned) => scanned,
        Err(err) => {
            eprintln!("spin-replay: {path}: {err}");
            return ExitCode::from(2);
        }
    };
    let (mut headers, mut records, mut commits, mut ends) = (0usize, 0usize, 0usize, 0usize);
    for frame in &scanned.frames {
        match frame.kind {
            WAL_FRAME_HEADER => headers += 1,
            WAL_FRAME_RECORD => records += 1,
            WAL_FRAME_COMMIT => commits += 1,
            WAL_FRAME_END => ends += 1,
            _ => {}
        }
    }
    println!(
        "{path}: SPWAL, {} intact frame(s): {headers} header, {records} record, \
         {commits} commit, {ends} end",
        scanned.frames.len()
    );
    println!(
        "  durable prefix: {} of {} byte(s), last committed round: {}",
        scanned.committed_len,
        bytes.len(),
        scanned
            .last_committed
            .map_or_else(|| "none".to_owned(), |round| round.to_string()),
    );
    match &scanned.damage {
        None if scanned.clean_end => {
            println!("  verdict: clean (complete run, sealed with an end frame)");
            ExitCode::SUCCESS
        }
        None => {
            println!("  verdict: in-progress (no end frame yet; resumable as-is)");
            ExitCode::SUCCESS
        }
        Some(FrameDamage::Torn { offset }) => {
            println!(
                "  verdict: truncated (salvageable, last committed round {}); torn frame \
                 at byte {offset}",
                scanned
                    .last_committed
                    .map_or_else(|| "none".to_owned(), |round| round.to_string()),
            );
            if repair {
                write_quarantine(path, &bytes[..scanned.valid_len])
            } else {
                ExitCode::FAILURE
            }
        }
        Some(FrameDamage::Corrupt { offset, detail }) => {
            println!(
                "  verdict: corrupt at offset {offset} ({detail}); {} byte(s) salvageable",
                scanned.valid_len
            );
            if repair {
                write_quarantine(path, &bytes[..scanned.valid_len])
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

/// Census + verdict for a `.splog` single-run recording.
fn fsck_splog(path: &str, bytes: &[u8], repair: bool) -> ExitCode {
    let scanned = match scan(bytes) {
        Ok(scanned) => scanned,
        Err(err) => {
            eprintln!("spin-replay: {path}: {err}");
            return ExitCode::from(2);
        }
    };
    println!(
        "{path}: SPLOG, {} header, {} event, {} report frame(s), end frame {}",
        scanned.header_frames,
        scanned.event_frames,
        scanned.report_frames,
        if scanned.has_end {
            "present"
        } else {
            "missing"
        },
    );
    let whole = scanned.header_frames == 1 && scanned.report_frames == 1;
    match &scanned.damage {
        None if scanned.has_end && whole => {
            println!("  verdict: clean");
            return ExitCode::SUCCESS;
        }
        None if scanned.has_end => {
            println!("  verdict: structurally intact but not a whole recording");
            return ExitCode::FAILURE;
        }
        None => println!(
            "  verdict: truncated (salvageable: {} event frame(s) intact, end frame missing)",
            scanned.event_frames
        ),
        Some(FrameDamage::Torn { offset }) => println!(
            "  verdict: truncated mid-frame at byte {offset} (salvageable: {} event \
             frame(s) intact, last good frame ends at byte {})",
            scanned.event_frames, scanned.valid_len
        ),
        Some(FrameDamage::Corrupt { offset, detail }) => {
            println!("  verdict: corrupt at offset {offset} ({detail})");
        }
    }
    if repair {
        let mut salvaged = bytes[..scanned.valid_len].to_vec();
        if whole && !scanned.has_end {
            // Header and report both survived: sealing the prefix with
            // an end frame (type 0x04, zero length) makes it decode.
            salvaged.extend_from_slice(&[0x04, 0, 0, 0, 0]);
        }
        write_quarantine(path, &salvaged)
    } else {
        ExitCode::FAILURE
    }
}

/// Verdict for an `SPFL` fleet log (written atomically in one shot, so
/// damage means the write itself was interrupted).
fn fsck_fleet(path: &str, bytes: &[u8], repair: bool) -> ExitCode {
    match FleetLog::decode(bytes) {
        Ok(log) => {
            println!(
                "{path}: SPFL, {} event(s), {} outcome line(s)",
                log.events.len(),
                log.outcomes.len()
            );
            println!("  verdict: clean");
            ExitCode::SUCCESS
        }
        Err(err) => {
            println!("{path}: SPFL");
            println!("  verdict: undecodable ({err})");
            if repair {
                println!(
                    "  repair: SPFL logs are monolithic — re-record with \
                     `spin-serve --record` instead"
                );
            }
            ExitCode::FAILURE
        }
    }
}

//! A Shadow-Profiler-style sampling tool (paper §5).
//!
//! "An example of a SuperPin tool that uses the `SP_EndSlice` function is
//! the Shadow Profiler Pintool, which performs sampled profiling via
//! instrumented timeslices, achieving lower overhead than is attainable
//! via full instrumentation." This tool profiles only the first
//! `sample_budget` instructions of each slice, then ends the slice
//! immediately — the un-sampled remainder of the span costs nothing.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::sync::Mutex;
use superpin::{SharedMem, SuperTool};
use superpin_dbi::{IPoint, Inserter, Pintool, Trace};

/// Granularity of the sample histogram (bytes of code per bucket).
pub const BUCKET_BYTES: u64 = 64;

/// Sampling profiler that ends each slice after a fixed budget.
#[derive(Clone, Debug)]
pub struct Sampler {
    sample_budget: u64,
    sampled: u64,
    local: BTreeMap<u64, u64>,
    merged: Arc<Mutex<BTreeMap<u64, u64>>>,
    total_samples: Arc<Mutex<u64>>,
}

impl Sampler {
    /// Creates a sampler taking `sample_budget` instruction samples per
    /// slice.
    pub fn new(sample_budget: u64) -> Sampler {
        Sampler {
            sample_budget: sample_budget.max(1),
            sampled: 0,
            local: BTreeMap::new(),
            merged: Arc::new(Mutex::new(BTreeMap::new())),
            total_samples: Arc::new(Mutex::new(0)),
        }
    }

    /// Per-slice sample budget.
    pub fn sample_budget(&self) -> u64 {
        self.sample_budget
    }

    /// Merged histogram: code bucket → samples.
    pub fn merged_histogram(&self) -> BTreeMap<u64, u64> {
        self.merged.lock().expect("mutex poisoned").clone()
    }

    /// Total samples merged.
    pub fn merged_samples(&self) -> u64 {
        *self.total_samples.lock().expect("mutex poisoned")
    }
}

impl Pintool for Sampler {
    fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
        for iref in trace.insts() {
            inserter.insert_call(
                iref.addr,
                IPoint::Before,
                |tool, ctx, ctl| {
                    tool.sampled += 1;
                    *tool.local.entry(ctx.pc / BUCKET_BYTES).or_insert(0) += 1;
                    if tool.sampled >= tool.sample_budget {
                        // SP_EndSlice: "Tool instructs SuperPin to
                        // terminate this slice immediately."
                        ctl.request_stop();
                    }
                },
                vec![],
            );
        }
    }

    fn instrumentation_is_shareable(&self, _trace: &Trace) -> bool {
        // Calls depend only on the trace; all state is touched at
        // analysis time, so clones instrument identically.
        true
    }

    fn name(&self) -> &'static str {
        "sampler"
    }
}

impl SuperTool for Sampler {
    fn reset(&mut self, _slice_num: u32) {
        self.sampled = 0;
        self.local.clear();
    }

    fn on_slice_end(&mut self, _slice_num: u32, _shared: &SharedMem) {
        let mut merged = self.merged.lock().expect("mutex poisoned");
        for (&bucket, &count) in &self.local {
            *merged.entry(bucket).or_insert(0) += count;
        }
        *self.total_samples.lock().expect("mutex poisoned") += self.sampled;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superpin_dbi::{CallCtx, EngineCtl};

    #[test]
    fn budget_triggers_end_slice() {
        // Drive the analysis closure directly.
        let mut sampler = Sampler::new(3);
        sampler.reset(1);
        let ctx = CallCtx {
            pc: 0x100,
            args: &[],
        };
        for i in 0..3 {
            let mut ctl = EngineCtl::default();
            sampler.sampled += 0; // explicit: state drives the check
                                  // Reimplement the closure body to keep the test independent
                                  // of instrumentation plumbing (covered by integration tests).
            sampler.sampled += 1;
            *sampler.local.entry(ctx.pc / BUCKET_BYTES).or_insert(0) += 1;
            if sampler.sampled >= sampler.sample_budget() {
                ctl.request_stop();
            }
            assert_eq!(ctl.stop_requested(), i == 2);
        }
        let shared = SharedMem::new();
        sampler.on_slice_end(1, &shared);
        assert_eq!(sampler.merged_samples(), 3);
        assert_eq!(sampler.merged_histogram()[&(0x100 / BUCKET_BYTES)], 3);
    }

    #[test]
    fn clones_share_merged_tables() {
        let sampler = Sampler::new(5);
        let mut clone = sampler.clone();
        clone.reset(1);
        clone.sampled = 2;
        clone.local.insert(7, 2);
        clone.on_slice_end(1, &SharedMem::new());
        assert_eq!(sampler.merged_samples(), 2);
        assert_eq!(sampler.merged_histogram()[&7], 2);
    }
}

//! A data-cache simulator SuperTool (paper §5.2).
//!
//! The serial version models a direct-mapped data cache. The SuperPin
//! adaptation follows the paper's recipe for tools with cross-slice
//! dependences (§4.5):
//!
//! 1. *Assume* the first access to each cache set in a slice hits, but
//!    record the assumed line address.
//! 2. At slice end, compare each assumption with the **previous slice's
//!    final cache state** (kept in shared memory).
//! 3. Reconcile during the in-order merge: a wrong assumption converts
//!    one hit into one miss.
//!
//! Because a set's content after its first in-slice access is identical
//! under both the serial and the sliced simulation, the reconciled totals
//! are *exactly* equal to a serial run — which the tests assert.

use superpin::{AreaId, AutoMerge, SharedMem, SuperTool};
use superpin_dbi::{IArg, IPoint, Inserter, Pintool, Trace};

/// Cache geometry (direct-mapped).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DCacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl DCacheConfig {
    /// 4 KiB direct-mapped with 64-byte lines (64 sets) — small enough
    /// that conflict behaviour shows up in miniature workloads.
    pub fn small() -> DCacheConfig {
        DCacheConfig {
            size_bytes: 4 * 1024,
            line_bytes: 64,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        (self.size_bytes / self.line_bytes).max(1) as usize
    }
}

impl Default for DCacheConfig {
    fn default() -> DCacheConfig {
        DCacheConfig::small()
    }
}

/// Hit/miss totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DCacheResult {
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
}

impl DCacheResult {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in [0, 1].
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// The data-cache SuperTool.
#[derive(Clone, Debug)]
pub struct DCache {
    cfg: DCacheConfig,
    /// Resident line per set (`None` = not yet touched this slice /
    /// empty in serial mode).
    sets: Vec<Option<u64>>,
    /// First line accessed per set this slice (the §5.2 "special record
    /// of the line address containing the assumed hit").
    first_line: Vec<Option<u64>>,
    hits: u64,
    misses: u64,
    /// True once `reset` ran, i.e. the tool is running under SuperPin
    /// (`SP_Init` returned true).
    sp_mode: bool,
    hits_area: AreaId,
    misses_area: AreaId,
    /// Final cache state carried between slices: one word per set,
    /// `0` = empty, else `line + 1`.
    state_area: AreaId,
}

impl DCache {
    /// Creates the tool and its shared areas.
    pub fn new(shared: &SharedMem, cfg: DCacheConfig) -> DCache {
        let num_sets = cfg.num_sets();
        DCache {
            cfg,
            sets: vec![None; num_sets],
            first_line: vec![None; num_sets],
            hits: 0,
            misses: 0,
            sp_mode: false,
            hits_area: shared.create_area(1, AutoMerge::Manual),
            misses_area: shared.create_area(1, AutoMerge::Manual),
            state_area: shared.create_area(num_sets, AutoMerge::Manual),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> DCacheConfig {
        self.cfg
    }

    /// Slice-local (or serial-mode) totals before reconciliation.
    pub fn local_result(&self) -> DCacheResult {
        DCacheResult {
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// The merged totals from shared memory (SuperPin mode).
    pub fn merged_result(&self, shared: &SharedMem) -> DCacheResult {
        DCacheResult {
            hits: shared.area(self.hits_area).read(0),
            misses: shared.area(self.misses_area).read(0),
        }
    }

    fn set_of(&self, line: u64) -> usize {
        (line % self.cfg.num_sets() as u64) as usize
    }

    /// Simulates one data access.
    pub fn access(&mut self, addr: u64) {
        let line = addr / self.cfg.line_bytes;
        let set = self.set_of(line);
        match self.sets[set] {
            Some(resident) if resident == line => self.hits += 1,
            Some(_) => {
                self.misses += 1;
                self.sets[set] = Some(line);
            }
            None => {
                if self.sp_mode {
                    // §5.2: "We assume that the first access in a slice
                    // will be a hit ... but also make a special record of
                    // the line address containing the assumed hit."
                    self.first_line[set] = Some(line);
                    self.hits += 1;
                } else {
                    // Serial mode: a cold set is simply a miss.
                    self.misses += 1;
                }
                self.sets[set] = Some(line);
            }
        }
    }
}

impl Pintool for DCache {
    fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
        for iref in trace.insts() {
            if iref.inst.is_mem_read() || iref.inst.is_mem_write() {
                inserter.insert_call(
                    iref.addr,
                    IPoint::Before,
                    |tool, ctx, _| tool.access(ctx.arg(0)),
                    vec![IArg::MemAddr],
                );
            }
        }
    }

    fn instrumentation_is_shareable(&self, _trace: &Trace) -> bool {
        // Calls depend only on the trace; all state is touched at
        // analysis time, so clones instrument identically.
        true
    }

    fn name(&self) -> &'static str {
        "dcache"
    }
}

impl SuperTool for DCache {
    fn reset(&mut self, _slice_num: u32) {
        self.sets.fill(None);
        self.first_line.fill(None);
        self.hits = 0;
        self.misses = 0;
        self.sp_mode = true;
    }

    fn on_slice_end(&mut self, _slice_num: u32, shared: &SharedMem) {
        let state = shared.area(self.state_area);
        let mut hits = self.hits;
        let mut misses = self.misses;
        // §5.2: "when the slice completes, we compare the line of our
        // first access with the final cache state of the previous slice.
        // If they do not match, we subtract the assumed hit and add a
        // miss to our record."
        for (set, first) in self.first_line.iter().enumerate() {
            if let Some(line) = first {
                if state.read(set) != line + 1 {
                    hits -= 1;
                    misses += 1;
                }
            }
        }
        shared.area(self.hits_area).add(0, hits);
        shared.area(self.misses_area).add(0, misses);
        // Publish this slice's final state; untouched sets inherit the
        // previous slice's lines.
        for (set, resident) in self.sets.iter().enumerate() {
            if let Some(line) = resident {
                state.write(set, line + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tool() -> (DCache, SharedMem) {
        let shared = SharedMem::new();
        let cache = DCache::new(&shared, DCacheConfig::small());
        (cache, shared)
    }

    #[test]
    fn serial_mode_cold_miss_then_hit() {
        let (mut cache, _) = tool();
        cache.access(0x100);
        cache.access(0x108); // same line
        cache.access(0x100 + 4096); // conflicting line, same set
        cache.access(0x100); // conflict miss again
        let result = cache.local_result();
        assert_eq!(result.hits, 1);
        assert_eq!(result.misses, 3);
        assert!((result.miss_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn sliced_reconciliation_matches_serial() {
        // Serial reference over a fixed access stream.
        let stream: Vec<u64> = vec![
            0x100, 0x140, 0x100, 0x2100, 0x140, 0x100, 0x4100, 0x140, 0x100, 0x140,
        ];
        let (mut serial, _) = tool();
        for &addr in &stream {
            serial.access(addr);
        }
        let want = serial.local_result();

        // Sliced: split the stream at arbitrary points; each chunk is a
        // slice with assumed-hit reconciliation.
        for split in 1..stream.len() {
            let (shared_case, shared) = {
                let shared = SharedMem::new();
                (DCache::new(&shared, DCacheConfig::small()), shared)
            };
            let mut tool_template = shared_case;
            let chunks = [&stream[..split], &stream[split..]];
            for (i, chunk) in chunks.iter().enumerate() {
                let mut slice_tool = tool_template.clone();
                slice_tool.reset(i as u32 + 1);
                for &addr in *chunk {
                    slice_tool.access(addr);
                }
                slice_tool.on_slice_end(i as u32 + 1, &shared);
                tool_template = slice_tool; // template irrelevant; keep areas
            }
            let got = tool_template.merged_result(&shared);
            assert_eq!(got, want, "split at {split} diverged");
        }
    }

    #[test]
    fn first_slice_assumptions_reconcile_against_empty_cache() {
        let (mut cache, shared) = tool();
        cache.reset(1);
        cache.access(0x100);
        cache.access(0x100);
        // Locally: assumed hit + real hit.
        assert_eq!(cache.local_result().hits, 2);
        cache.on_slice_end(1, &shared);
        // Previous state is empty ⇒ the assumed hit becomes a miss.
        let merged = cache.merged_result(&shared);
        assert_eq!(merged, DCacheResult { hits: 1, misses: 1 });
    }

    #[test]
    fn correct_assumption_survives_merge() {
        let (mut slice1, shared) = tool();
        slice1.reset(1);
        slice1.access(0x100);
        slice1.on_slice_end(1, &shared);

        let mut slice2 = slice1.clone();
        slice2.reset(2);
        slice2.access(0x108); // same line as slice 1's final state
        slice2.on_slice_end(2, &shared);

        let merged = slice2.merged_result(&shared);
        // Slice 1: cold miss. Slice 2: assumed hit, confirmed.
        assert_eq!(merged, DCacheResult { hits: 1, misses: 1 });
    }

    #[test]
    fn untouched_sets_inherit_previous_state() {
        let (mut slice1, shared) = tool();
        slice1.reset(1);
        slice1.access(0x100);
        slice1.on_slice_end(1, &shared);

        // Slice 2 touches nothing; slice 3's assumption still sees slice
        // 1's state.
        let mut slice2 = slice1.clone();
        slice2.reset(2);
        slice2.on_slice_end(2, &shared);

        let mut slice3 = slice2.clone();
        slice3.reset(3);
        slice3.access(0x100);
        slice3.on_slice_end(3, &shared);

        let merged = slice3.merged_result(&shared);
        assert_eq!(merged, DCacheResult { hits: 1, misses: 1 });
    }
}

//! Fixed-width binary encoding of instructions.
//!
//! Every instruction occupies one 8-byte little-endian word except
//! [`Inst::Li`], which carries a full 64-bit immediate in a second payload
//! word (16 bytes total). The variable length is deliberate: it forces the
//! DBI layer to decode instruction streams rather than index them, just as
//! a real binary instrumentation system must.
//!
//! Word layout (little-endian byte indices):
//!
//! ```text
//! byte 0      opcode
//! byte 1      sub-operation (AluOp byte, BranchKind or MemWidth nibble)
//! byte 2      reg1 (low nibble) | reg2 (high nibble)
//! byte 3      reg3 (low nibble)
//! bytes 4-7   32-bit immediate / absolute target
//! ```

use crate::inst::{AluOp, BranchKind, Inst, MemWidth, Opcode};
use crate::reg::Reg;
use std::fmt;

/// Size of one encoding word in bytes. [`Inst::Li`] occupies two words.
pub const INST_BYTES: usize = 8;

/// Error returned by [`decode`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer than 8 bytes were available at the decode point.
    Truncated,
    /// The opcode byte does not name a valid opcode.
    BadOpcode(u8),
    /// A sub-operation field (ALU op, branch kind, memory width) is invalid.
    BadSubOp(u8),
    /// A register field is out of range.
    BadReg(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "instruction stream truncated"),
            DecodeError::BadOpcode(b) => write!(f, "invalid opcode byte {b:#04x}"),
            DecodeError::BadSubOp(b) => write!(f, "invalid sub-operation field {b:#04x}"),
            DecodeError::BadReg(b) => write!(f, "invalid register field {b:#04x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn pack(op: Opcode, sub: u8, r1: u8, r2: u8, r3: u8, imm: u32) -> u64 {
    (op as u64)
        | ((sub as u64) << 8)
        | (((r1 & 0xf) as u64) << 16)
        | (((r2 & 0xf) as u64) << 20)
        | (((r3 & 0xf) as u64) << 24)
        | ((imm as u64) << 32)
}

/// Encodes an instruction, appending its word(s) to `out`.
///
/// # Panics
///
/// Panics if a control-transfer target or immediate does not fit the
/// 32-bit encoding field. Program images produced by this crate keep code
/// below 4 GiB, so assembled programs never hit this.
pub fn encode(inst: Inst, out: &mut Vec<u8>) {
    let word = match inst {
        Inst::Nop => pack(Opcode::Nop, 0, 0, 0, 0, 0),
        Inst::Alu { op, rd, rs1, rs2 } => {
            pack(Opcode::Alu, op.to_byte(), rd.raw(), rs1.raw(), rs2.raw(), 0)
        }
        Inst::AluImm { op, rd, rs1, imm } => pack(
            Opcode::AluImm,
            op.to_byte(),
            rd.raw(),
            rs1.raw(),
            0,
            imm as u32,
        ),
        Inst::Li { rd, imm } => {
            let word = pack(Opcode::Li, 0, rd.raw(), 0, 0, 0);
            out.extend_from_slice(&word.to_le_bytes());
            out.extend_from_slice(&(imm as u64).to_le_bytes());
            return;
        }
        Inst::Mov { rd, rs } => pack(Opcode::Mov, 0, rd.raw(), rs.raw(), 0, 0),
        Inst::Ld {
            rd,
            base,
            offset,
            width,
        } => pack(
            Opcode::Ld,
            width.to_nibble(),
            rd.raw(),
            base.raw(),
            0,
            offset as u32,
        ),
        Inst::St {
            rs,
            base,
            offset,
            width,
        } => pack(
            Opcode::St,
            width.to_nibble(),
            rs.raw(),
            base.raw(),
            0,
            offset as u32,
        ),
        Inst::Jmp { target } => {
            let t = u32::try_from(target).expect("jump target exceeds 32-bit encoding field");
            pack(Opcode::Jmp, 0, 0, 0, 0, t)
        }
        Inst::Jal { rd, target } => {
            let t = u32::try_from(target).expect("call target exceeds 32-bit encoding field");
            pack(Opcode::Jal, 0, rd.raw(), 0, 0, t)
        }
        Inst::Jalr { rd, rs, offset } => {
            pack(Opcode::Jalr, 0, rd.raw(), rs.raw(), 0, offset as u32)
        }
        Inst::Branch {
            kind,
            rs1,
            rs2,
            target,
        } => {
            let t = u32::try_from(target).expect("branch target exceeds 32-bit encoding field");
            pack(Opcode::Branch, kind.to_nibble(), rs1.raw(), rs2.raw(), 0, t)
        }
        Inst::Syscall => pack(Opcode::Syscall, 0, 0, 0, 0, 0),
        Inst::Halt => pack(Opcode::Halt, 0, 0, 0, 0, 0),
    };
    out.extend_from_slice(&word.to_le_bytes());
}

fn reg_field(nibble: u8) -> Result<Reg, DecodeError> {
    Reg::try_new(nibble).ok_or(DecodeError::BadReg(nibble))
}

/// Decodes one instruction from the front of `bytes`.
///
/// Returns the instruction and the number of bytes it occupied (8 or 16).
///
/// # Errors
///
/// Returns [`DecodeError`] if the stream is truncated or any field is
/// invalid.
pub fn decode(bytes: &[u8]) -> Result<(Inst, usize), DecodeError> {
    if bytes.len() < INST_BYTES {
        return Err(DecodeError::Truncated);
    }
    let word = u64::from_le_bytes(bytes[..8].try_into().expect("length checked"));
    let op_byte = (word & 0xff) as u8;
    let sub = ((word >> 8) & 0xff) as u8;
    let r1 = ((word >> 16) & 0xf) as u8;
    let r2 = ((word >> 20) & 0xf) as u8;
    let r3 = ((word >> 24) & 0xf) as u8;
    let imm = (word >> 32) as u32;
    let opcode = Opcode::from_byte(op_byte).ok_or(DecodeError::BadOpcode(op_byte))?;
    let inst = match opcode {
        Opcode::Nop => Inst::Nop,
        Opcode::Alu => Inst::Alu {
            op: AluOp::from_byte(sub).ok_or(DecodeError::BadSubOp(sub))?,
            rd: reg_field(r1)?,
            rs1: reg_field(r2)?,
            rs2: reg_field(r3)?,
        },
        Opcode::AluImm => Inst::AluImm {
            op: AluOp::from_byte(sub).ok_or(DecodeError::BadSubOp(sub))?,
            rd: reg_field(r1)?,
            rs1: reg_field(r2)?,
            imm: imm as i32,
        },
        Opcode::Li => {
            if bytes.len() < 2 * INST_BYTES {
                return Err(DecodeError::Truncated);
            }
            let payload = u64::from_le_bytes(bytes[8..16].try_into().expect("length checked"));
            return Ok((
                Inst::Li {
                    rd: reg_field(r1)?,
                    imm: payload as i64,
                },
                2 * INST_BYTES,
            ));
        }
        Opcode::Mov => Inst::Mov {
            rd: reg_field(r1)?,
            rs: reg_field(r2)?,
        },
        Opcode::Ld => Inst::Ld {
            rd: reg_field(r1)?,
            base: reg_field(r2)?,
            offset: imm as i32,
            width: MemWidth::from_nibble(sub).ok_or(DecodeError::BadSubOp(sub))?,
        },
        Opcode::St => Inst::St {
            rs: reg_field(r1)?,
            base: reg_field(r2)?,
            offset: imm as i32,
            width: MemWidth::from_nibble(sub).ok_or(DecodeError::BadSubOp(sub))?,
        },
        Opcode::Jmp => Inst::Jmp { target: imm as u64 },
        Opcode::Jal => Inst::Jal {
            rd: reg_field(r1)?,
            target: imm as u64,
        },
        Opcode::Jalr => Inst::Jalr {
            rd: reg_field(r1)?,
            rs: reg_field(r2)?,
            offset: imm as i32,
        },
        Opcode::Branch => Inst::Branch {
            kind: BranchKind::from_nibble(sub).ok_or(DecodeError::BadSubOp(sub))?,
            rs1: reg_field(r1)?,
            rs2: reg_field(r2)?,
            target: imm as u64,
        },
        Opcode::Syscall => Inst::Syscall,
        Opcode::Halt => Inst::Halt,
    };
    Ok((inst, INST_BYTES))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(inst: Inst) {
        let mut buf = Vec::new();
        encode(inst, &mut buf);
        assert_eq!(buf.len() as u64, inst.size_bytes());
        let (decoded, len) = decode(&buf).expect("decode");
        assert_eq!(decoded, inst);
        assert_eq!(len as u64, inst.size_bytes());
    }

    #[test]
    fn round_trip_representatives() {
        round_trip(Inst::Nop);
        round_trip(Inst::Alu {
            op: AluOp::Xor,
            rd: Reg::R7,
            rs1: Reg::R8,
            rs2: Reg::R9,
        });
        round_trip(Inst::AluImm {
            op: AluOp::Add,
            rd: Reg::R1,
            rs1: Reg::SP,
            imm: -64,
        });
        round_trip(Inst::Li {
            rd: Reg::R4,
            imm: -0x1234_5678_9abc_def0,
        });
        round_trip(Inst::Mov {
            rd: Reg::FP,
            rs: Reg::SP,
        });
        round_trip(Inst::Ld {
            rd: Reg::R2,
            base: Reg::FP,
            offset: -24,
            width: MemWidth::W,
        });
        round_trip(Inst::St {
            rs: Reg::R3,
            base: Reg::SP,
            offset: 8,
            width: MemWidth::B,
        });
        round_trip(Inst::Jmp { target: 0x1040 });
        round_trip(Inst::Jal {
            rd: Reg::RA,
            target: 0x2000,
        });
        round_trip(Inst::Jalr {
            rd: Reg::RA,
            rs: Reg::R6,
            offset: 16,
        });
        round_trip(Inst::Branch {
            kind: BranchKind::Geu,
            rs1: Reg::R10,
            rs2: Reg::R11,
            target: 0x1088,
        });
        round_trip(Inst::Syscall);
        round_trip(Inst::Halt);
    }

    #[test]
    fn decode_rejects_truncation() {
        assert_eq!(decode(&[0u8; 4]), Err(DecodeError::Truncated));
        // Li needs 16 bytes.
        let mut buf = Vec::new();
        encode(
            Inst::Li {
                rd: Reg::R1,
                imm: 7,
            },
            &mut buf,
        );
        assert_eq!(decode(&buf[..8]), Err(DecodeError::Truncated));
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        let word = 0xffu64.to_le_bytes();
        assert_eq!(decode(&word), Err(DecodeError::BadOpcode(0xff)));
    }

    #[test]
    fn decode_rejects_bad_subop() {
        // ALU opcode with sub-op 13 (invalid).
        let word = (0x01u64 | (13 << 8)).to_le_bytes();
        assert_eq!(decode(&word), Err(DecodeError::BadSubOp(13)));
        // Branch with kind nibble 6 (invalid).
        let word = (0x0au64 | (6 << 8)).to_le_bytes();
        assert_eq!(decode(&word), Err(DecodeError::BadSubOp(6)));
    }

    fn arb_reg() -> impl Strategy<Value = Reg> {
        (0u8..16).prop_map(Reg::new)
    }

    fn arb_inst() -> impl Strategy<Value = Inst> {
        prop_oneof![
            Just(Inst::Nop),
            Just(Inst::Syscall),
            Just(Inst::Halt),
            (0u8..13, arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs1, rs2)| Inst::Alu {
                op: AluOp::from_byte(op).expect("valid"),
                rd,
                rs1,
                rs2
            }),
            (0u8..13, arb_reg(), arb_reg(), any::<i32>()).prop_map(|(op, rd, rs1, imm)| {
                Inst::AluImm {
                    op: AluOp::from_byte(op).expect("valid"),
                    rd,
                    rs1,
                    imm,
                }
            }),
            (arb_reg(), any::<i64>()).prop_map(|(rd, imm)| Inst::Li { rd, imm }),
            (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Inst::Mov { rd, rs }),
            (arb_reg(), arb_reg(), any::<i32>(), 0u8..4).prop_map(|(rd, base, offset, w)| {
                Inst::Ld {
                    rd,
                    base,
                    offset,
                    width: MemWidth::from_nibble(w).expect("valid"),
                }
            }),
            (arb_reg(), arb_reg(), any::<i32>(), 0u8..4).prop_map(|(rs, base, offset, w)| {
                Inst::St {
                    rs,
                    base,
                    offset,
                    width: MemWidth::from_nibble(w).expect("valid"),
                }
            }),
            any::<u32>().prop_map(|t| Inst::Jmp { target: t as u64 }),
            (arb_reg(), any::<u32>()).prop_map(|(rd, t)| Inst::Jal {
                rd,
                target: t as u64
            }),
            (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(rd, rs, offset)| Inst::Jalr {
                rd,
                rs,
                offset
            }),
            (0u8..6, arb_reg(), arb_reg(), any::<u32>()).prop_map(|(k, rs1, rs2, t)| {
                Inst::Branch {
                    kind: BranchKind::from_nibble(k).expect("valid"),
                    rs1,
                    rs2,
                    target: t as u64,
                }
            }),
        ]
    }

    proptest! {
        #[test]
        fn prop_encode_decode_round_trip(inst in arb_inst()) {
            let mut buf = Vec::new();
            encode(inst, &mut buf);
            let (decoded, len) = decode(&buf).expect("decode");
            prop_assert_eq!(decoded, inst);
            prop_assert_eq!(len as u64, inst.size_bytes());
        }

        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
            let _ = decode(&bytes);
        }
    }
}

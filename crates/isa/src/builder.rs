//! Programmatic construction of [`Program`] images.

use crate::encode::encode;
use crate::inst::{AluOp, BranchKind, Inst, MemWidth};
use crate::program::{Program, ProgramError, Section, Symbol};
use crate::reg::Reg;
use crate::{CODE_BASE, DATA_BASE};
use std::collections::HashMap;
use std::fmt;

/// Error produced by [`ProgramBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// No entry point was set and no `main` label exists.
    NoEntry,
    /// The resolved image was rejected by [`Program::from_parts`].
    Program(ProgramError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UndefinedLabel(name) => write!(f, "undefined label `{name}`"),
            BuildError::DuplicateLabel(name) => write!(f, "duplicate label `{name}`"),
            BuildError::NoEntry => write!(f, "no entry point set and no `main` label defined"),
            BuildError::Program(err) => write!(f, "invalid program image: {err}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Program(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ProgramError> for BuildError {
    fn from(err: ProgramError) -> BuildError {
        BuildError::Program(err)
    }
}

/// An instruction whose control-transfer target may still be a label.
#[derive(Clone, Debug)]
enum Pending {
    Ready(Inst),
    Jmp(String),
    Jal(Reg, String),
    Branch(BranchKind, Reg, Reg, String),
    /// `li rd, &label` — loads a symbol's absolute address.
    La(Reg, String),
}

impl Pending {
    fn size_bytes(&self) -> u64 {
        match self {
            Pending::Ready(inst) => inst.size_bytes(),
            Pending::La(..) => 16,
            _ => 8,
        }
    }
}

/// Incremental builder for [`Program`] images.
///
/// Instructions are appended in order; label references are resolved when
/// [`build`](ProgramBuilder::build) runs. Data and BSS allocations are laid
/// out sequentially from [`DATA_BASE`].
///
/// # Example
///
/// ```
/// use superpin_isa::{ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new();
/// b.label("main");
/// b.li(Reg::R1, 5);
/// b.label("loop");
/// b.subi(Reg::R1, Reg::R1, 1);
/// b.bne(Reg::R1, Reg::R0, "loop");
/// b.exit(0);
/// let program = b.build()?;
/// assert_eq!(program.entry(), superpin_isa::CODE_BASE);
/// # Ok::<(), superpin_isa::BuildError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Pending>,
    /// Byte offset of each pending instruction from the code base.
    offsets: Vec<u64>,
    cursor: u64,
    labels: HashMap<String, u64>,
    data: Vec<u8>,
    data_symbols: Vec<(String, u64)>,
    bss_len: u64,
    entry_label: Option<String>,
    dup_label: Option<String>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Defines a code label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        if self
            .labels
            .insert(name.to_owned(), CODE_BASE + self.cursor)
            .is_some()
            && self.dup_label.is_none()
        {
            self.dup_label = Some(name.to_owned());
        }
        self
    }

    /// Sets the entry point to the given label (defaults to `main`).
    pub fn entry(&mut self, label: &str) -> &mut Self {
        self.entry_label = Some(label.to_owned());
        self
    }

    /// The address the *next* emitted instruction will occupy.
    pub fn here(&self) -> u64 {
        CODE_BASE + self.cursor
    }

    /// The address of an already-defined code label, if any. Useful for
    /// building indirect-call tables in the data section.
    pub fn label_addr(&self, name: &str) -> Option<u64> {
        self.labels.get(name).copied()
    }

    /// The address the *next* data allocation will occupy.
    pub fn data_cursor(&self) -> u64 {
        DATA_BASE + self.data.len() as u64
    }

    /// Appends a raw instruction.
    pub fn inst(&mut self, inst: Inst) -> &mut Self {
        self.push(Pending::Ready(inst));
        self
    }

    fn push(&mut self, pending: Pending) {
        self.offsets.push(self.cursor);
        self.cursor += pending.size_bytes();
        self.insts.push(pending);
    }

    // --- ALU helpers ------------------------------------------------------

    /// `rd := rs1 + rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Alu {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
        })
    }

    /// `rd := rs1 - rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Alu {
            op: AluOp::Sub,
            rd,
            rs1,
            rs2,
        })
    }

    /// `rd := rs1 * rs2`.
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Alu {
            op: AluOp::Mul,
            rd,
            rs1,
            rs2,
        })
    }

    /// `rd := rs1 ^ rs2`.
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Alu {
            op: AluOp::Xor,
            rd,
            rs1,
            rs2,
        })
    }

    /// `rd := rs1 & rs2`.
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Alu {
            op: AluOp::And,
            rd,
            rs1,
            rs2,
        })
    }

    /// `rd := rs1 | rs2`.
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Alu {
            op: AluOp::Or,
            rd,
            rs1,
            rs2,
        })
    }

    /// Generic register-form ALU operation.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Alu { op, rd, rs1, rs2 })
    }

    /// `rd := rs1 + imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::AluImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm,
        })
    }

    /// `rd := rs1 - imm` (encoded as `addi` with a negated immediate).
    pub fn subi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.addi(rd, rs1, imm.wrapping_neg())
    }

    /// `rd := rs1 * imm`.
    pub fn muli(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::AluImm {
            op: AluOp::Mul,
            rd,
            rs1,
            imm,
        })
    }

    /// `rd := rs1 & imm`.
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::AluImm {
            op: AluOp::And,
            rd,
            rs1,
            imm,
        })
    }

    /// `rd := rs1 << imm`.
    pub fn shli(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::AluImm {
            op: AluOp::Shl,
            rd,
            rs1,
            imm,
        })
    }

    /// `rd := rs1 >> imm` (logical).
    pub fn shri(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::AluImm {
            op: AluOp::Shr,
            rd,
            rs1,
            imm,
        })
    }

    /// Generic immediate-form ALU operation.
    pub fn alui(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::AluImm { op, rd, rs1, imm })
    }

    /// `rd := imm` (64-bit immediate; 16-byte encoding).
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.inst(Inst::Li { rd, imm })
    }

    /// `rd := &label` — loads a symbol's absolute address (resolved at
    /// build time; works for code and data symbols).
    pub fn la(&mut self, rd: Reg, label: &str) -> &mut Self {
        self.push(Pending::La(rd, label.to_owned()));
        self
    }

    /// `rd := rs`.
    pub fn mov(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.inst(Inst::Mov { rd, rs })
    }

    // --- memory helpers ---------------------------------------------------

    /// 64-bit load: `rd := mem[base + offset]`.
    pub fn ld(&mut self, rd: Reg, base: Reg, offset: i32) -> &mut Self {
        self.inst(Inst::Ld {
            rd,
            base,
            offset,
            width: MemWidth::D,
        })
    }

    /// 64-bit store: `mem[base + offset] := rs`.
    pub fn st(&mut self, rs: Reg, base: Reg, offset: i32) -> &mut Self {
        self.inst(Inst::St {
            rs,
            base,
            offset,
            width: MemWidth::D,
        })
    }

    /// Load with explicit width.
    pub fn ld_w(&mut self, width: MemWidth, rd: Reg, base: Reg, offset: i32) -> &mut Self {
        self.inst(Inst::Ld {
            rd,
            base,
            offset,
            width,
        })
    }

    /// Store with explicit width.
    pub fn st_w(&mut self, width: MemWidth, rs: Reg, base: Reg, offset: i32) -> &mut Self {
        self.inst(Inst::St {
            rs,
            base,
            offset,
            width,
        })
    }

    // --- control flow -----------------------------------------------------

    /// Unconditional jump to a label.
    pub fn jmp(&mut self, label: &str) -> &mut Self {
        self.push(Pending::Jmp(label.to_owned()));
        self
    }

    /// Call a label, linking the return address into `ra`.
    pub fn call(&mut self, label: &str) -> &mut Self {
        self.push(Pending::Jal(Reg::RA, label.to_owned()));
        self
    }

    /// `jal` with an explicit link register.
    pub fn jal(&mut self, rd: Reg, label: &str) -> &mut Self {
        self.push(Pending::Jal(rd, label.to_owned()));
        self
    }

    /// Indirect jump through a register.
    pub fn jalr(&mut self, rd: Reg, rs: Reg, offset: i32) -> &mut Self {
        self.inst(Inst::Jalr { rd, rs, offset })
    }

    /// Return through `ra`. The link register is overwritten with the
    /// (unused) fall-through address, matching the ISA's read-then-write
    /// `jalr` semantics.
    pub fn ret(&mut self) -> &mut Self {
        self.inst(Inst::Jalr {
            rd: Reg::RA,
            rs: Reg::RA,
            offset: 0,
        })
    }

    /// Conditional branch to a label.
    pub fn branch(&mut self, kind: BranchKind, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.push(Pending::Branch(kind, rs1, rs2, label.to_owned()));
        self
    }

    /// Branch if equal.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(BranchKind::Eq, rs1, rs2, label)
    }

    /// Branch if not equal.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(BranchKind::Ne, rs1, rs2, label)
    }

    /// Branch if signed less-than.
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(BranchKind::Lt, rs1, rs2, label)
    }

    /// Branch if signed greater-or-equal.
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(BranchKind::Ge, rs1, rs2, label)
    }

    /// Branch if unsigned less-than.
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(BranchKind::Ltu, rs1, rs2, label)
    }

    /// Raw syscall instruction (caller sets up `r0`–`r5`).
    pub fn syscall(&mut self) -> &mut Self {
        self.inst(Inst::Syscall)
    }

    /// Emits the two-instruction `exit(code)` sequence using syscall 0.
    pub fn exit(&mut self, code: i64) -> &mut Self {
        // Kernel ABI: r0 = syscall number (0 = exit), r1 = exit code.
        self.li(Reg::R1, code);
        self.li(Reg::R0, 0);
        self.syscall()
    }

    /// `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.inst(Inst::Nop)
    }

    // --- data -------------------------------------------------------------

    /// Appends raw bytes to the data section under `name`; returns the
    /// symbol's absolute address.
    pub fn data_bytes(&mut self, name: &str, bytes: &[u8]) -> u64 {
        let addr = DATA_BASE + self.data.len() as u64;
        self.data.extend_from_slice(bytes);
        self.data_symbols.push((name.to_owned(), addr));
        addr
    }

    /// Appends 64-bit words to the data section under `name`; returns the
    /// symbol's absolute address.
    pub fn data_words(&mut self, name: &str, words: &[u64]) -> u64 {
        let addr = DATA_BASE + self.data.len() as u64;
        for word in words {
            self.data.extend_from_slice(&word.to_le_bytes());
        }
        self.data_symbols.push((name.to_owned(), addr));
        addr
    }

    /// Reserves `len` zero bytes after the data section under `name`;
    /// returns the symbol's absolute address.
    pub fn bss(&mut self, name: &str, len: u64) -> u64 {
        // BSS symbols are laid out after all initialized data; record the
        // running BSS offset and fix the base at build time via the data
        // length captured now. To keep addresses stable regardless of later
        // `data_*` calls, BSS is placed in its own region above data by
        // padding: we simply append zeroed data instead, which keeps one
        // contiguous region and stable addresses.
        let addr = DATA_BASE + self.data.len() as u64;
        self.data.resize(self.data.len() + len as usize, 0);
        self.bss_len += len;
        self.data_symbols.push((name.to_owned(), addr));
        addr
    }

    /// Number of instructions emitted so far.
    pub fn inst_count(&self) -> usize {
        self.insts.len()
    }

    /// Resolves labels and produces the final [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] for undefined or duplicate labels, a missing
    /// entry point, or an invalid final image.
    pub fn build(&self) -> Result<Program, BuildError> {
        if let Some(name) = &self.dup_label {
            return Err(BuildError::DuplicateLabel(name.clone()));
        }
        let resolve = |name: &str| -> Result<u64, BuildError> {
            if let Some(&addr) = self.labels.get(name) {
                return Ok(addr);
            }
            if let Some((_, addr)) = self.data_symbols.iter().find(|(n, _)| n == name) {
                return Ok(*addr);
            }
            Err(BuildError::UndefinedLabel(name.to_owned()))
        };

        let mut code = Vec::with_capacity(self.insts.len() * 8);
        for pending in &self.insts {
            let inst = match pending {
                Pending::Ready(inst) => *inst,
                Pending::Jmp(label) => Inst::Jmp {
                    target: resolve(label)?,
                },
                Pending::Jal(rd, label) => Inst::Jal {
                    rd: *rd,
                    target: resolve(label)?,
                },
                Pending::Branch(kind, rs1, rs2, label) => Inst::Branch {
                    kind: *kind,
                    rs1: *rs1,
                    rs2: *rs2,
                    target: resolve(label)?,
                },
                Pending::La(rd, label) => Inst::Li {
                    rd: *rd,
                    imm: resolve(label)? as i64,
                },
            };
            encode(inst, &mut code);
        }

        let entry_label = self.entry_label.as_deref().unwrap_or("main");
        let entry = *self.labels.get(entry_label).ok_or(BuildError::NoEntry)?;

        let mut symbols: Vec<Symbol> = self
            .labels
            .iter()
            .map(|(name, &addr)| Symbol {
                name: name.clone(),
                addr,
                section: Section::Code,
            })
            .collect();
        symbols.extend(self.data_symbols.iter().map(|(name, addr)| Symbol {
            name: name.clone(),
            addr: *addr,
            section: Section::Data,
        }));

        Ok(Program::from_parts(
            code,
            CODE_BASE,
            self.data.clone(),
            DATA_BASE,
            0,
            entry,
            symbols,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_loop_program() {
        let mut b = ProgramBuilder::new();
        b.label("main");
        b.li(Reg::R1, 5);
        b.label("loop");
        b.subi(Reg::R1, Reg::R1, 1);
        b.bne(Reg::R1, Reg::R0, "loop");
        b.exit(0);
        let program = b.build().expect("build");
        assert_eq!(program.entry(), CODE_BASE);
        // li(16) + addi(8) + bne(8) + li(16) + li(16) + syscall(8) = 72.
        assert_eq!(program.code_len(), 72);
        let insts: Vec<_> = program.instructions().map(|(_, i)| i).collect();
        assert_eq!(insts.len(), 6);
        assert!(matches!(insts[2], Inst::Branch { target, .. } if target == CODE_BASE + 16));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.label("main");
        b.jmp("nowhere");
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.label("main");
        b.nop();
        b.label("main");
        b.exit(0);
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::DuplicateLabel("main".into())
        );
    }

    #[test]
    fn missing_entry_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.label("start");
        b.exit(0);
        assert_eq!(b.build().unwrap_err(), BuildError::NoEntry);
        b.entry("start");
        assert!(b.build().is_ok());
    }

    #[test]
    fn data_and_la_resolution() {
        let mut b = ProgramBuilder::new();
        let table = b.data_words("table", &[10, 20, 30]);
        b.label("main");
        b.la(Reg::R2, "table");
        b.ld(Reg::R3, Reg::R2, 8);
        b.exit(0);
        let program = b.build().expect("build");
        assert_eq!(table, DATA_BASE);
        let (first, _) = program.decode_at(program.entry()).expect("decode");
        assert_eq!(
            first,
            Inst::Li {
                rd: Reg::R2,
                imm: DATA_BASE as i64
            }
        );
        assert_eq!(&program.data()[8..16], &20u64.to_le_bytes());
    }

    #[test]
    fn bss_allocates_zeroed_region() {
        let mut b = ProgramBuilder::new();
        let buf = b.bss("buf", 64);
        let after = b.data_bytes("tail", &[0xff]);
        b.label("main");
        b.exit(0);
        let program = b.build().expect("build");
        assert_eq!(buf, DATA_BASE);
        assert_eq!(after, DATA_BASE + 64);
        assert!(program.data()[..64].iter().all(|&byte| byte == 0));
        assert_eq!(program.data()[64], 0xff);
    }

    #[test]
    fn here_tracks_variable_length() {
        let mut b = ProgramBuilder::new();
        assert_eq!(b.here(), CODE_BASE);
        b.nop();
        assert_eq!(b.here(), CODE_BASE + 8);
        b.li(Reg::R1, 1);
        assert_eq!(b.here(), CODE_BASE + 24);
        b.la(Reg::R1, "main");
        assert_eq!(b.here(), CODE_BASE + 40);
    }
}

//! General-purpose register identifiers.

use std::fmt;

/// Number of general-purpose registers in the virtual ISA.
pub const NUM_REGS: usize = 16;

/// A general-purpose register identifier (`r0`–`r15`).
///
/// Register conventions mirror a typical RISC ABI:
///
/// * `r0` — first argument / syscall number / return value
/// * `r1`–`r5` — arguments / caller-saved scratch
/// * `r6`–`r12` — callee-saved
/// * `r13` (`ra`) — return address link register
/// * `r14` (`fp`) — frame pointer
/// * `r15` (`sp`) — stack pointer
///
/// The stack pointer is an ordinary register; SuperPin's signature
/// detection (paper §4.4) reads it to locate the top 100 stack words.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// First argument / syscall number / return value.
    pub const R0: Reg = Reg(0);
    /// Argument / caller-saved scratch register 1.
    pub const R1: Reg = Reg(1);
    /// Argument / caller-saved scratch register 2.
    pub const R2: Reg = Reg(2);
    /// Argument / caller-saved scratch register 3.
    pub const R3: Reg = Reg(3);
    /// Argument / caller-saved scratch register 4.
    pub const R4: Reg = Reg(4);
    /// Argument / caller-saved scratch register 5.
    pub const R5: Reg = Reg(5);
    /// Callee-saved register 6.
    pub const R6: Reg = Reg(6);
    /// Callee-saved register 7.
    pub const R7: Reg = Reg(7);
    /// Callee-saved register 8.
    pub const R8: Reg = Reg(8);
    /// Callee-saved register 9.
    pub const R9: Reg = Reg(9);
    /// Callee-saved register 10.
    pub const R10: Reg = Reg(10);
    /// Callee-saved register 11.
    pub const R11: Reg = Reg(11);
    /// Callee-saved register 12.
    pub const R12: Reg = Reg(12);
    /// Return-address link register (`ra`, alias for `r13`).
    pub const RA: Reg = Reg(13);
    /// Frame pointer (`fp`, alias for `r14`).
    pub const FP: Reg = Reg(14);
    /// Stack pointer (`sp`, alias for `r15`).
    pub const SP: Reg = Reg(15);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_REGS`.
    pub fn new(index: u8) -> Reg {
        assert!(
            (index as usize) < NUM_REGS,
            "register index {index} out of range"
        );
        Reg(index)
    }

    /// Creates a register from its index, returning `None` if out of range.
    pub fn try_new(index: u8) -> Option<Reg> {
        if (index as usize) < NUM_REGS {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// The register's index in the register file (0–15).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw encoded register number.
    pub fn raw(self) -> u8 {
        self.0
    }

    /// Iterates over all registers, `r0` through `r15`.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_REGS as u8).map(Reg)
    }

    /// Parses a register name: `r0`–`r15` or the aliases `ra`, `fp`, `sp`.
    pub fn parse(name: &str) -> Option<Reg> {
        match name {
            "ra" => return Some(Reg::RA),
            "fp" => return Some(Reg::FP),
            "sp" => return Some(Reg::SP),
            _ => {}
        }
        let rest = name.strip_prefix('r')?;
        let index: u8 = rest.parse().ok()?;
        Reg::try_new(index)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Reg::RA => write!(f, "ra"),
            Reg::FP => write!(f, "fp"),
            Reg::SP => write!(f, "sp"),
            Reg(n) => write!(f, "r{n}"),
        }
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reg({self})")
    }
}

impl From<Reg> for u8 {
    fn from(reg: Reg) -> u8 {
        reg.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases_map_to_expected_indices() {
        assert_eq!(Reg::RA.index(), 13);
        assert_eq!(Reg::FP.index(), 14);
        assert_eq!(Reg::SP.index(), 15);
    }

    #[test]
    fn parse_round_trips_display() {
        for reg in Reg::all() {
            let text = reg.to_string();
            assert_eq!(Reg::parse(&text), Some(reg), "failed for {text}");
        }
    }

    #[test]
    fn parse_accepts_numeric_aliases() {
        assert_eq!(Reg::parse("r15"), Some(Reg::SP));
        assert_eq!(Reg::parse("r13"), Some(Reg::RA));
    }

    #[test]
    fn parse_rejects_bad_names() {
        assert_eq!(Reg::parse("r16"), None);
        assert_eq!(Reg::parse("x1"), None);
        assert_eq!(Reg::parse(""), None);
        assert_eq!(Reg::parse("r"), None);
    }

    #[test]
    fn try_new_bounds() {
        assert!(Reg::try_new(15).is_some());
        assert!(Reg::try_new(16).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_panics_out_of_range() {
        let _ = Reg::new(16);
    }

    #[test]
    fn all_yields_each_register_once() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), NUM_REGS);
        for (i, reg) in regs.iter().enumerate() {
            assert_eq!(reg.index(), i);
        }
    }
}

//! Linked program images.

use crate::encode::{decode, DecodeError};
use crate::inst::Inst;
use std::collections::BTreeMap;
use std::fmt;

/// A named address in a [`Program`]'s symbol table.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Symbol {
    /// Symbol name as written in the source or builder.
    pub name: String,
    /// Absolute virtual address.
    pub addr: u64,
    /// Which section the symbol points into.
    pub section: Section,
}

/// Program sections.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Section {
    /// Executable code.
    Code,
    /// Initialized data.
    Data,
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Section::Code => write!(f, "code"),
            Section::Data => write!(f, "data"),
        }
    }
}

/// Error produced when constructing or inspecting a [`Program`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// The requested entry symbol does not exist.
    MissingEntry(String),
    /// An address does not fall inside the code section.
    AddrOutOfCode(u64),
    /// Instruction decoding failed at an address.
    Decode {
        /// The address whose bytes failed to decode.
        addr: u64,
        /// The underlying decode failure.
        source: DecodeError,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::MissingEntry(name) => write!(f, "entry symbol `{name}` not defined"),
            ProgramError::AddrOutOfCode(addr) => {
                write!(f, "address {addr:#x} is outside the code section")
            }
            ProgramError::Decode { addr, source } => {
                write!(f, "decode failure at {addr:#x}: {source}")
            }
        }
    }
}

impl std::error::Error for ProgramError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProgramError::Decode { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A linked executable image: encoded code, initialized data, an entry
/// point, and a symbol table.
///
/// Programs are loaded into a `superpin-vm` address space byte-for-byte;
/// the DBI layer re-decodes instructions straight out of guest memory, so
/// the image is the single source of truth.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    code: Vec<u8>,
    code_base: u64,
    data: Vec<u8>,
    data_base: u64,
    bss_len: u64,
    entry: u64,
    symbols: BTreeMap<String, Symbol>,
}

impl Program {
    /// Creates a program from raw parts. `entry` must point into the code
    /// section.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::AddrOutOfCode`] if the entry point is not a
    /// code address.
    pub fn from_parts(
        code: Vec<u8>,
        code_base: u64,
        data: Vec<u8>,
        data_base: u64,
        bss_len: u64,
        entry: u64,
        symbols: Vec<Symbol>,
    ) -> Result<Program, ProgramError> {
        let program = Program {
            code,
            code_base,
            data,
            data_base,
            bss_len,
            entry,
            symbols: symbols
                .into_iter()
                .map(|sym| (sym.name.clone(), sym))
                .collect(),
        };
        if !program.contains_code_addr(entry) {
            return Err(ProgramError::AddrOutOfCode(entry));
        }
        Ok(program)
    }

    /// The encoded code bytes.
    pub fn code(&self) -> &[u8] {
        &self.code
    }

    /// Base virtual address of the code section (conventionally
    /// [`crate::CODE_BASE`]).
    pub fn code_base(&self) -> u64 {
        self.code_base
    }

    /// Length of the code section in bytes.
    pub fn code_len(&self) -> u64 {
        self.code.len() as u64
    }

    /// The initialized data bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Base virtual address of the data section (conventionally
    /// [`crate::DATA_BASE`]).
    pub fn data_base(&self) -> u64 {
        self.data_base
    }

    /// Bytes of zero-initialized memory following the data section.
    pub fn bss_len(&self) -> u64 {
        self.bss_len
    }

    /// The entry-point address.
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// Whether `addr` falls inside the code section.
    pub fn contains_code_addr(&self, addr: u64) -> bool {
        addr >= self.code_base && addr < self.code_base + self.code.len() as u64
    }

    /// Looks up a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.get(name)
    }

    /// Iterates over all symbols in name order.
    pub fn symbols(&self) -> impl Iterator<Item = &Symbol> {
        self.symbols.values()
    }

    /// Finds the symbol with the greatest address `<= addr` in the code
    /// section — useful for attributing profile samples to functions.
    pub fn symbol_for_addr(&self, addr: u64) -> Option<&Symbol> {
        self.symbols
            .values()
            .filter(|sym| sym.section == Section::Code && sym.addr <= addr)
            .max_by_key(|sym| sym.addr)
    }

    /// Decodes the instruction at the given code address.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::AddrOutOfCode`] for addresses outside the
    /// code section, or [`ProgramError::Decode`] if the bytes do not form a
    /// valid instruction.
    pub fn decode_at(&self, addr: u64) -> Result<(Inst, u64), ProgramError> {
        if !self.contains_code_addr(addr) {
            return Err(ProgramError::AddrOutOfCode(addr));
        }
        let offset = (addr - self.code_base) as usize;
        let (inst, len) =
            decode(&self.code[offset..]).map_err(|source| ProgramError::Decode { addr, source })?;
        Ok((inst, len as u64))
    }

    /// Iterates `(addr, inst)` pairs over the whole code section.
    pub fn instructions(&self) -> Instructions<'_> {
        Instructions {
            program: self,
            addr: self.code_base,
        }
    }

    /// Counts the static instructions in the code section.
    pub fn static_inst_count(&self) -> usize {
        self.instructions().count()
    }
}

/// Iterator over `(address, instruction)` pairs; see
/// [`Program::instructions`].
#[derive(Clone, Debug)]
pub struct Instructions<'a> {
    program: &'a Program,
    addr: u64,
}

impl Iterator for Instructions<'_> {
    type Item = (u64, Inst);

    fn next(&mut self) -> Option<Self::Item> {
        let (inst, len) = self.program.decode_at(self.addr).ok()?;
        let addr = self.addr;
        self.addr += len;
        Some((addr, inst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::inst::Inst;
    use crate::reg::Reg;
    use crate::{CODE_BASE, DATA_BASE};

    fn tiny_program() -> Program {
        let mut code = Vec::new();
        encode(
            Inst::Li {
                rd: Reg::R0,
                imm: 0,
            },
            &mut code,
        );
        encode(Inst::Syscall, &mut code);
        Program::from_parts(
            code,
            CODE_BASE,
            vec![1, 2, 3],
            DATA_BASE,
            16,
            CODE_BASE,
            vec![
                Symbol {
                    name: "main".into(),
                    addr: CODE_BASE,
                    section: Section::Code,
                },
                Symbol {
                    name: "table".into(),
                    addr: DATA_BASE,
                    section: Section::Data,
                },
            ],
        )
        .expect("valid program")
    }

    #[test]
    fn entry_must_be_in_code() {
        let err = Program::from_parts(vec![], CODE_BASE, vec![], DATA_BASE, 0, CODE_BASE, vec![])
            .unwrap_err();
        assert_eq!(err, ProgramError::AddrOutOfCode(CODE_BASE));
    }

    #[test]
    fn decode_at_walks_variable_length() {
        let program = tiny_program();
        let (first, len) = program.decode_at(CODE_BASE).expect("decode first");
        assert_eq!(
            first,
            Inst::Li {
                rd: Reg::R0,
                imm: 0
            }
        );
        assert_eq!(len, 16);
        let (second, _) = program.decode_at(CODE_BASE + 16).expect("decode second");
        assert_eq!(second, Inst::Syscall);
    }

    #[test]
    fn decode_at_out_of_range() {
        let program = tiny_program();
        assert!(matches!(
            program.decode_at(0),
            Err(ProgramError::AddrOutOfCode(0))
        ));
    }

    #[test]
    fn instruction_iterator_counts() {
        let program = tiny_program();
        let instructions: Vec<(u64, Inst)> = program.instructions().collect();
        assert_eq!(instructions.len(), 2);
        assert_eq!(program.static_inst_count(), 2);
        assert_eq!(instructions[1].0, CODE_BASE + 16);
    }

    #[test]
    fn symbol_lookup() {
        let program = tiny_program();
        assert_eq!(program.symbol("main").map(|s| s.addr), Some(CODE_BASE));
        assert!(program.symbol("missing").is_none());
        let sym = program.symbol_for_addr(CODE_BASE + 16).expect("symbol");
        assert_eq!(sym.name, "main");
    }

    #[test]
    fn symbol_for_addr_ignores_data_symbols() {
        let program = tiny_program();
        // `table` is a data symbol at a higher address; it must not win.
        let sym = program.symbol_for_addr(DATA_BASE + 100);
        assert_eq!(sym.map(|s| s.name.as_str()), Some("main"));
    }
}

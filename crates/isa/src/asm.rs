//! A two-pass textual assembler for the virtual ISA.
//!
//! The syntax is deliberately small. Example:
//!
//! ```text
//! .entry main
//! .data
//! table:  .word 1, 2, 3
//! buf:    .space 64
//! .text
//! main:
//!     la   r2, table
//!     ld   r3, 8(r2)      ; 64-bit load (ldb/ldh/ldw for narrower)
//!     li   r1, 10
//! loop:
//!     subi r1, r1, 1
//!     bne  r1, r0, loop
//!     exit 0              ; pseudo: li r1, code; li r0, 0; syscall
//! ```
//!
//! Comments start with `;` or `#`. Labels end with `:` and may share a line
//! with an instruction or directive. All branch/jump targets are labels.

use crate::builder::{BuildError, ProgramBuilder};
use crate::inst::{AluOp, BranchKind, Inst, MemWidth};
use crate::program::Program;
use crate::reg::Reg;
use std::fmt;

/// Error produced by [`assemble`], carrying the 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number of the offending source line (0 for build-phase
    /// errors such as undefined labels).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl AsmError {
    fn new(line: usize, message: impl Into<String>) -> AsmError {
        AsmError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "assembly error: {}", self.message)
        } else {
            write!(f, "assembly error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for AsmError {}

impl From<BuildError> for AsmError {
    fn from(err: BuildError) -> AsmError {
        AsmError::new(0, err.to_string())
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Text,
    Data,
}

/// Assembles source text into a linked [`Program`].
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line for syntax problems, or
/// line 0 for link-phase problems (undefined labels, missing entry).
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut builder = ProgramBuilder::new();
    let mut mode = Mode::Text;
    // Data directives need a pending label (the label on the same or a
    // previous line names the allocation).
    let mut pending_data_label: Option<String> = None;
    let mut anon_data = 0usize;

    for (idx, raw_line) in source.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        let mut rest = line;
        // Consume any leading `label:` prefixes.
        while let Some(colon) = find_label_colon(rest) {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            if !is_ident(label) {
                return Err(AsmError::new(lineno, format!("invalid label `{label}`")));
            }
            match mode {
                Mode::Text => {
                    builder.label(label);
                }
                Mode::Data => pending_data_label = Some(label.to_owned()),
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        if let Some(directive) = rest.strip_prefix('.') {
            handle_directive(
                &mut builder,
                &mut mode,
                &mut pending_data_label,
                &mut anon_data,
                directive,
                lineno,
            )?;
            continue;
        }
        if mode == Mode::Data {
            return Err(AsmError::new(
                lineno,
                "instructions are not allowed in the .data section",
            ));
        }
        parse_instruction(&mut builder, rest, lineno)?;
    }

    builder.build().map_err(AsmError::from)
}

fn strip_comment(line: &str) -> &str {
    match line.find([';', '#']) {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Finds the colon terminating a leading label, if the line starts with one.
fn find_label_colon(line: &str) -> Option<usize> {
    let colon = line.find(':')?;
    let candidate = line[..colon].trim();
    if is_ident(candidate) {
        Some(colon)
    } else {
        None
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn handle_directive(
    builder: &mut ProgramBuilder,
    mode: &mut Mode,
    pending_data_label: &mut Option<String>,
    anon_data: &mut usize,
    directive: &str,
    lineno: usize,
) -> Result<(), AsmError> {
    let (name, args) = match directive.find(char::is_whitespace) {
        Some(pos) => (&directive[..pos], directive[pos..].trim()),
        None => (directive, ""),
    };
    let mut take_label = || -> String {
        pending_data_label.take().unwrap_or_else(|| {
            *anon_data += 1;
            format!(".anon{anon_data}")
        })
    };
    match name {
        "text" | "code" => {
            *mode = Mode::Text;
        }
        "data" => {
            *mode = Mode::Data;
        }
        "entry" => {
            if !is_ident(args) {
                return Err(AsmError::new(lineno, ".entry requires a label name"));
            }
            builder.entry(args);
        }
        "word" => {
            let words = parse_int_list(args, lineno)?
                .into_iter()
                .map(|v| v as u64)
                .collect::<Vec<_>>();
            let label = take_label();
            builder.data_words(&label, &words);
        }
        "byte" => {
            let bytes = parse_int_list(args, lineno)?
                .into_iter()
                .map(|v| v as u8)
                .collect::<Vec<_>>();
            let label = take_label();
            builder.data_bytes(&label, &bytes);
        }
        "space" => {
            let len = parse_int(args, lineno)?;
            if len < 0 {
                return Err(AsmError::new(lineno, ".space length must be non-negative"));
            }
            let label = take_label();
            builder.bss(&label, len as u64);
        }
        other => {
            return Err(AsmError::new(
                lineno,
                format!("unknown directive `.{other}`"),
            ));
        }
    }
    Ok(())
}

fn parse_int(text: &str, lineno: usize) -> Result<i64, AsmError> {
    let text = text.trim();
    let (negative, digits) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text),
    };
    let value = if let Some(hex) = digits
        .strip_prefix("0x")
        .or_else(|| digits.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16)
            .map_err(|_| AsmError::new(lineno, format!("invalid hexadecimal literal `{text}`")))?
    } else {
        digits
            .parse::<u64>()
            .map_err(|_| AsmError::new(lineno, format!("invalid integer literal `{text}`")))?
    };
    let value = value as i64;
    Ok(if negative {
        value.wrapping_neg()
    } else {
        value
    })
}

fn parse_int_list(text: &str, lineno: usize) -> Result<Vec<i64>, AsmError> {
    if text.trim().is_empty() {
        return Err(AsmError::new(lineno, "expected at least one value"));
    }
    text.split(',')
        .map(|part| parse_int(part, lineno))
        .collect()
}

fn parse_reg(token: &str, lineno: usize) -> Result<Reg, AsmError> {
    Reg::parse(token.trim())
        .ok_or_else(|| AsmError::new(lineno, format!("invalid register `{}`", token.trim())))
}

/// Parses a memory operand of the form `offset(base)`.
fn parse_mem_operand(token: &str, lineno: usize) -> Result<(i32, Reg), AsmError> {
    let token = token.trim();
    let open = token
        .find('(')
        .ok_or_else(|| AsmError::new(lineno, format!("expected `offset(base)`, got `{token}`")))?;
    let close = token
        .rfind(')')
        .filter(|&c| c > open)
        .ok_or_else(|| AsmError::new(lineno, format!("unbalanced parentheses in `{token}`")))?;
    let offset_text = token[..open].trim();
    let offset = if offset_text.is_empty() {
        0
    } else {
        parse_int(offset_text, lineno)? as i32
    };
    let base = parse_reg(&token[open + 1..close], lineno)?;
    Ok((offset, base))
}

fn operands(rest: &str) -> Vec<&str> {
    rest.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

fn expect_arity(ops: &[&str], want: usize, mnemonic: &str, lineno: usize) -> Result<(), AsmError> {
    if ops.len() == want {
        Ok(())
    } else {
        Err(AsmError::new(
            lineno,
            format!(
                "`{mnemonic}` expects {want} operand(s), found {}",
                ops.len()
            ),
        ))
    }
}

fn alu_op_for(mnemonic: &str) -> Option<(AluOp, bool)> {
    // Returns (op, is_immediate_form).
    let (base, imm) = match mnemonic.strip_suffix('i') {
        // `subi` is a pseudo handled separately; `slti`/`sltui` map through.
        Some(base) => (base, true),
        None => (mnemonic, false),
    };
    let op = match base {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "divu" => AluOp::Divu,
        "remu" => AluOp::Remu,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "sar" => AluOp::Sar,
        "slt" => AluOp::Slt,
        "sltu" => AluOp::Sltu,
        _ => return None,
    };
    Some((op, imm))
}

fn branch_kind_for(mnemonic: &str) -> Option<BranchKind> {
    Some(match mnemonic {
        "beq" => BranchKind::Eq,
        "bne" => BranchKind::Ne,
        "blt" => BranchKind::Lt,
        "bge" => BranchKind::Ge,
        "bltu" => BranchKind::Ltu,
        "bgeu" => BranchKind::Geu,
        _ => return None,
    })
}

fn mem_width_for(suffix: &str) -> Option<MemWidth> {
    Some(match suffix {
        "b" => MemWidth::B,
        "h" => MemWidth::H,
        "w" => MemWidth::W,
        "d" | "" => MemWidth::D,
        _ => return None,
    })
}

fn parse_instruction(
    builder: &mut ProgramBuilder,
    line: &str,
    lineno: usize,
) -> Result<(), AsmError> {
    let (mnemonic, rest) = match line.find(char::is_whitespace) {
        Some(pos) => (&line[..pos], line[pos..].trim()),
        None => (line, ""),
    };
    let ops = operands(rest);

    match mnemonic {
        "nop" => {
            expect_arity(&ops, 0, mnemonic, lineno)?;
            builder.nop();
        }
        "syscall" => {
            expect_arity(&ops, 0, mnemonic, lineno)?;
            builder.syscall();
        }
        "halt" => {
            expect_arity(&ops, 0, mnemonic, lineno)?;
            builder.inst(Inst::Halt);
        }
        "ret" => {
            expect_arity(&ops, 0, mnemonic, lineno)?;
            builder.ret();
        }
        "exit" => {
            expect_arity(&ops, 1, mnemonic, lineno)?;
            builder.exit(parse_int(ops[0], lineno)?);
        }
        "li" => {
            expect_arity(&ops, 2, mnemonic, lineno)?;
            let rd = parse_reg(ops[0], lineno)?;
            // `li rd, label` loads the label's address (same as `la`).
            if is_ident(ops[1]) && Reg::parse(ops[1]).is_none() {
                builder.la(rd, ops[1]);
            } else {
                builder.li(rd, parse_int(ops[1], lineno)?);
            }
        }
        "la" => {
            expect_arity(&ops, 2, mnemonic, lineno)?;
            let rd = parse_reg(ops[0], lineno)?;
            if !is_ident(ops[1]) {
                return Err(AsmError::new(
                    lineno,
                    format!("invalid symbol `{}`", ops[1]),
                ));
            }
            builder.la(rd, ops[1]);
        }
        "mov" => {
            expect_arity(&ops, 2, mnemonic, lineno)?;
            let rd = parse_reg(ops[0], lineno)?;
            let rs = parse_reg(ops[1], lineno)?;
            builder.mov(rd, rs);
        }
        "jmp" => {
            expect_arity(&ops, 1, mnemonic, lineno)?;
            builder.jmp(ops[0]);
        }
        "call" => {
            expect_arity(&ops, 1, mnemonic, lineno)?;
            builder.call(ops[0]);
        }
        "jal" => {
            expect_arity(&ops, 2, mnemonic, lineno)?;
            let rd = parse_reg(ops[0], lineno)?;
            builder.jal(rd, ops[1]);
        }
        "jalr" => {
            expect_arity(&ops, 2, mnemonic, lineno)?;
            let rd = parse_reg(ops[0], lineno)?;
            let (offset, rs) = parse_mem_operand(ops[1], lineno)?;
            builder.jalr(rd, rs, offset);
        }
        "subi" => {
            expect_arity(&ops, 3, mnemonic, lineno)?;
            let rd = parse_reg(ops[0], lineno)?;
            let rs1 = parse_reg(ops[1], lineno)?;
            let imm = parse_int(ops[2], lineno)? as i32;
            builder.subi(rd, rs1, imm);
        }
        _ => {
            if let Some(kind) = branch_kind_for(mnemonic) {
                expect_arity(&ops, 3, mnemonic, lineno)?;
                let rs1 = parse_reg(ops[0], lineno)?;
                let rs2 = parse_reg(ops[1], lineno)?;
                builder.branch(kind, rs1, rs2, ops[2]);
                return Ok(());
            }
            if let Some(rest_mnemonic) = mnemonic.strip_prefix("ld") {
                if let Some(width) = mem_width_for(rest_mnemonic) {
                    expect_arity(&ops, 2, mnemonic, lineno)?;
                    let rd = parse_reg(ops[0], lineno)?;
                    let (offset, base) = parse_mem_operand(ops[1], lineno)?;
                    builder.ld_w(width, rd, base, offset);
                    return Ok(());
                }
            }
            if let Some(rest_mnemonic) = mnemonic.strip_prefix("st") {
                if let Some(width) = mem_width_for(rest_mnemonic) {
                    expect_arity(&ops, 2, mnemonic, lineno)?;
                    let rs = parse_reg(ops[0], lineno)?;
                    let (offset, base) = parse_mem_operand(ops[1], lineno)?;
                    builder.st_w(width, rs, base, offset);
                    return Ok(());
                }
            }
            if let Some((op, imm_form)) = alu_op_for(mnemonic) {
                expect_arity(&ops, 3, mnemonic, lineno)?;
                let rd = parse_reg(ops[0], lineno)?;
                let rs1 = parse_reg(ops[1], lineno)?;
                if imm_form {
                    let imm = parse_int(ops[2], lineno)? as i32;
                    builder.alui(op, rd, rs1, imm);
                } else {
                    let rs2 = parse_reg(ops[2], lineno)?;
                    builder.alu(op, rd, rs1, rs2);
                }
                return Ok(());
            }
            return Err(AsmError::new(
                lineno,
                format!("unknown mnemonic `{mnemonic}`"),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CODE_BASE, DATA_BASE};

    #[test]
    fn assembles_countdown_loop() {
        let program = assemble(
            r#"
            .entry main
            main:
                li   r1, 3
            loop:
                subi r1, r1, 1
                bne  r1, r0, loop
                exit 0
            "#,
        )
        .expect("assemble");
        assert_eq!(program.entry(), CODE_BASE);
        let insts: Vec<Inst> = program.instructions().map(|(_, i)| i).collect();
        assert_eq!(insts.len(), 6);
        assert!(matches!(insts[0], Inst::Li { imm: 3, .. }));
        assert!(matches!(insts[1], Inst::AluImm { imm: -1, .. }));
    }

    #[test]
    fn assembles_data_and_memory_ops() {
        let program = assemble(
            r#"
            .data
            table: .word 7, 8, 9
            buf:   .space 32
            bytes: .byte 1, 2, 3
            .text
            main:
                la  r2, table
                ld  r3, 16(r2)
                ldw r4, 0(r2)
                stb r4, 1(r2)
                exit 0
            "#,
        )
        .expect("assemble");
        assert_eq!(program.symbol("table").map(|s| s.addr), Some(DATA_BASE));
        assert_eq!(program.symbol("buf").map(|s| s.addr), Some(DATA_BASE + 24));
        assert_eq!(
            program.symbol("bytes").map(|s| s.addr),
            Some(DATA_BASE + 56)
        );
        assert_eq!(&program.data()[16..24], &9u64.to_le_bytes());
        let insts: Vec<Inst> = program.instructions().map(|(_, i)| i).collect();
        assert!(matches!(
            insts[1],
            Inst::Ld {
                width: MemWidth::D,
                offset: 16,
                ..
            }
        ));
        assert!(matches!(
            insts[2],
            Inst::Ld {
                width: MemWidth::W,
                ..
            }
        ));
        assert!(matches!(
            insts[3],
            Inst::St {
                width: MemWidth::B,
                ..
            }
        ));
    }

    #[test]
    fn assembles_calls_and_returns() {
        let program = assemble(
            r#"
            main:
                call fn
                exit 0
            fn:
                addi r0, r0, 1
                ret
            "#,
        )
        .expect("assemble");
        let insts: Vec<Inst> = program.instructions().map(|(_, i)| i).collect();
        assert!(matches!(insts[0], Inst::Jal { rd: Reg::RA, .. }));
        assert!(matches!(
            insts[5],
            Inst::Jalr {
                rs: Reg::RA,
                offset: 0,
                ..
            }
        ));
    }

    #[test]
    fn error_reports_line_numbers() {
        let err = assemble("main:\n  bogus r1, r2\n  exit 0").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn error_on_wrong_arity() {
        let err = assemble("main:\n  add r1, r2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("expects 3"));
    }

    #[test]
    fn error_on_undefined_label_at_link_time() {
        let err = assemble("main:\n  jmp nowhere\n").unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.message.contains("nowhere"));
    }

    #[test]
    fn error_on_instruction_in_data_mode() {
        let err = assemble(".data\n  add r1, r2, r3\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn hex_and_negative_literals() {
        let program = assemble(
            r#"
            main:
                li r1, 0x10
                li r2, -16
                addi r3, r1, -0x8
                exit 0
            "#,
        )
        .expect("assemble");
        let insts: Vec<Inst> = program.instructions().map(|(_, i)| i).collect();
        assert!(matches!(insts[0], Inst::Li { imm: 16, .. }));
        assert!(matches!(insts[1], Inst::Li { imm: -16, .. }));
        assert!(matches!(insts[2], Inst::AluImm { imm: -8, .. }));
    }

    #[test]
    fn label_and_inst_on_same_line() {
        let program = assemble("main: li r1, 1\n      exit 0").expect("assemble");
        assert_eq!(program.entry(), CODE_BASE);
    }

    #[test]
    fn comments_are_ignored() {
        let program = assemble("; leading comment\nmain: exit 0 ; trailing\n# hash comment\n")
            .expect("assemble");
        assert_eq!(program.static_inst_count(), 3);
    }
}

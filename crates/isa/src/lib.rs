#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # superpin-isa
//!
//! A small, deterministic, RISC-like virtual instruction set used as the
//! binary substrate for the SuperPin reproduction.
//!
//! The original SuperPin system instruments x86 binaries. This crate plays
//! the role of "the architecture": it defines
//!
//! * a register file ([`Reg`]) of sixteen 64-bit general-purpose registers
//!   with conventional aliases (`sp`, `fp`, `ra`),
//! * an instruction set ([`Inst`]) covering ALU, memory, control transfer,
//!   and system-call operations,
//! * a fixed-width binary encoding ([`encode`]/[`decode`]) so programs live
//!   in memory as bytes, exactly as a DBI system expects,
//! * a two-pass assembler ([`asm::assemble`]) with labels and data
//!   directives, and a disassembler,
//! * a linked [`Program`] image (code + data + entry point + symbols) and a
//!   programmatic [`ProgramBuilder`].
//!
//! # Example
//!
//! ```
//! use superpin_isa::asm::assemble;
//!
//! let program = assemble(
//!     r#"
//!     .entry main
//!     main:
//!         li   r1, 10
//!         li   r2, 0
//!     loop:
//!         add  r2, r2, r1
//!         subi r1, r1, 1
//!         bne  r1, r0, loop
//!         li   r0, 0          ; exit code in r0? no: syscall number
//!         syscall             ; EXIT
//!     "#,
//! )?;
//! assert!(program.code_len() > 0);
//! # Ok::<(), superpin_isa::asm::AsmError>(())
//! ```

pub mod asm;
mod builder;
mod disasm;
mod encode;
mod inst;
mod program;
mod reg;

pub use builder::{BuildError, ProgramBuilder};
pub use disasm::disassemble;
pub use encode::{decode, encode, DecodeError, INST_BYTES};
pub use inst::{AluOp, BranchKind, Inst, MemWidth, Opcode};
pub use program::{Program, ProgramError, Section, Symbol};
pub use reg::{Reg, NUM_REGS};

/// Conventional base virtual address where program code is loaded.
pub const CODE_BASE: u64 = 0x0000_1000;

/// Conventional base virtual address for the initialized data section.
pub const DATA_BASE: u64 = 0x0010_0000;

/// Conventional initial stack top (stack grows downward).
pub const STACK_TOP: u64 = 0x7fff_f000;

/// Conventional initial program break (heap start) for the emulated kernel.
pub const HEAP_BASE: u64 = 0x0100_0000;

//! Instruction set definition.

use crate::reg::Reg;
use std::fmt;

/// Memory access width for load/store instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 1 byte.
    B,
    /// 2 bytes.
    H,
    /// 4 bytes.
    W,
    /// 8 bytes (the natural word size).
    D,
}

impl MemWidth {
    /// Number of bytes accessed.
    pub fn bytes(self) -> usize {
        match self {
            MemWidth::B => 1,
            MemWidth::H => 2,
            MemWidth::W => 4,
            MemWidth::D => 8,
        }
    }

    /// Encoded nibble value.
    pub fn to_nibble(self) -> u8 {
        match self {
            MemWidth::B => 0,
            MemWidth::H => 1,
            MemWidth::W => 2,
            MemWidth::D => 3,
        }
    }

    /// Decodes a memory width from its encoded nibble.
    pub fn from_nibble(n: u8) -> Option<MemWidth> {
        match n {
            0 => Some(MemWidth::B),
            1 => Some(MemWidth::H),
            2 => Some(MemWidth::W),
            3 => Some(MemWidth::D),
            _ => None,
        }
    }
}

impl fmt::Display for MemWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemWidth::B => "b",
            MemWidth::H => "h",
            MemWidth::W => "w",
            MemWidth::D => "d",
        };
        f.write_str(s)
    }
}

/// Comparison performed by a conditional branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if signed less-than.
    Lt,
    /// Branch if signed greater-or-equal.
    Ge,
    /// Branch if unsigned less-than.
    Ltu,
    /// Branch if unsigned greater-or-equal.
    Geu,
}

impl BranchKind {
    /// Evaluates the comparison on two register values.
    pub fn test(self, a: u64, b: u64) -> bool {
        match self {
            BranchKind::Eq => a == b,
            BranchKind::Ne => a != b,
            BranchKind::Lt => (a as i64) < (b as i64),
            BranchKind::Ge => (a as i64) >= (b as i64),
            BranchKind::Ltu => a < b,
            BranchKind::Geu => a >= b,
        }
    }

    pub(crate) fn to_nibble(self) -> u8 {
        match self {
            BranchKind::Eq => 0,
            BranchKind::Ne => 1,
            BranchKind::Lt => 2,
            BranchKind::Ge => 3,
            BranchKind::Ltu => 4,
            BranchKind::Geu => 5,
        }
    }

    pub(crate) fn from_nibble(n: u8) -> Option<BranchKind> {
        match n {
            0 => Some(BranchKind::Eq),
            1 => Some(BranchKind::Ne),
            2 => Some(BranchKind::Lt),
            3 => Some(BranchKind::Ge),
            4 => Some(BranchKind::Ltu),
            5 => Some(BranchKind::Geu),
            _ => None,
        }
    }

    /// The assembler mnemonic (`beq`, `bne`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchKind::Eq => "beq",
            BranchKind::Ne => "bne",
            BranchKind::Lt => "blt",
            BranchKind::Ge => "bge",
            BranchKind::Ltu => "bltu",
            BranchKind::Geu => "bgeu",
        }
    }
}

/// Three-register ALU operation selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (÷0 yields `u64::MAX`).
    Divu,
    /// Unsigned remainder (mod 0 yields the dividend).
    Remu,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Logical left shift.
    Shl,
    /// Logical right shift.
    Shr,
    /// Arithmetic right shift.
    Sar,
    /// Signed set-less-than (1 or 0).
    Slt,
    /// Unsigned set-less-than (1 or 0).
    Sltu,
}

impl AluOp {
    /// Applies the operation. Division and remainder by zero yield
    /// `u64::MAX` and the dividend respectively (RISC-V semantics), so the
    /// interpreter never faults on arithmetic.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
            AluOp::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl(b as u32),
            AluOp::Shr => a.wrapping_shr(b as u32),
            AluOp::Sar => ((a as i64).wrapping_shr(b as u32)) as u64,
            AluOp::Slt => u64::from((a as i64) < (b as i64)),
            AluOp::Sltu => u64::from(a < b),
        }
    }

    /// The encoded sub-operation byte.
    pub fn to_byte(self) -> u8 {
        self as u8
    }

    /// Decodes an ALU operation from its encoded byte.
    pub fn from_byte(b: u8) -> Option<AluOp> {
        Some(match b {
            0 => AluOp::Add,
            1 => AluOp::Sub,
            2 => AluOp::Mul,
            3 => AluOp::Divu,
            4 => AluOp::Remu,
            5 => AluOp::And,
            6 => AluOp::Or,
            7 => AluOp::Xor,
            8 => AluOp::Shl,
            9 => AluOp::Shr,
            10 => AluOp::Sar,
            11 => AluOp::Slt,
            12 => AluOp::Sltu,
            _ => return None,
        })
    }

    /// The assembler mnemonic for the register form.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Divu => "divu",
            AluOp::Remu => "remu",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        }
    }
}

/// Top-level opcode byte used by the binary encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)] // one-to-one with the documented `Inst` variants
pub enum Opcode {
    Nop = 0x00,
    Alu = 0x01,
    AluImm = 0x02,
    Li = 0x03,
    Mov = 0x04,
    Ld = 0x05,
    St = 0x06,
    Jmp = 0x07,
    Jal = 0x08,
    Jalr = 0x09,
    Branch = 0x0a,
    Syscall = 0x0b,
    Halt = 0x0c,
}

impl Opcode {
    /// Number of opcodes; dispatch tables indexed by opcode byte are
    /// `[_; Opcode::COUNT]`.
    pub const COUNT: usize = 13;

    pub(crate) fn from_byte(b: u8) -> Option<Opcode> {
        Some(match b {
            0x00 => Opcode::Nop,
            0x01 => Opcode::Alu,
            0x02 => Opcode::AluImm,
            0x03 => Opcode::Li,
            0x04 => Opcode::Mov,
            0x05 => Opcode::Ld,
            0x06 => Opcode::St,
            0x07 => Opcode::Jmp,
            0x08 => Opcode::Jal,
            0x09 => Opcode::Jalr,
            0x0a => Opcode::Branch,
            0x0b => Opcode::Syscall,
            0x0c => Opcode::Halt,
            _ => return None,
        })
    }
}

/// A decoded virtual-ISA instruction.
///
/// Control-transfer targets are *absolute* virtual addresses; the assembler
/// resolves labels during its second pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
// Field semantics are given in full by each variant's doc comment
// (`rd` destination, `rs*` sources, `base`+`offset` address, `target`
// absolute address); per-field docs would only repeat them.
#[allow(missing_docs)]
pub enum Inst {
    /// No operation.
    Nop,
    /// `rd := rs1 <op> rs2`.
    Alu {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// `rd := rs1 <op> imm` (immediate sign-extended to 64 bits).
    AluImm {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// `rd := imm` — a full 64-bit immediate load. Occupies two encoding
    /// words (16 bytes); the only variable-length instruction.
    Li { rd: Reg, imm: i64 },
    /// `rd := rs`.
    Mov { rd: Reg, rs: Reg },
    /// `rd := mem[rs + offset]` (zero-extended for sub-word widths).
    Ld {
        rd: Reg,
        base: Reg,
        offset: i32,
        width: MemWidth,
    },
    /// `mem[base + offset] := rs` (truncated for sub-word widths).
    St {
        rs: Reg,
        base: Reg,
        offset: i32,
        width: MemWidth,
    },
    /// Unconditional jump to an absolute address.
    Jmp { target: u64 },
    /// Call: `rd := pc + size; pc := target`.
    Jal { rd: Reg, target: u64 },
    /// Indirect jump/call: `rd := pc + size; pc := rs + offset`.
    Jalr { rd: Reg, rs: Reg, offset: i32 },
    /// Conditional branch: `if rs1 <kind> rs2 then pc := target`.
    Branch {
        kind: BranchKind,
        rs1: Reg,
        rs2: Reg,
        target: u64,
    },
    /// System call. Number in `r0`, arguments in `r1`–`r5`, result in `r0`.
    Syscall,
    /// Stops the processor (used only by injected runtime stubs; guest
    /// programs exit via the `exit` syscall).
    Halt,
}

impl Inst {
    /// Encoded size in bytes: 16 for [`Inst::Li`], 8 for everything else.
    pub fn size_bytes(self) -> u64 {
        match self {
            Inst::Li { .. } => 16,
            _ => 8,
        }
    }

    /// The opcode of this instruction, usable as a dense index into
    /// dispatch tables of size [`Opcode::COUNT`].
    pub fn opcode(self) -> Opcode {
        match self {
            Inst::Nop => Opcode::Nop,
            Inst::Alu { .. } => Opcode::Alu,
            Inst::AluImm { .. } => Opcode::AluImm,
            Inst::Li { .. } => Opcode::Li,
            Inst::Mov { .. } => Opcode::Mov,
            Inst::Ld { .. } => Opcode::Ld,
            Inst::St { .. } => Opcode::St,
            Inst::Jmp { .. } => Opcode::Jmp,
            Inst::Jal { .. } => Opcode::Jal,
            Inst::Jalr { .. } => Opcode::Jalr,
            Inst::Branch { .. } => Opcode::Branch,
            Inst::Syscall => Opcode::Syscall,
            Inst::Halt => Opcode::Halt,
        }
    }

    /// Whether this instruction ends a basic block (any control transfer,
    /// syscall, or halt).
    pub fn ends_basic_block(self) -> bool {
        matches!(
            self,
            Inst::Jmp { .. }
                | Inst::Jal { .. }
                | Inst::Jalr { .. }
                | Inst::Branch { .. }
                | Inst::Syscall
                | Inst::Halt
        )
    }

    /// Whether this is a control-transfer instruction.
    pub fn is_control_flow(self) -> bool {
        matches!(
            self,
            Inst::Jmp { .. } | Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Branch { .. }
        )
    }

    /// Whether this instruction reads memory.
    pub fn is_mem_read(self) -> bool {
        matches!(self, Inst::Ld { .. })
    }

    /// Whether this instruction writes memory.
    pub fn is_mem_write(self) -> bool {
        matches!(self, Inst::St { .. })
    }

    /// The register written by this instruction, if any.
    ///
    /// Used by the DBI JIT for register liveness and by SuperPin's
    /// signature recorder to infer the "two registers most likely to
    /// change" (paper §4.4).
    pub fn dest_reg(self) -> Option<Reg> {
        match self {
            Inst::Alu { rd, .. }
            | Inst::AluImm { rd, .. }
            | Inst::Li { rd, .. }
            | Inst::Mov { rd, .. }
            | Inst::Ld { rd, .. }
            | Inst::Jal { rd, .. }
            | Inst::Jalr { rd, .. } => Some(rd),
            _ => None,
        }
    }

    /// The registers read by this instruction (up to three; `Syscall`
    /// conservatively reports its argument registers).
    pub fn src_regs(self) -> Vec<Reg> {
        match self {
            Inst::Nop | Inst::Halt | Inst::Jmp { .. } | Inst::Jal { .. } | Inst::Li { .. } => {
                Vec::new()
            }
            Inst::Alu { rs1, rs2, .. } => vec![rs1, rs2],
            Inst::AluImm { rs1, .. } => vec![rs1],
            Inst::Mov { rs, .. } => vec![rs],
            Inst::Ld { base, .. } => vec![base],
            Inst::St { rs, base, .. } => vec![rs, base],
            Inst::Jalr { rs, .. } => vec![rs],
            Inst::Branch { rs1, rs2, .. } => vec![rs1, rs2],
            Inst::Syscall => vec![Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5],
        }
    }

    /// Static branch target, if this instruction has one.
    pub fn static_target(self) -> Option<u64> {
        match self {
            Inst::Jmp { target } | Inst::Jal { target, .. } | Inst::Branch { target, .. } => {
                Some(target)
            }
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Nop => write!(f, "nop"),
            Inst::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                write!(f, "{}i {rd}, {rs1}, {imm}", op.mnemonic())
            }
            Inst::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Inst::Mov { rd, rs } => write!(f, "mov {rd}, {rs}"),
            Inst::Ld {
                rd,
                base,
                offset,
                width,
            } => write!(f, "ld{width} {rd}, {offset}({base})"),
            Inst::St {
                rs,
                base,
                offset,
                width,
            } => write!(f, "st{width} {rs}, {offset}({base})"),
            Inst::Jmp { target } => write!(f, "jmp {target:#x}"),
            Inst::Jal { rd, target } => write!(f, "jal {rd}, {target:#x}"),
            Inst::Jalr { rd, rs, offset } => write!(f, "jalr {rd}, {offset}({rs})"),
            Inst::Branch {
                kind,
                rs1,
                rs2,
                target,
            } => write!(f, "{} {rs1}, {rs2}, {target:#x}", kind.mnemonic()),
            Inst::Syscall => write!(f, "syscall"),
            Inst::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_kind_test_matrix() {
        assert!(BranchKind::Eq.test(3, 3));
        assert!(!BranchKind::Eq.test(3, 4));
        assert!(BranchKind::Ne.test(3, 4));
        assert!(BranchKind::Lt.test(-1i64 as u64, 0));
        assert!(!BranchKind::Ltu.test(-1i64 as u64, 0));
        assert!(BranchKind::Ge.test(0, -5i64 as u64));
        assert!(BranchKind::Geu.test(u64::MAX, 0));
    }

    #[test]
    fn alu_div_by_zero_is_defined() {
        assert_eq!(AluOp::Divu.apply(10, 0), u64::MAX);
        assert_eq!(AluOp::Remu.apply(10, 0), 10);
    }

    #[test]
    fn alu_shift_and_compare() {
        assert_eq!(AluOp::Shl.apply(1, 8), 256);
        assert_eq!(AluOp::Sar.apply(-8i64 as u64, 1), -4i64 as u64);
        assert_eq!(AluOp::Slt.apply(-1i64 as u64, 0), 1);
        assert_eq!(AluOp::Sltu.apply(-1i64 as u64, 0), 0);
    }

    #[test]
    fn sizes_and_block_ends() {
        assert_eq!(Inst::Nop.size_bytes(), 8);
        assert_eq!(
            Inst::Li {
                rd: Reg::R1,
                imm: 0
            }
            .size_bytes(),
            16
        );
        assert!(Inst::Syscall.ends_basic_block());
        assert!(Inst::Halt.ends_basic_block());
        assert!(!Inst::Nop.ends_basic_block());
        assert!(Inst::Jmp { target: 0 }.ends_basic_block());
        assert!(!Inst::Syscall.is_control_flow());
    }

    #[test]
    fn dest_and_src_regs() {
        let inst = Inst::Alu {
            op: AluOp::Add,
            rd: Reg::R3,
            rs1: Reg::R1,
            rs2: Reg::R2,
        };
        assert_eq!(inst.dest_reg(), Some(Reg::R3));
        assert_eq!(inst.src_regs(), vec![Reg::R1, Reg::R2]);
        assert_eq!(Inst::Syscall.dest_reg(), None);
        assert_eq!(
            Inst::St {
                rs: Reg::R1,
                base: Reg::SP,
                offset: 8,
                width: MemWidth::D
            }
            .src_regs(),
            vec![Reg::R1, Reg::SP]
        );
    }

    #[test]
    fn display_formats() {
        let inst = Inst::Ld {
            rd: Reg::R2,
            base: Reg::SP,
            offset: -16,
            width: MemWidth::D,
        };
        assert_eq!(inst.to_string(), "ldd r2, -16(sp)");
        let branch = Inst::Branch {
            kind: BranchKind::Ne,
            rs1: Reg::R1,
            rs2: Reg::R0,
            target: 0x1000,
        };
        assert_eq!(branch.to_string(), "bne r1, r0, 0x1000");
    }

    #[test]
    fn alu_op_round_trips_byte_encoding() {
        for b in 0..13 {
            let op = AluOp::from_byte(b).expect("valid op byte");
            assert_eq!(op.to_byte(), b);
        }
        assert_eq!(AluOp::from_byte(13), None);
    }

    #[test]
    fn static_targets() {
        assert_eq!(Inst::Jmp { target: 0x40 }.static_target(), Some(0x40));
        assert_eq!(
            Inst::Jalr {
                rd: Reg::RA,
                rs: Reg::R1,
                offset: 0
            }
            .static_target(),
            None
        );
    }
}

//! Objdump-style disassembly listings.

use crate::program::{Program, Section};
use std::fmt::Write as _;

/// Renders a full disassembly listing of a program's code section, with
/// symbol labels interleaved and branch targets annotated by symbol.
///
/// # Example
///
/// ```
/// use superpin_isa::asm::assemble;
/// use superpin_isa::disassemble;
///
/// let program = assemble("main:\n li r1, 2\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n exit 0\n")?;
/// let listing = disassemble(&program);
/// assert!(listing.contains("<main>:"));
/// assert!(listing.contains("<loop>:"));
/// assert!(listing.contains("bne"));
/// # Ok::<(), superpin_isa::asm::AsmError>(())
/// ```
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    for (addr, inst) in program.instructions() {
        // Emit a label line when a symbol starts here.
        if let Some(symbol) = program
            .symbols()
            .find(|sym| sym.section == Section::Code && sym.addr == addr)
        {
            let _ = writeln!(out, "{addr:#010x} <{}>:", symbol.name);
        }
        let annotation = inst
            .static_target()
            .and_then(|target| program.symbol_for_addr(target).map(|sym| (target, sym)))
            .map(|(target, sym)| {
                if sym.addr == target {
                    format!("  ; -> {}", sym.name)
                } else {
                    format!("  ; -> {}+{:#x}", sym.name, target - sym.addr)
                }
            })
            .unwrap_or_default();
        let _ = writeln!(out, "{addr:#010x}:   {inst}{annotation}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn listing_contains_every_instruction() {
        let program = assemble(
            "main:\n li r1, 3\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n call fn\n exit 0\nfn:\n ret\n",
        )
        .expect("assemble");
        let listing = disassemble(&program);
        let lines: Vec<&str> = listing.lines().collect();
        let inst_lines = lines.iter().filter(|l| !l.ends_with(":")).count();
        assert_eq!(inst_lines, program.static_inst_count());
        assert!(listing.contains("<main>:"));
        assert!(listing.contains("<fn>:"));
    }

    #[test]
    fn branch_targets_are_annotated() {
        let program = assemble("main:\nloop:\n nop\n jmp loop\n").expect("assemble");
        let listing = disassemble(&program);
        assert!(listing.contains("; -> loop") || listing.contains("; -> main"));
    }

    #[test]
    fn mid_symbol_targets_show_offsets() {
        let program =
            assemble("main:\n nop\n nop\n jmp target\n target: exit 0\n").expect("assemble");
        // `target` is its own label, so the jump annotates exactly.
        let listing = disassemble(&program);
        assert!(listing.contains("; -> target"));
    }
}

//! Property tests over the builder → encode → decode pipeline.

use proptest::prelude::*;
use superpin_isa::{AluOp, Inst, MemWidth, ProgramBuilder, Reg};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::new)
}

/// Straight-line (non-control-flow) instructions only, so a program built
/// from them plus a final `exit` decodes back positionally.
fn arb_straightline_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        Just(Inst::Nop),
        (0u8..13, arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs1, rs2)| Inst::Alu {
            op: AluOp::from_byte(op).expect("valid"),
            rd,
            rs1,
            rs2,
        }),
        (0u8..13, arb_reg(), arb_reg(), any::<i32>()).prop_map(|(op, rd, rs1, imm)| {
            Inst::AluImm {
                op: AluOp::from_byte(op).expect("valid"),
                rd,
                rs1,
                imm,
            }
        }),
        (arb_reg(), any::<i64>()).prop_map(|(rd, imm)| Inst::Li { rd, imm }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Inst::Mov { rd, rs }),
        (arb_reg(), arb_reg(), any::<i32>(), 0u8..4).prop_map(|(rd, base, offset, w)| Inst::Ld {
            rd,
            base,
            offset,
            width: MemWidth::from_nibble(w).expect("valid"),
        }),
        (arb_reg(), arb_reg(), any::<i32>(), 0u8..4).prop_map(|(rs, base, offset, w)| Inst::St {
            rs,
            base,
            offset,
            width: MemWidth::from_nibble(w).expect("valid"),
        }),
    ]
}

proptest! {
    /// Building a program from arbitrary straight-line instructions and
    /// decoding its code section recovers exactly the same instructions.
    #[test]
    fn prop_build_decode_round_trip(insts in proptest::collection::vec(arb_straightline_inst(), 0..80)) {
        let mut b = ProgramBuilder::new();
        b.label("main");
        for &inst in &insts {
            b.inst(inst);
        }
        b.exit(0);
        let program = b.build().expect("build");
        let decoded: Vec<Inst> = program.instructions().map(|(_, i)| i).collect();
        // The exit pseudo adds li + li + syscall.
        prop_assert_eq!(decoded.len(), insts.len() + 3);
        prop_assert_eq!(&decoded[..insts.len()], &insts[..]);
        prop_assert_eq!(*decoded.last().expect("nonempty"), Inst::Syscall);
    }

    /// `here()` always equals the address the next instruction decodes at.
    #[test]
    fn prop_here_tracks_layout(insts in proptest::collection::vec(arb_straightline_inst(), 1..40)) {
        let mut b = ProgramBuilder::new();
        b.label("main");
        let mut expected_addrs = Vec::new();
        for &inst in &insts {
            expected_addrs.push(b.here());
            b.inst(inst);
        }
        b.exit(0);
        let program = b.build().expect("build");
        let addrs: Vec<u64> = program
            .instructions()
            .take(insts.len())
            .map(|(addr, _)| addr)
            .collect();
        prop_assert_eq!(addrs, expected_addrs);
    }

    /// Labels resolve to the instruction that follows them, regardless of
    /// the variable-length instructions around them.
    #[test]
    fn prop_labels_resolve_to_following_instruction(
        prefix in proptest::collection::vec(arb_straightline_inst(), 0..20),
        suffix in proptest::collection::vec(arb_straightline_inst(), 0..20),
    ) {
        let mut b = ProgramBuilder::new();
        b.label("main");
        for &inst in &prefix {
            b.inst(inst);
        }
        b.label("target");
        let target_addr = b.here();
        for &inst in &suffix {
            b.inst(inst);
        }
        b.jmp("target");
        b.exit(0);
        let program = b.build().expect("build");
        prop_assert_eq!(
            program.symbol("target").expect("target symbol").addr,
            target_addr
        );
        // The emitted jmp's resolved target equals the symbol address.
        let jmp = program
            .instructions()
            .map(|(_, inst)| inst)
            .find(|inst| matches!(inst, Inst::Jmp { .. }))
            .expect("jmp present");
        prop_assert_eq!(jmp.static_target(), Some(target_addr));
    }
}

//! Whole-program analysis: indirect-target resolution against the
//! generator's ground-truth dispatch tables, call-graph recovery,
//! loop nesting, SMC detection, and superblock planning.

use std::collections::BTreeSet;

use superpin_analysis::{Cfg, PlanKnobs, ProgramAnalysis, TargetSet, Terminator};
use superpin_isa::{Inst, ProgramBuilder, Reg};
use superpin_workloads::{catalog, meta, Scale};

/// Every generated workload's dispatch table must be rediscovered by
/// constant propagation: every `jalr` site resolves, and each
/// indirect-call site's target set equals the ground-truth unit table
/// (read from symbols the analysis never sees).
#[test]
fn catalog_dispatch_tables_resolve_exactly() {
    for spec in catalog() {
        let program = spec.build(Scale::Tiny);
        let analysis = ProgramAnalysis::compute(&program).expect("analysis");

        let unresolved = analysis.targets.unresolved_sites();
        assert!(
            unresolved.is_empty(),
            "{}: unresolved jalr sites {unresolved:?}",
            spec.name
        );
        assert!(
            !analysis.targets.stores.unknown,
            "{}: store summary degraded to unknown",
            spec.name
        );

        let truth: BTreeSet<u64> = meta::dispatch_meta(&program)
            .expect("generated workloads have a unit_table")
            .entries
            .into_iter()
            .collect();

        let mut call_sites = 0;
        for block in analysis.cfg.blocks() {
            let site = match block.terminator {
                Terminator::IndirectCall { .. } => block.insts.last().expect("non-empty").0,
                _ => continue,
            };
            let Some(TargetSet::Resolved(set)) = analysis.targets.indirect_targets.get(&site)
            else {
                panic!("{}: dispatch site {site:#x} not resolved", spec.name);
            };
            assert_eq!(
                set, &truth,
                "{}: dispatch site {site:#x} resolved to a different set than the table",
                spec.name
            );
            call_sites += 1;
        }
        assert!(
            call_sites > 0,
            "{}: no indirect call sites found",
            spec.name
        );
    }
}

/// Returns (rets) resolve to the actual return sites: each unit's
/// `jalr ra, ra` must target exactly the fall-throughs of the
/// dispatch `jalr` sites.
#[test]
fn catalog_returns_resolve_to_call_fallthroughs() {
    let spec = superpin_workloads::find("gcc").expect("gcc in catalog");
    let program = spec.build(Scale::Tiny);
    let analysis = ProgramAnalysis::compute(&program).expect("analysis");

    let mut falls: BTreeSet<u64> = BTreeSet::new();
    for block in analysis.cfg.blocks() {
        if let Terminator::IndirectCall { fall } = block.terminator {
            falls.insert(fall);
        }
    }
    for block in analysis.cfg.blocks() {
        if !matches!(block.terminator, Terminator::IndirectJump) {
            continue;
        }
        let site = block.insts.last().expect("non-empty").0;
        match analysis.targets.indirect_targets.get(&site) {
            Some(TargetSet::Resolved(set)) => {
                assert!(
                    set.is_subset(&falls),
                    "ret at {site:#x} resolved outside the call fall-throughs: {set:?}"
                );
                assert!(!set.is_empty(), "ret at {site:#x} resolved to nothing");
            }
            other => panic!("ret at {site:#x} not resolved: {other:?}"),
        }
    }
}

/// No generated workload writes its own code: the SMC region set must
/// be empty (and not degraded) across the catalog.
#[test]
fn catalog_has_no_smc_regions() {
    for spec in catalog() {
        let program = spec.build(Scale::Tiny);
        let analysis = ProgramAnalysis::compute(&program).expect("analysis");
        assert!(
            analysis.smc.is_empty() && !analysis.smc.degraded(),
            "{}: unexpected SMC pages",
            spec.name
        );
    }
}

/// The call graph reaches every unit function from the entry; a
/// deliberately orphaned function is flagged unreachable.
#[test]
fn callgraph_reachability() {
    let spec = superpin_workloads::find("mcf").expect("mcf in catalog");
    let program = spec.build(Scale::Tiny);
    let analysis = ProgramAnalysis::compute(&program).expect("analysis");
    let truth: BTreeSet<u64> = meta::dispatch_meta(&program)
        .expect("table")
        .entries
        .into_iter()
        .collect();
    let reachable = analysis.callgraph.reachable_funcs();
    for unit in &truth {
        assert!(
            reachable.contains(unit),
            "unit at {unit:#x} not reachable through the dispatch table"
        );
    }
    assert!(analysis.callgraph.unreachable_funcs().is_empty());

    // Orphan: a function nothing calls and nothing takes the address of.
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R1, 1);
    b.exit(0);
    b.label("orphan");
    b.li(Reg::R2, 2);
    b.ret();
    // Make `orphan` a jal target from dead code so it registers as a
    // function without becoming reachable.
    b.label("dead");
    b.call("orphan");
    b.inst(Inst::Halt);
    let program = b.build().expect("build");
    let analysis = ProgramAnalysis::compute(&program).expect("analysis");
    let unreachable: Vec<_> = analysis
        .callgraph
        .unreachable_funcs()
        .iter()
        .filter_map(|f| f.name.clone())
        .collect();
    assert!(
        unreachable.contains(&"orphan".to_owned()),
        "orphan not flagged: {unreachable:?}"
    );
}

/// Loop nesting depth: an inner loop is strictly deeper than its
/// outer loop, and straight-line code has depth zero.
#[test]
fn loop_nesting_depth() {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R1, 10);
    b.label("outer");
    b.li(Reg::R2, 10);
    b.label("inner");
    b.subi(Reg::R2, Reg::R2, 1);
    b.bne(Reg::R2, Reg::R0, "inner");
    b.subi(Reg::R1, Reg::R1, 1);
    b.bne(Reg::R1, Reg::R0, "outer");
    b.exit(0);
    let program = b.build().expect("build");
    let analysis = ProgramAnalysis::compute(&program).expect("analysis");
    let cfg = &analysis.cfg;

    let at = |label: &str| {
        cfg.block_at(program.symbol(label).expect("symbol").addr)
            .expect("block")
    };
    assert_eq!(analysis.loops.depth(at("inner")), 2);
    assert_eq!(analysis.loops.depth(at("outer")), 1);
    assert_eq!(analysis.loops.depth(cfg.entry()), 0);
    assert!(analysis.loops.is_header(at("inner")));
    assert!(analysis.loops.is_header(at("outer")));
}

/// A store through a loop-carried pointer into a named buffer is
/// detected as SMC when the buffer is the code section itself.
#[test]
fn smc_flagged_when_code_is_written() {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R1, 0);
    b.label("patch");
    // Store to a code address materialized by la.
    b.la(Reg::R2, "patch");
    b.st(Reg::R1, Reg::R2, 0);
    b.exit(0);
    let program = b.build().expect("build");
    let analysis = ProgramAnalysis::compute(&program).expect("analysis");
    assert!(
        !analysis.smc.is_empty(),
        "write to own code page not flagged as SMC"
    );
    let patch = program.symbol("patch").expect("symbol").addr;
    assert!(analysis.smc.covers(patch, 8));
}

/// Planning: hot entries come from loop depth, respect the threshold
/// and trace-length knobs, and the plan pre-decodes the reachable
/// instruction stream.
#[test]
fn plan_hot_entries_follow_knobs() {
    let spec = superpin_workloads::find("art").expect("art in catalog");
    let program = spec.build(Scale::Tiny);
    let analysis = ProgramAnalysis::compute(&program).expect("analysis");

    let plan = analysis.plan(PlanKnobs::default());
    assert!(plan.num_hot() > 0, "workload main loop should be hot");
    assert!(plan.num_decoded() > 0);
    // Every decoded entry must agree with a fresh decode of the program.
    let cfg = Cfg::build(&program).expect("cfg");
    for block in cfg.blocks() {
        for &(addr, inst) in &block.insts {
            assert_eq!(plan.lookup(addr), Some((inst, inst.size_bytes())));
        }
    }

    // An impossible threshold empties the hot set; max_trace_len 0
    // filters every entry too.
    let cold = analysis.plan(PlanKnobs {
        hot_loop_threshold: u32::MAX,
        max_trace_len: 96,
    });
    assert_eq!(cold.num_hot(), 0);
    let tiny = analysis.plan(PlanKnobs {
        hot_loop_threshold: 1,
        max_trace_len: 0,
    });
    assert_eq!(tiny.num_hot(), 0);
}

/// The refined interprocedural liveness must elide the dispatch-site
/// save/restores: at a resolved `jalr` call whose callees never read
/// the analysis-clobbered registers, those registers are dead.
#[test]
fn refined_liveness_kills_clobbers_at_dispatch() {
    let spec = superpin_workloads::find("gcc").expect("gcc in catalog");
    let program = spec.build(Scale::Tiny);
    let analysis = ProgramAnalysis::compute(&program).expect("analysis");
    let refined = analysis.refined_liveness();
    let conservative = superpin_analysis::LiveMap::compute(&program).expect("liveness");

    let mut improved = 0usize;
    for block in analysis.cfg.blocks() {
        if !matches!(block.terminator, Terminator::IndirectCall { .. }) {
            continue;
        }
        let site = block.insts.last().expect("non-empty").0;
        let cons = conservative.live_before(site);
        let refd = refined.live_before(site);
        assert!(
            refd.is_subset_of(cons),
            "refined liveness grew at {site:#x}"
        );
        if refd.len() < cons.len() {
            improved += 1;
        }
    }
    assert!(improved > 0, "refinement never improved a dispatch site");
}

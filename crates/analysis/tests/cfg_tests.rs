//! CFG construction edge cases: single-block programs, self-loops,
//! entry-as-branch-target, indirect jumps through address-taken
//! targets, and terminator classification.

use superpin_analysis::{Cfg, Terminator};
use superpin_isa::{Inst, ProgramBuilder, Reg};

#[test]
fn single_block_program() {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R1, 7);
    b.addi(Reg::R1, Reg::R1, 1);
    b.inst(Inst::Halt);
    let program = b.build().expect("build");

    let cfg = Cfg::build(&program).expect("cfg");
    assert_eq!(cfg.len(), 1);
    let block = &cfg.blocks()[0];
    assert_eq!(block.start, program.entry());
    assert_eq!(block.insts.len(), 3);
    assert_eq!(block.terminator, Terminator::Halt);
    assert!(block.succs.is_empty());
    assert!(block.preds.is_empty());
    assert_eq!(cfg.roots(), vec![0]);
}

#[test]
fn self_loop_block_is_its_own_successor() {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R8, 5);
    b.label("loop");
    b.subi(Reg::R8, Reg::R8, 1);
    b.bne(Reg::R8, Reg::R0, "loop");
    b.inst(Inst::Halt);
    let program = b.build().expect("build");

    let cfg = Cfg::build(&program).expect("cfg");
    let loop_id = cfg
        .block_at(program.symbol("loop").expect("loop symbol").addr)
        .expect("loop block");
    let block = &cfg.blocks()[loop_id];
    assert!(block.succs.contains(&loop_id), "self edge missing");
    assert!(block.preds.contains(&loop_id), "self edge missing");
    assert!(matches!(block.terminator, Terminator::Branch { .. }));
}

#[test]
fn entry_as_branch_target_gets_a_predecessor() {
    // The entry block is itself the loop head: the back edge targets
    // the program entry point.
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.subi(Reg::R8, Reg::R8, 1);
    b.bne(Reg::R8, Reg::R0, "main");
    b.inst(Inst::Halt);
    let program = b.build().expect("build");

    let cfg = Cfg::build(&program).expect("cfg");
    let entry = cfg.entry();
    assert_eq!(cfg.blocks()[entry].start, program.entry());
    assert!(
        !cfg.blocks()[entry].preds.is_empty(),
        "entry targeted by a branch must have predecessors"
    );
    assert!(cfg.blocks()[entry].succs.contains(&entry));
}

#[test]
fn indirect_jump_targets_become_roots() {
    // A jump table in the data section: both targets are address-taken
    // and must be CFG roots even though no direct edge reaches them.
    let mut b = ProgramBuilder::new();
    b.label("alpha");
    b.addi(Reg::R2, Reg::R2, 1);
    b.ret();
    b.label("beta");
    b.addi(Reg::R2, Reg::R2, 2);
    b.ret();
    b.label("main");
    let alpha = b.label_addr("alpha").expect("alpha");
    let beta = b.label_addr("beta").expect("beta");
    b.la(Reg::R9, "table");
    b.ld(Reg::R1, Reg::R9, 0);
    b.jalr(Reg::RA, Reg::R1, 0);
    b.exit(0);
    b.data_words("table", &[alpha, beta]);
    let program = b.build().expect("build");

    let cfg = Cfg::build(&program).expect("cfg");
    let alpha_id = cfg.block_at(alpha).expect("alpha block");
    let beta_id = cfg.block_at(beta).expect("beta block");
    let roots = cfg.roots();
    assert!(roots.contains(&alpha_id), "alpha not a root: {roots:?}");
    assert!(roots.contains(&beta_id), "beta not a root: {roots:?}");

    // The jalr call keeps a fall-through edge to its return site; the
    // rets are pure sinks.
    let call_block = cfg
        .block_containing(b.label_addr("main").expect("main"))
        .expect("main block");
    assert!(matches!(
        cfg.blocks()[call_block].terminator,
        Terminator::IndirectCall { .. }
    ));
    assert_eq!(cfg.blocks()[alpha_id].terminator, Terminator::IndirectJump);

    // Every block is reachable: main from the entry, units as roots,
    // the exit block through the call's fall-through edge.
    assert!(cfg.reachable().iter().all(|&r| r));
}

#[test]
fn li_of_code_address_is_address_taken() {
    let mut b = ProgramBuilder::new();
    b.label("helper");
    b.addi(Reg::R2, Reg::R2, 1);
    b.ret();
    b.label("main");
    let helper = b.label_addr("helper").expect("helper");
    b.li(Reg::R1, helper as i64);
    b.jalr(Reg::RA, Reg::R1, 0);
    b.exit(0);
    let program = b.build().expect("build");

    let cfg = Cfg::build(&program).expect("cfg");
    let helper_id = cfg.block_at(helper).expect("helper block");
    assert!(cfg.address_taken().contains(&helper_id));
    assert!(cfg.reachable().iter().all(|&r| r));
}

#[test]
fn terminator_classification() {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R0, 8); // gettime: returns
    b.syscall();
    b.jmp("next");
    b.label("next");
    b.call("leaf");
    b.exit(0);
    b.label("leaf");
    b.ret();
    let program = b.build().expect("build");

    let cfg = Cfg::build(&program).expect("cfg");
    let kinds: Vec<_> = cfg.blocks().iter().map(|b| b.terminator).collect();
    assert!(
        kinds
            .iter()
            .any(|t| matches!(t, Terminator::Syscall { .. })),
        "non-exit syscall should keep a fall-through: {kinds:?}"
    );
    assert!(kinds.iter().any(|t| matches!(t, Terminator::Jump(_))));
    assert!(kinds.iter().any(|t| matches!(t, Terminator::Call { .. })));
    assert!(kinds.iter().any(|t| matches!(t, Terminator::Exit)));
    assert!(kinds.iter().any(|t| matches!(t, Terminator::IndirectJump)));
}

#[test]
fn fall_off_end_is_detected() {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R1, 1);
    let program = b.build().expect("build");

    let cfg = Cfg::build(&program).expect("cfg");
    assert_eq!(cfg.len(), 1);
    assert_eq!(cfg.blocks()[0].terminator, Terminator::FallOffEnd);
}

#[test]
fn block_lookup_by_address() {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R8, 1); // 16 bytes
    b.addi(Reg::R8, Reg::R8, 1); // 8 bytes
    b.inst(Inst::Halt);
    let program = b.build().expect("build");

    let cfg = Cfg::build(&program).expect("cfg");
    let entry = program.entry();
    assert_eq!(cfg.block_at(entry), Some(0));
    assert_eq!(cfg.block_containing(entry + 16), Some(0));
    assert_eq!(cfg.block_at(entry + 16), None, "mid-block is not a start");
    assert_eq!(cfg.block_containing(entry + 1000), None);
}

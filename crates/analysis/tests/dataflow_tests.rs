//! Liveness, reaching definitions, and dominator tests over small
//! hand-built programs.

use superpin_analysis::{Cfg, DefSite, Dominators, LiveMap, Liveness, ReachingDefs, RegSet};
use superpin_isa::{Inst, ProgramBuilder, Reg};

/// The save/restore-elision motivating example: a counted loop ending
/// in `halt`. Only the counter and the zero register are live inside
/// the loop; everything else is provably dead.
#[test]
fn loop_counter_liveness() {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R8, 100);
    b.label("loop");
    b.subi(Reg::R8, Reg::R8, 1);
    b.bne(Reg::R8, Reg::R0, "loop");
    b.inst(Inst::Halt);
    let program = b.build().expect("build");

    let live = LiveMap::compute(&program).expect("liveness");
    let loop_addr = program.symbol("loop").expect("loop").addr;
    let expected = RegSet::from_regs(&[Reg::R8, Reg::R0]);
    assert_eq!(live.live_before(loop_addr), expected);
    // R1..R3 (the stub clobber set of the DBI layer) are all dead here.
    for reg in [Reg::R1, Reg::R2, Reg::R3] {
        assert!(!live.live_before(loop_addr).contains(reg));
    }
}

#[test]
fn overwritten_value_is_dead() {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R1, 5);
    b.li(Reg::R1, 6);
    b.mov(Reg::R2, Reg::R1);
    b.inst(Inst::Halt);
    let program = b.build().expect("build");

    let live = LiveMap::compute(&program).expect("liveness");
    let entry = program.entry();
    // After the first li, R1 is immediately overwritten: dead.
    assert!(!live.live_after(entry).contains(Reg::R1));
    // After the second li, the mov reads it: live.
    assert!(live.live_after(entry + 16).contains(Reg::R1));
    // The mov's destination is never read (halt ends the program).
    assert!(!live.live_after(entry + 32).contains(Reg::R2));
}

#[test]
fn indirect_control_flow_is_all_live() {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R1, 5);
    b.ret();
    let program = b.build().expect("build");

    let live = LiveMap::compute(&program).expect("liveness");
    // Before a jalr everything is conservatively live, so the li's
    // value must be treated as potentially read.
    assert_eq!(live.live_after(program.entry()), RegSet::ALL);
}

#[test]
fn unknown_address_answers_all_live() {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.inst(Inst::Halt);
    let program = b.build().expect("build");

    let live = LiveMap::compute(&program).expect("liveness");
    assert_eq!(live.live_before(0xdead_0000), RegSet::ALL);
    assert_eq!(live.live_after(0xdead_0000), RegSet::ALL);
}

#[test]
fn liveness_flows_across_branches() {
    // R4 is read only on the taken path; it must still be live at the
    // branch itself.
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R4, 9);
    b.li(Reg::R5, 1);
    b.beq(Reg::R5, Reg::R0, "use_r4");
    b.inst(Inst::Halt);
    b.label("use_r4");
    b.mov(Reg::R6, Reg::R4);
    b.inst(Inst::Halt);
    let program = b.build().expect("build");

    let cfg = Cfg::build(&program).expect("cfg");
    let liveness = Liveness::compute(&cfg);
    let live = LiveMap::from_cfg(&cfg);
    let beq_addr = program.entry() + 32; // after two 16-byte li's
    assert!(live.live_before(beq_addr).contains(Reg::R4));
    // The halt-terminated fall-through path keeps nothing alive.
    let halt_block = cfg
        .block_containing(program.symbol("use_r4").expect("sym").addr - 8)
        .expect("halt block");
    assert_eq!(liveness.live_in(halt_block), RegSet::EMPTY);
}

#[test]
fn reaching_defs_merge_at_joins() {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R2, 0);
    b.beq(Reg::R2, Reg::R0, "left");
    b.li(Reg::R1, 10); // right-path def
    b.jmp("join");
    b.label("left");
    b.li(Reg::R1, 20); // left-path def
    b.label("join");
    b.mov(Reg::R3, Reg::R1);
    b.inst(Inst::Halt);
    let program = b.build().expect("build");

    let cfg = Cfg::build(&program).expect("cfg");
    let reaching = ReachingDefs::compute(&cfg);
    let join_addr = program.symbol("join").expect("join").addr;
    let defs = reaching.defs_reaching(&cfg, join_addr, Reg::R1);
    let inst_defs: Vec<u64> = defs
        .iter()
        .filter_map(|site| match site {
            DefSite::Inst { addr, .. } => Some(*addr),
            _ => None,
        })
        .collect();
    assert_eq!(
        inst_defs.len(),
        2,
        "both branch defs reach the join: {defs:?}"
    );
    // The entry def no longer reaches: both paths redefine R1.
    assert!(
        !defs.iter().any(|site| matches!(site, DefSite::Entry(_))),
        "entry def should be killed on every path: {defs:?}"
    );
}

#[test]
fn uninitialized_read_is_detected_and_killed_by_writes() {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.mov(Reg::R2, Reg::R1); // reads R1 before any write
    b.li(Reg::R1, 3);
    b.mov(Reg::R3, Reg::R1); // reads R1 after the write
    b.inst(Inst::Halt);
    let program = b.build().expect("build");

    let cfg = Cfg::build(&program).expect("cfg");
    let reaching = ReachingDefs::compute(&cfg);
    let entry = program.entry();
    assert!(reaching.maybe_uninit_read(&cfg, entry, Reg::R1));
    assert!(!reaching.maybe_uninit_read(&cfg, entry + 8 + 16, Reg::R1));
    // Loader-pinned registers are never uninitialized.
    assert!(!reaching.maybe_uninit_read(&cfg, entry, Reg::R0));
    assert!(!reaching.maybe_uninit_read(&cfg, entry, Reg::SP));
}

#[test]
fn address_taken_blocks_assume_initialized_registers() {
    // `helper` is only reachable indirectly; its read of R8 must not
    // count as uninitialized (the unknown caller set it up).
    let mut b = ProgramBuilder::new();
    b.label("helper");
    b.mov(Reg::R2, Reg::R8);
    b.ret();
    b.label("main");
    b.la(Reg::R1, "table");
    b.ld(Reg::R1, Reg::R1, 0);
    b.li(Reg::R8, 1);
    b.jalr(Reg::RA, Reg::R1, 0);
    b.exit(0);
    let helper = b.label_addr("helper").expect("helper");
    b.data_words("table", &[helper]);
    let program = b.build().expect("build");

    let cfg = Cfg::build(&program).expect("cfg");
    let reaching = ReachingDefs::compute(&cfg);
    assert!(!reaching.maybe_uninit_read(&cfg, helper, Reg::R8));
}

#[test]
fn dominators_of_a_diamond() {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R2, 0);
    b.beq(Reg::R2, Reg::R0, "left");
    b.addi(Reg::R1, Reg::R0, 1);
    b.jmp("join");
    b.label("left");
    b.addi(Reg::R1, Reg::R0, 2);
    b.label("join");
    b.inst(Inst::Halt);
    let program = b.build().expect("build");

    let cfg = Cfg::build(&program).expect("cfg");
    let dom = Dominators::compute(&cfg);
    let entry = cfg.entry();
    let left = cfg
        .block_at(program.symbol("left").expect("left").addr)
        .expect("left block");
    let join = cfg
        .block_at(program.symbol("join").expect("join").addr)
        .expect("join block");
    assert!(dom.dominates(entry, left));
    assert!(dom.dominates(entry, join));
    assert!(!dom.dominates(left, join), "join is reachable around left");
    assert_eq!(dom.idom(&cfg, join), Some(entry));
    assert_eq!(dom.idom(&cfg, entry), None);
    assert!(dom.back_edges(&cfg).is_empty());
}

#[test]
fn loop_back_edge_is_found() {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R8, 4);
    b.label("loop");
    b.subi(Reg::R8, Reg::R8, 1);
    b.bne(Reg::R8, Reg::R0, "loop");
    b.inst(Inst::Halt);
    let program = b.build().expect("build");

    let cfg = Cfg::build(&program).expect("cfg");
    let dom = Dominators::compute(&cfg);
    let loop_id = cfg
        .block_at(program.symbol("loop").expect("loop").addr)
        .expect("loop block");
    assert_eq!(dom.back_edges(&cfg), vec![(loop_id, loop_id)]);
}

#[test]
fn resolved_syscall_narrows_liveness_through_exit_paths() {
    // `exit 0` expands to `li r1, 0; li r0, 0; syscall`. With the
    // number pinned by the in-block `li r0, 0`, the kernel reads only
    // r0 and r1 — the rest of the r1..r5 argument window must not leak
    // backwards and keep registers artificially live in the loop. This
    // is what makes save/restore elision effective on real programs,
    // which all end in `exit` rather than `halt`.
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R8, 3);
    b.label("loop");
    b.subi(Reg::R8, Reg::R8, 1);
    b.bne(Reg::R8, Reg::R0, "loop");
    b.exit(0);
    let program = b.build().expect("build");

    let live = LiveMap::compute(&program).expect("live");
    let loop_head = program.entry() + 16; // one 16-byte li before it
    assert_eq!(
        live.live_before(loop_head),
        RegSet::from_regs(&[Reg::R0, Reg::R8])
    );
}

#[test]
fn unresolved_syscall_number_keeps_the_full_argument_window() {
    // The syscall number arrives through a mov, so static resolution
    // fails and all of r0..r5 must be assumed read.
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R6, 9);
    b.mov(Reg::R0, Reg::R6);
    b.inst(Inst::Syscall);
    b.inst(Inst::Halt);
    let program = b.build().expect("build");

    let live = LiveMap::compute(&program).expect("live");
    let syscall_addr = program.entry() + 16 + 8;
    let expected = RegSet::from_regs(&[Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5]);
    assert_eq!(live.live_before(syscall_addr), expected);
}

/// A block that no root reaches must not be "dominated" by anything:
/// the optimistic iteration leaves unreachable blocks with the full
/// solution set, which `Dominators` must mask out.
#[test]
fn unreachable_blocks_have_no_dominators() {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R8, 4);
    b.label("loop");
    b.subi(Reg::R8, Reg::R8, 1);
    b.bne(Reg::R8, Reg::R0, "loop");
    b.exit(0);
    // Dead code: only reachable from itself.
    b.label("dead");
    b.addi(Reg::R1, Reg::R1, 1);
    b.jmp("dead");
    let program = b.build().expect("build");

    let cfg = Cfg::build(&program).expect("cfg");
    let dom = Dominators::compute(&cfg);
    let entry = cfg.entry();
    let dead = cfg
        .block_at(program.symbol("dead").expect("dead").addr)
        .expect("dead block");
    let loop_id = cfg
        .block_at(program.symbol("loop").expect("loop").addr)
        .expect("loop block");

    assert!(!cfg.reachable()[dead]);
    assert!(!dom.dominates(entry, dead), "nothing dominates dead code");
    assert!(!dom.dominates(dead, dead));
    assert!(dom.dominators_of(dead).is_empty());
    assert_eq!(dom.idom(&cfg, dead), None);
    // The dead self-loop must not surface as a back edge, while the
    // live loop's must.
    assert_eq!(dom.back_edges(&cfg), vec![(loop_id, loop_id)]);
}

/// An irreducible region (a two-entry loop) has no natural back edge:
/// neither header dominates the other, so `back_edges` stays empty
/// and dominance facts reflect only the common prefix.
#[test]
fn irreducible_loop_has_no_back_edges() {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R8, 10);
    b.beq(Reg::R8, Reg::R0, "b_side");
    b.label("a_side");
    b.subi(Reg::R8, Reg::R8, 1);
    b.beq(Reg::R8, Reg::R0, "out");
    b.jmp("b_side");
    b.label("b_side");
    b.subi(Reg::R8, Reg::R8, 2);
    b.bne(Reg::R8, Reg::R0, "a_side");
    b.label("out");
    b.inst(Inst::Halt);
    let program = b.build().expect("build");

    let cfg = Cfg::build(&program).expect("cfg");
    let dom = Dominators::compute(&cfg);
    let entry = cfg.entry();
    let a_side = cfg
        .block_at(program.symbol("a_side").expect("a_side").addr)
        .expect("a block");
    let b_side = cfg
        .block_at(program.symbol("b_side").expect("b_side").addr)
        .expect("b block");

    assert!(!dom.dominates(a_side, b_side), "b_side entered from main");
    assert!(!dom.dominates(b_side, a_side), "a_side entered from main");
    assert!(dom.dominates(entry, a_side));
    assert!(dom.dominates(entry, b_side));
    assert_eq!(dom.idom(&cfg, a_side), Some(entry));
    assert_eq!(dom.idom(&cfg, b_side), Some(entry));
    assert!(
        dom.back_edges(&cfg).is_empty(),
        "irreducible cycles have no natural back edges"
    );
}

//! Per-lint positive and negative tests on hand-built programs.

use superpin_analysis::{run_lints, LintKind, Severity};
use superpin_isa::{Inst, ProgramBuilder, Reg};

#[test]
fn clean_program_has_no_findings() {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R1, 5);
    b.addi(Reg::R1, Reg::R1, 1);
    b.mov(Reg::R2, Reg::R1);
    b.st(Reg::R2, Reg::SP, -8);
    b.exit(0);
    let program = b.build().expect("build");

    let report = run_lints(&program).expect("lints");
    assert!(
        report.findings().is_empty(),
        "expected none, got: {:#?}",
        report.findings()
    );
    assert!(report.is_clean());
}

#[test]
fn undefined_read_fires_and_names_the_register() {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.add(Reg::R1, Reg::R6, Reg::R7); // r6, r7 never written
    b.exit(0);
    let program = b.build().expect("build");

    let report = run_lints(&program).expect("lints");
    let undef: Vec<_> = report.of_kind(LintKind::UndefinedRead).collect();
    assert_eq!(undef.len(), 2, "{undef:?}");
    assert!(undef.iter().all(|f| f.severity() == Severity::Warning));
    assert!(undef.iter().any(|f| f.message.contains("r6")));
    assert!(undef.iter().any(|f| f.message.contains("r7")));
    assert_eq!(undef[0].addr, program.entry());
}

#[test]
fn undefined_read_respects_loader_pinned_registers() {
    // r0 (zero), sp and fp are loader-defined; reading them cold is fine.
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.add(Reg::R1, Reg::R0, Reg::SP);
    b.ld(Reg::R2, Reg::FP, -8);
    b.exit(0);
    let program = b.build().expect("build");

    let report = run_lints(&program).expect("lints");
    assert_eq!(report.of_kind(LintKind::UndefinedRead).count(), 0);
}

#[test]
fn undefined_read_narrows_syscall_arguments() {
    // gettime (8) reads no argument registers: no warnings even though
    // r1..r5 are cold. exit (0) reads r1, which IS cold here: warning.
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R0, 8);
    b.syscall();
    b.li(Reg::R0, 0);
    b.syscall(); // exit with an uninitialized code in r1
    let program = b.build().expect("build");

    let report = run_lints(&program).expect("lints");
    let undef: Vec<_> = report.of_kind(LintKind::UndefinedRead).collect();
    assert_eq!(undef.len(), 1, "{undef:?}");
    assert!(undef[0].message.contains("r1"));
}

#[test]
fn unreachable_block_is_flagged() {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.jmp("over");
    b.addi(Reg::R1, Reg::R1, 1); // skipped by the jmp, no label
    b.label("over");
    b.exit(0);
    let program = b.build().expect("build");

    let report = run_lints(&program).expect("lints");
    let dead: Vec<_> = report.of_kind(LintKind::UnreachableBlock).collect();
    assert_eq!(dead.len(), 1, "{dead:?}");
    assert_eq!(dead[0].addr, program.entry() + 8);
}

#[test]
fn fall_off_end_is_an_error() {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R1, 1);
    let program = b.build().expect("build");

    let report = run_lints(&program).expect("lints");
    assert_eq!(report.errors(), 1);
    assert_eq!(report.of_kind(LintKind::FallOffEnd).count(), 1);
    assert!(!report.is_clean());
}

#[test]
fn stack_imbalance_in_a_loop() {
    // The loop body pushes 8 bytes per iteration and never pops: the
    // loop head sees offset 0 from the preheader and -8 from the back
    // edge.
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R8, 4);
    b.label("loop");
    b.subi(Reg::SP, Reg::SP, 8);
    b.subi(Reg::R8, Reg::R8, 1);
    b.bne(Reg::R8, Reg::R0, "loop");
    b.inst(Inst::Halt);
    let program = b.build().expect("build");

    let report = run_lints(&program).expect("lints");
    let imb: Vec<_> = report.of_kind(LintKind::StackImbalance).collect();
    assert_eq!(imb.len(), 1, "{imb:?}");
    assert_eq!(imb[0].addr, program.symbol("loop").expect("loop").addr);
    assert!(imb[0].message.contains("loop"), "{}", imb[0].message);
}

#[test]
fn balanced_stack_is_clean() {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R8, 4);
    b.label("loop");
    b.subi(Reg::SP, Reg::SP, 8);
    b.st(Reg::R8, Reg::SP, 0);
    b.addi(Reg::SP, Reg::SP, 8);
    b.subi(Reg::R8, Reg::R8, 1);
    b.bne(Reg::R8, Reg::R0, "loop");
    b.inst(Inst::Halt);
    let program = b.build().expect("build");

    let report = run_lints(&program).expect("lints");
    assert_eq!(report.of_kind(LintKind::StackImbalance).count(), 0);
}

#[test]
fn dead_store_is_informational() {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R1, 5); // overwritten before any read: dead
    b.li(Reg::R1, 6);
    b.mov(Reg::R2, Reg::R1); // r2 never read before halt: dead
    b.inst(Inst::Halt);
    let program = b.build().expect("build");

    let report = run_lints(&program).expect("lints");
    let dead: Vec<_> = report.of_kind(LintKind::DeadStore).collect();
    assert_eq!(dead.len(), 2, "{dead:?}");
    assert!(dead.iter().all(|f| f.severity() == Severity::Info));
    // Info findings do not break cleanliness.
    assert!(report.is_clean());
    assert_eq!(report.infos(), 2);
}

#[test]
fn stores_before_indirect_control_flow_are_never_dead() {
    // A ret can lead anywhere; every register must be assumed read.
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R1, 5);
    b.ret();
    let program = b.build().expect("build");

    let report = run_lints(&program).expect("lints");
    assert_eq!(report.of_kind(LintKind::DeadStore).count(), 0);
}

#[test]
fn findings_render_with_severity_kind_and_address() {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R1, 1);
    let program = b.build().expect("build");

    let report = run_lints(&program).expect("lints");
    let rendered = report
        .of_kind(LintKind::FallOffEnd)
        .next()
        .expect("fall-off-end finding")
        .to_string();
    assert!(
        rendered.starts_with("error[fall-off-end] 0x"),
        "unexpected rendering: {rendered}"
    );
}

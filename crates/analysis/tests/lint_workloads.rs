//! The full lint suite must come back clean over every synthetic SPEC
//! workload the generator can produce.
//!
//! "Clean" means no error- or warning-severity findings: no undefined
//! register reads, no unreachable blocks, no fall-off-end, no stack
//! imbalance. Info-severity dead-store findings are *expected*: unit
//! bodies are random ALU soup over three scratch registers, so some
//! values are overwritten before ever being read. That is legal
//! (wasted work, not a defect), asserted here so a change in the
//! generator or the liveness analysis that silences them gets noticed.

use superpin_analysis::{run_lints, LintKind};
use superpin_workloads::{catalog, Scale};

#[test]
fn all_workloads_lint_clean() {
    let specs = catalog();
    assert!(
        specs.len() >= 26,
        "expected the full SPEC-like catalog, got {} workloads",
        specs.len()
    );
    let mut dead_stores = 0usize;
    for spec in specs {
        let program = spec.build(Scale::Tiny);
        let report =
            run_lints(&program).unwrap_or_else(|e| panic!("{}: analysis failed: {e}", spec.name));
        assert!(
            report.is_clean(),
            "{}: expected no errors/warnings, got:\n{}",
            spec.name,
            report
                .findings()
                .iter()
                .map(|f| format!("  {f}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
        // The only findings at all are advisory dead stores.
        assert_eq!(report.findings().len(), report.infos(), "{}", spec.name);
        dead_stores += report.of_kind(LintKind::DeadStore).count();
    }
    assert!(
        dead_stores > 0,
        "random unit bodies are expected to contain some dead stores"
    );
}

#[test]
fn workloads_lint_clean_across_inputs_and_scales() {
    // Layout varies with input seed and loop bounds vary with scale;
    // neither may introduce errors or warnings.
    for spec in catalog().iter().take(4) {
        for input in 0..3 {
            let program = spec.build_with_input(Scale::Small, input);
            let report = run_lints(&program)
                .unwrap_or_else(|e| panic!("{}: analysis failed: {e}", spec.name));
            assert!(
                report.is_clean(),
                "{} input {input}: {:#?}",
                spec.name,
                report.findings()
            );
        }
    }
}

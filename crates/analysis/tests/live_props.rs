//! Property test: dynamic execution validates static liveness.
//!
//! For a random program, record the executed instruction trace, then
//! compute the *dynamic future-use* set at each step walking the trace
//! backward: `future[i] = reads(inst_i) ∪ (future[i+1] − writes(inst_i))`.
//! A register in that set is literally read later in this concrete
//! execution before being overwritten, so static liveness — an
//! over-approximation over *all* executions — must include it:
//! `future[i] ⊆ live_before(pc_i)`.
//!
//! Unlike checking single instructions (whose reads are in the live
//! set by construction of the transfer function), this end-to-end
//! oracle catches missing CFG edges: a forgotten successor would
//! truncate static liveness paths that the dynamic trace actually
//! takes.

use proptest::prelude::*;
use superpin_analysis::{liveness::inst_defs, LiveMap, RegSet};
use superpin_isa::{AluOp, Inst, Program, ProgramBuilder, Reg};
use superpin_vm::cpu::ExecOutcome;
use superpin_vm::process::Process;

const BODY_REGS: [Reg; 6] = [Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6];
const ALU_OPS: [AluOp; 5] = [AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::And, AluOp::Or];

/// Deterministically expands a word list into a program: segments of
/// straight-line ALU soup joined by data-dependent forward branches,
/// wrapped in a counted outer loop, with occasional calls to a leaf
/// function. Always terminates (branches only go forward; the single
/// back edge is counted down in r8).
fn build_program(iters: u8, seed: u64, nsegs: usize, words: &[u64]) -> Program {
    let mut b = ProgramBuilder::new();
    b.label("leaf");
    b.addi(Reg::R6, Reg::R6, 1);
    b.ret();

    b.label("main");
    b.li(Reg::R8, iters as i64);
    for (idx, &reg) in BODY_REGS.iter().enumerate() {
        b.li(reg, (seed.rotate_left(idx as u32 * 11) & 0xff) as i64);
    }

    let chunk = words.len().div_ceil(nsegs).max(1);
    for (seg, seg_words) in words.chunks(chunk).enumerate() {
        b.label(&format!("seg{seg}"));
        for &word in seg_words {
            let rd = BODY_REGS[(word >> 8) as usize % BODY_REGS.len()];
            let rs1 = BODY_REGS[(word >> 16) as usize % BODY_REGS.len()];
            let rs2 = BODY_REGS[(word >> 24) as usize % BODY_REGS.len()];
            match word % 6 {
                0 => {
                    b.alu(ALU_OPS[(word >> 3) as usize % ALU_OPS.len()], rd, rs1, rs2);
                }
                1 => {
                    b.alui(
                        ALU_OPS[(word >> 3) as usize % ALU_OPS.len()],
                        rd,
                        rs1,
                        (word >> 32) as i32 % 1000,
                    );
                }
                2 => {
                    b.li(rd, (word >> 32) as u32 as i64);
                }
                3 => {
                    b.mov(rd, rs1);
                }
                4 => {
                    b.call("leaf");
                }
                _ => {
                    // Forward-only branch to a later segment (or the
                    // loop tail), so segment order guarantees progress.
                    let last = words.len().div_ceil(chunk);
                    let target = seg + 1 + (word >> 40) as usize % (last - seg);
                    let label = if target >= last {
                        "tail".to_owned()
                    } else {
                        format!("seg{target}")
                    };
                    b.bne(rs1, Reg::R0, &label);
                }
            }
        }
    }
    b.label("tail");
    b.subi(Reg::R8, Reg::R8, 1);
    b.bne(Reg::R8, Reg::R0, "seg0");
    b.exit(0);
    b.build().expect("generated property program must build")
}

/// Steps the program to exit, recording every executed instruction's
/// (pc, inst, concretely-read registers). Reads are computed from the
/// pre-execution machine state with no conservative inflation: a
/// `jalr` reads only its source register, and a `syscall` reads `r0`
/// plus exactly the argument window of the number sitting in `r0`.
fn dynamic_trace(program: &Program) -> Vec<(u64, Inst, RegSet)> {
    let mut process = Process::load(1, program).expect("load");
    let mut trace = Vec::new();
    while process.exited().is_none() {
        assert!(trace.len() < 200_000, "trace cap exceeded: runaway program");
        let pc = process.cpu.pc;
        let (inst, size) = program.decode_at(pc).expect("pc inside code");
        let reads = match inst {
            Inst::Syscall => superpin_analysis::kernel_syscall_uses(process.cpu.regs.get(Reg::R0)),
            _ => RegSet::from_regs(&inst.src_regs()),
        };
        trace.push((pc, inst, reads));
        match process.exec_decoded(inst, size).expect("step") {
            ExecOutcome::Syscall => {
                process.do_syscall(0).expect("syscall");
            }
            ExecOutcome::Halt => break,
            ExecOutcome::Next | ExecOutcome::Jumped => {}
        }
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dynamic_future_use_is_statically_live(
        iters in 1u8..4,
        seed in any::<u64>(),
        nsegs in 2usize..6,
        words in proptest::collection::vec(any::<u64>(), 10..60),
    ) {
        let program = build_program(iters, seed, nsegs, &words);
        let live = LiveMap::compute(&program).expect("liveness");
        let trace = dynamic_trace(&program);
        prop_assert!(!trace.is_empty());

        let mut future = RegSet::EMPTY;
        for &(pc, inst, reads) in trace.iter().rev() {
            future = reads.union(future.minus(inst_defs(inst)));
            prop_assert!(
                future.is_subset_of(live.live_before(pc)),
                "at {pc:#x} ({inst:?}): dynamic future-use {future:?} not within \
                 static live set {:?}",
                live.live_before(pc)
            );
        }
    }

    #[test]
    fn executed_instructions_are_reachable_blocks(
        iters in 1u8..3,
        seed in any::<u64>(),
        nsegs in 2usize..5,
        words in proptest::collection::vec(any::<u64>(), 10..40),
    ) {
        // Companion oracle for the CFG itself: every dynamically
        // executed pc must sit inside a statically reachable block.
        let program = build_program(iters, seed, nsegs, &words);
        let cfg = superpin_analysis::Cfg::build(&program).expect("cfg");
        let reachable = cfg.reachable();
        for &(pc, _, _) in &dynamic_trace(&program) {
            let block = cfg.block_containing(pc);
            prop_assert!(block.is_some(), "executed pc {pc:#x} outside every block");
            prop_assert!(
                reachable[block.expect("checked")],
                "executed pc {pc:#x} sits in a statically unreachable block"
            );
        }
    }
}

//! Interprocedural call graph recovery.
//!
//! Functions are identified by their entry addresses: the program
//! entry, every `jal` target, and every address-taken block (any of
//! which an indirect call may enter). A function's body is the set of
//! blocks reachable from its entry *without* following call targets
//! (call fall-throughs model returns) and stopping at indirect jumps;
//! blocks may be shared between functions when control merges.
//!
//! Call edges combine direct `jal` targets with the resolved indirect
//! target sets from [`crate::targets`]; an [`TargetSet::Unresolved`]
//! call site conservatively links to every address-taken function.

use std::collections::{BTreeMap, BTreeSet};

use superpin_isa::Program;

use crate::cfg::{BlockId, Cfg, Terminator};
use crate::targets::{TargetResolution, TargetSet};

/// One recovered function.
#[derive(Clone, Debug)]
pub struct FuncInfo {
    /// Entry address.
    pub entry: u64,
    /// Symbol name, when the program has one at the entry address.
    pub name: Option<String>,
    /// Blocks in the body, in address order.
    pub blocks: Vec<BlockId>,
    /// Entry addresses of callees (direct and resolved indirect).
    pub callees: BTreeSet<u64>,
    /// True if the body contains an unresolved indirect call.
    pub has_unresolved_call: bool,
}

/// The whole-program call graph.
#[derive(Clone, Debug)]
pub struct CallGraph {
    funcs: BTreeMap<u64, FuncInfo>,
    entry: u64,
}

impl CallGraph {
    /// Recovers the call graph from the CFG and target resolution.
    pub fn build(program: &Program, cfg: &Cfg, targets: &TargetResolution) -> CallGraph {
        let mut entries: BTreeSet<u64> = BTreeSet::new();
        entries.insert(program.entry());
        for &id in cfg.address_taken() {
            entries.insert(cfg.blocks()[id].start);
        }
        for block in cfg.blocks() {
            if let Terminator::Call { target, .. } = block.terminator {
                if cfg.block_at(target).is_some() {
                    entries.insert(target);
                }
            }
        }

        let address_taken: BTreeSet<u64> = cfg
            .address_taken()
            .iter()
            .map(|&id| cfg.blocks()[id].start)
            .collect();

        let mut funcs = BTreeMap::new();
        for &entry in &entries {
            let blocks = body_blocks(cfg, entry);
            let mut callees = BTreeSet::new();
            let mut has_unresolved_call = false;
            for &id in &blocks {
                let block = &cfg.blocks()[id];
                match block.terminator {
                    Terminator::Call { target, .. } if entries.contains(&target) => {
                        callees.insert(target);
                    }
                    Terminator::Call { .. } => {}
                    Terminator::IndirectCall { .. } | Terminator::IndirectJump => {
                        let site = block.insts.last().expect("non-empty block").0;
                        match targets.indirect_targets.get(&site) {
                            Some(TargetSet::Resolved(set)) => {
                                // A resolved ret targets return sites,
                                // not functions; only entries count as
                                // call edges.
                                callees.extend(set.iter().filter(|a| entries.contains(a)));
                            }
                            Some(TargetSet::Unresolved) => {
                                has_unresolved_call = true;
                                callees.extend(address_taken.iter().copied());
                            }
                            // Site unreached by the value solver:
                            // statically dead, no edges.
                            None => {}
                        }
                    }
                    _ => {}
                }
            }
            let name = program.symbol_for_addr(entry).map(|s| s.name.clone());
            funcs.insert(
                entry,
                FuncInfo {
                    entry,
                    name,
                    blocks,
                    callees,
                    has_unresolved_call,
                },
            );
        }

        CallGraph {
            funcs,
            entry: program.entry(),
        }
    }

    /// All functions, keyed by entry address.
    pub fn funcs(&self) -> &BTreeMap<u64, FuncInfo> {
        &self.funcs
    }

    /// The function at `entry`, if one was recovered there.
    pub fn func(&self, entry: u64) -> Option<&FuncInfo> {
        self.funcs.get(&entry)
    }

    /// Function entries transitively callable from the program entry.
    pub fn reachable_funcs(&self) -> BTreeSet<u64> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![self.entry];
        while let Some(entry) = stack.pop() {
            if !seen.insert(entry) {
                continue;
            }
            if let Some(func) = self.funcs.get(&entry) {
                for &callee in &func.callees {
                    if !seen.contains(&callee) {
                        stack.push(callee);
                    }
                }
            }
        }
        seen
    }

    /// Functions never callable from the program entry.
    pub fn unreachable_funcs(&self) -> Vec<&FuncInfo> {
        let reachable = self.reachable_funcs();
        self.funcs
            .values()
            .filter(|f| !reachable.contains(&f.entry))
            .collect()
    }
}

/// Blocks reachable from `entry` without entering callees: follows
/// branch/jump/fall edges and call fall-throughs, stops at calls'
/// targets and at indirect jumps.
fn body_blocks(cfg: &Cfg, entry: u64) -> Vec<BlockId> {
    let Some(start) = cfg.block_at(entry) else {
        return Vec::new();
    };
    let mut seen = BTreeSet::new();
    let mut stack = vec![start];
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        let block = &cfg.blocks()[id];
        let nexts: Vec<u64> = match block.terminator {
            Terminator::Jump(t) => vec![t],
            Terminator::Branch { taken, fall } => vec![taken, fall],
            Terminator::FallThrough(fall)
            | Terminator::Syscall { fall }
            | Terminator::Call { fall, .. }
            | Terminator::IndirectCall { fall } => vec![fall],
            Terminator::IndirectJump
            | Terminator::Exit
            | Terminator::Halt
            | Terminator::FallOffEnd => vec![],
        };
        for next in nexts {
            if let Some(succ) = cfg.block_at(next) {
                if !seen.contains(&succ) {
                    stack.push(succ);
                }
            }
        }
    }
    seen.into_iter().collect()
}

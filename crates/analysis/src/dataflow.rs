//! Generic worklist dataflow solver.
//!
//! A [`Problem`] describes a monotone dataflow analysis — direction,
//! lattice merge, per-block transfer function, and boundary facts —
//! and [`solve`] iterates it to a fixpoint over a [`Cfg`].
//!
//! Facts are stored per block edge of execution, direction-neutral:
//! [`Solution::entry`] holds the fact at each block's *start* and
//! [`Solution::exit`] the fact at its *end*, for both forward and
//! backward problems. A forward transfer maps the entry fact to the
//! exit fact; a backward transfer maps the exit fact to the entry
//! fact.

use crate::cfg::{BlockId, Cfg};

/// Analysis direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    Forward,
    Backward,
}

/// A monotone dataflow problem over a [`Cfg`].
pub trait Problem {
    /// Lattice element. `PartialEq` detects the fixpoint.
    type Fact: Clone + PartialEq;

    fn direction(&self) -> Direction;

    /// Optimistic starting fact for every block (the lattice bottom for
    /// this problem's merge: the empty set for unions, the full set for
    /// intersections).
    fn init(&self, cfg: &Cfg) -> Self::Fact;

    /// Fact flowing in from outside the graph at `block`, if any:
    /// forward problems return boundary facts at roots, backward
    /// problems at blocks with no (or unknown) successors.
    fn boundary(&self, cfg: &Cfg, block: BlockId) -> Option<Self::Fact>;

    /// Merges `edge` into `acc` at a control-flow join.
    fn merge(&self, acc: &mut Self::Fact, edge: &Self::Fact);

    /// Applies the block's effect to `input` (the entry fact for
    /// forward problems, the exit fact for backward ones).
    fn transfer(&self, cfg: &Cfg, block: BlockId, input: &Self::Fact) -> Self::Fact;
}

/// Fixpoint facts per block.
#[derive(Clone, Debug)]
pub struct Solution<F> {
    /// Fact at each block's first instruction.
    pub entry: Vec<F>,
    /// Fact after each block's last instruction.
    pub exit: Vec<F>,
}

/// Runs `problem` to a fixpoint and returns the per-block facts.
pub fn solve<P: Problem>(cfg: &Cfg, problem: &P) -> Solution<P::Fact> {
    let n = cfg.len();
    let init = problem.init(cfg);
    let mut entry = vec![init.clone(); n];
    let mut exit = vec![init; n];

    let forward = problem.direction() == Direction::Forward;
    let mut on_list = vec![true; n];
    // Seed in an order that tends to reach the fixpoint quickly:
    // address order forward, reverse address order backward.
    let mut worklist: Vec<BlockId> = if forward {
        (0..n).collect()
    } else {
        (0..n).rev().collect()
    };
    worklist.reverse(); // popped from the back

    while let Some(block) = worklist.pop() {
        on_list[block] = false;

        // Merge incoming facts: predecessors' exits (forward) or
        // successors' entries (backward), plus any boundary fact.
        let mut input = match problem.boundary(cfg, block) {
            Some(fact) => fact,
            None => problem.init(cfg),
        };
        let incoming: &[BlockId] = if forward {
            &cfg.blocks()[block].preds
        } else {
            &cfg.blocks()[block].succs
        };
        for &other in incoming {
            let fact = if forward { &exit[other] } else { &entry[other] };
            problem.merge(&mut input, fact);
        }

        let output = problem.transfer(cfg, block, &input);
        let (into_slot, out_slot, changed) = if forward {
            let changed = exit[block] != output;
            (&mut entry[block], &mut exit[block], changed)
        } else {
            let changed = entry[block] != output;
            (&mut exit[block], &mut entry[block], changed)
        };
        *into_slot = input;
        *out_slot = output;

        if changed {
            let downstream: &[BlockId] = if forward {
                &cfg.blocks()[block].succs
            } else {
                &cfg.blocks()[block].preds
            };
            for &next in downstream {
                if !on_list[next] {
                    on_list[next] = true;
                    worklist.push(next);
                }
            }
        }
    }

    Solution { entry, exit }
}

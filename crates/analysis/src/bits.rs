//! Fixed-width bit vector shared by the set-of-definitions and
//! set-of-blocks analyses ([`crate::reaching`], [`crate::dom`]).

/// A fixed-size set of small integers, stored as packed 64-bit words.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Bits {
    words: Vec<u64>,
    len: usize,
}

impl Bits {
    /// An empty set over the universe `0..len`.
    pub fn empty(len: usize) -> Bits {
        Bits {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The full set over the universe `0..len`.
    pub fn full(len: usize) -> Bits {
        let mut bits = Bits {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        bits.trim();
        bits
    }

    fn trim(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// True if `idx` is in the set.
    pub fn contains(&self, idx: usize) -> bool {
        debug_assert!(idx < self.len);
        self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Inserts `idx`.
    pub fn insert(&mut self, idx: usize) {
        debug_assert!(idx < self.len);
        self.words[idx / 64] |= 1u64 << (idx % 64);
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &Bits) {
        debug_assert_eq!(self.len, other.len);
        for (word, &other_word) in self.words.iter_mut().zip(&other.words) {
            *word |= other_word;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &Bits) {
        debug_assert_eq!(self.len, other.len);
        for (word, &other_word) in self.words.iter_mut().zip(&other.words) {
            *word &= other_word;
        }
    }

    /// In-place difference (removes every element of `other`).
    pub fn subtract(&mut self, other: &Bits) {
        debug_assert_eq!(self.len, other.len);
        for (word, &other_word) in self.words.iter_mut().zip(&other.words) {
            *word &= !other_word;
        }
    }

    /// Iterates set elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(word_idx, &word)| {
            (0..64)
                .filter(move |bit| word & (1u64 << bit) != 0)
                .map(move |bit| word_idx * 64 + bit)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_iter() {
        let mut bits = Bits::empty(130);
        bits.insert(0);
        bits.insert(64);
        bits.insert(129);
        assert!(bits.contains(0) && bits.contains(64) && bits.contains(129));
        assert!(!bits.contains(1));
        assert_eq!(bits.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
    }

    #[test]
    fn full_is_trimmed() {
        let bits = Bits::full(70);
        assert_eq!(bits.iter().count(), 70);
        assert!(bits.contains(69));
    }

    #[test]
    fn set_ops() {
        let mut a = Bits::empty(10);
        a.insert(1);
        a.insert(2);
        let mut b = Bits::empty(10);
        b.insert(2);
        b.insert(3);
        let mut union = a.clone();
        union.union_with(&b);
        assert_eq!(union.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        let mut inter = a.clone();
        inter.intersect_with(&b);
        assert_eq!(inter.iter().collect::<Vec<_>>(), vec![2]);
        a.subtract(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1]);
    }
}

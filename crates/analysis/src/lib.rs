//! Static analysis over decoded SuperPin programs.
//!
//! Pin-style dynamic instrumentation reads and writes guest registers
//! around every analysis call; knowing *statically* which registers
//! matter at each instruction lets the DBI layer both verify its
//! insertions (a clobbered live register is a correctness bug) and
//! skip save/restore work for registers that are provably dead. This
//! crate provides that static layer:
//!
//! - [`cfg::Cfg`] — basic-block discovery and CFG construction, with
//!   conservative handling of indirect branches (every address-taken
//!   instruction is a potential indirect target and CFG root).
//! - [`dataflow`] — a generic worklist solver for monotone forward and
//!   backward problems.
//! - [`liveness`] — backward register liveness, flattened to a
//!   per-instruction [`liveness::LiveMap`] for the DBI layer.
//! - [`reaching`] — reaching definitions with synthetic entry
//!   definitions (the basis of the undefined-read lint).
//! - [`dom`] — iterative dominators and back-edge/loop discovery.
//! - [`lint`] — program lints (undefined register read, unreachable
//!   blocks, fall-off-end, stack imbalance, dead stores, plus the
//!   whole-program lints) behind [`lint::run_lints`] and
//!   [`lint::run_whole_program_lints`]; the `spinlint` binary in
//!   `superpin-tools` is a thin CLI over them.
//!
//! The whole-program layer builds on those blocks:
//!
//! - [`targets`] — interprocedural value analysis resolving indirect
//!   branch/call target sets (with an explicit `Unresolved` top) and
//!   summarizing every store.
//! - [`callgraph`] — function recovery and the interprocedural call
//!   graph, combining direct and resolved indirect edges.
//! - [`loops`] — natural loops and per-block nesting depth from
//!   dominator back edges.
//! - [`smc`] — pages both written and executed (self-modifying code).
//! - [`plan`] — the [`plan::ProgramAnalysis`] aggregate, the
//!   ahead-of-time [`plan::SuperblockPlan`] the DBI engine consumes,
//!   and the [`plan::SoundnessOracle`] that cross-validates dynamic
//!   execution against the static results in debug builds.
//!
//! Everything works on [`superpin_isa::Program`] values — no VM or
//! engine dependency, so the crate sits below `superpin-dbi` in the
//! crate graph and the engine can consume [`liveness::LiveMap`]s.

#![forbid(unsafe_code)]

mod bits;
pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod dom;
pub mod lint;
pub mod liveness;
pub mod loops;
pub mod plan;
pub mod reaching;
pub mod regset;
pub mod smc;
pub mod targets;

pub use callgraph::{CallGraph, FuncInfo};
pub use cfg::{AnalysisError, Block, BlockId, Cfg, Terminator};
pub use dataflow::{solve, Direction, Problem, Solution};
pub use dom::Dominators;
pub use lint::{run_lints, run_whole_program_lints, Finding, LintKind, LintReport, Severity};
pub use liveness::{inst_defs, inst_uses, kernel_syscall_uses, syscall_uses, LiveMap, Liveness};
pub use loops::{LoopNest, NaturalLoop};
pub use plan::{OracleViolation, PlanKnobs, ProgramAnalysis, SoundnessOracle, SuperblockPlan};
pub use reaching::{loader_defined, DefSite, ReachingDefs};
pub use regset::RegSet;
pub use smc::SmcRegions;
pub use targets::{resolve_targets, StoreSummary, TargetResolution, TargetSet, Value};

//! Backward register liveness.
//!
//! Classic bit-vector liveness over [`RegSet`]s:
//! `live_in = use ∪ (live_out − def)` per instruction, iterated to a
//! fixpoint across the CFG by the worklist solver.
//!
//! Indirect control flow is handled conservatively. A `jalr` may
//! transfer anywhere, so its continuation could read any register:
//! [`inst_uses`] reports the full register set for `jalr`, and blocks
//! it terminates get an all-live boundary fact. The same boundary
//! applies to blocks that fall off the end of code. Blocks ending in
//! `halt` or the exit idiom have an empty live-out — nothing runs
//! after them (the exit syscall's own argument reads are covered by
//! the `syscall` instruction's use set).
//!
//! `syscall` reads are narrowed: when the syscall number is pinned by
//! a visible in-block `li r0, N`, only the argument registers that
//! syscall actually consumes count as uses ([`syscall_uses`]); an
//! unresolvable number falls back to the whole `r0`–`r5` window. This
//! matters for save/restore elision — without it, any `exit` path
//! keeps `r2`–`r5` artificially live throughout the program.

use std::collections::{BTreeSet, HashMap};

use superpin_isa::{Inst, Program, Reg};

use crate::cfg::{AnalysisError, BlockId, Cfg, Terminator};
use crate::dataflow::{solve, Direction, Problem, Solution};
use crate::regset::RegSet;

/// Registers `inst` reads, over-approximated for indirect control
/// flow: a `jalr`'s unknown continuation may read anything, so it
/// uses every register.
pub fn inst_uses(inst: Inst) -> RegSet {
    match inst {
        Inst::Jalr { .. } => RegSet::ALL,
        _ => RegSet::from_regs(&inst.src_regs()),
    }
}

/// Registers the kernel reads when servicing syscall `number`: `r0`
/// (the number itself) plus the argument registers that syscall
/// consumes. Unknown numbers answer the full `r0`–`r5` window.
pub fn kernel_syscall_uses(number: u64) -> RegSet {
    // Argument counts per syscall number (see superpin-vm's kernel):
    // exit 1, write 3, read 3, open 2, close 1, brk 1, mmap 2,
    // munmap 1, gettime 0, getpid 0, getrandom 2, sigaction 2,
    // raise 1, sigreturn 0.
    const ARG_COUNTS: [u8; 14] = [1, 3, 3, 2, 1, 1, 2, 1, 0, 0, 2, 2, 1, 0];
    let args = match ARG_COUNTS.get(number as usize) {
        Some(&n) => n,
        None => 5, // bad number: assume everything is read
    };
    let mut regs = RegSet::from_regs(&[Reg::R0]);
    for arg in 0..args {
        if let Some(reg) = Reg::try_new(1 + arg) {
            regs.insert(reg);
        }
    }
    regs
}

/// Registers the `syscall` at `block_insts[idx]` reads, narrowed by
/// resolving the nearest in-block `li r0, N` that reaches it. Blocks
/// are single-entry, so a visible unclobbered `li` pins the number on
/// every execution; anything else answers the conservative `r0`–`r5`.
pub fn syscall_uses(block_insts: &[(u64, Inst)], idx: usize) -> RegSet {
    block_insts[..idx]
        .iter()
        .rev()
        .find_map(|&(_, inst)| match inst {
            Inst::Li { rd: Reg::R0, imm } => Some(match u64::try_from(imm) {
                Ok(number) => kernel_syscall_uses(number),
                Err(_) => kernel_syscall_uses(u64::MAX),
            }),
            _ if inst_defs(inst).contains(Reg::R0) => Some(kernel_syscall_uses(u64::MAX)),
            _ => None,
        })
        .unwrap_or_else(|| kernel_syscall_uses(u64::MAX))
}

/// [`inst_uses`] with block context: `syscall` reads are narrowed to
/// the resolved syscall's argument window (see [`syscall_uses`]).
///
/// When `resolved_tail` is set, the block's terminating `jalr` is
/// known to transfer only to statically resolved targets whose
/// live-in flows through CFG edges instead, so it reads only its
/// actual source register rather than the conservative full set.
fn inst_uses_at(block_insts: &[(u64, Inst)], idx: usize, resolved_tail: bool) -> RegSet {
    match block_insts[idx].1 {
        Inst::Syscall => syscall_uses(block_insts, idx),
        inst @ Inst::Jalr { .. } if resolved_tail && idx == block_insts.len() - 1 => {
            RegSet::from_regs(&inst.src_regs())
        }
        inst => inst_uses(inst),
    }
}

/// Registers `inst` writes. `syscall` writes its result to `r0`.
pub fn inst_defs(inst: Inst) -> RegSet {
    let mut defs = RegSet::EMPTY;
    if let Some(rd) = inst.dest_reg() {
        defs.insert(rd);
    }
    if matches!(inst, Inst::Syscall) {
        defs.insert(Reg::R0);
    }
    defs
}

/// Backward liveness, optionally refined by a set of blocks whose
/// indirect terminators are statically resolved. A resolved block
/// loses its conservative all-live boundary — its live-out comes from
/// the (augmented) CFG edges to the resolved targets — and its `jalr`
/// reads only its source register.
struct LivenessProblem<'r> {
    resolved_indirect: Option<&'r BTreeSet<BlockId>>,
}

impl LivenessProblem<'_> {
    fn is_resolved(&self, block: BlockId) -> bool {
        self.resolved_indirect.is_some_and(|s| s.contains(&block))
    }
}

impl Problem for LivenessProblem<'_> {
    type Fact = RegSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn init(&self, _cfg: &Cfg) -> RegSet {
        RegSet::EMPTY
    }

    fn boundary(&self, cfg: &Cfg, block: BlockId) -> Option<RegSet> {
        match cfg.blocks()[block].terminator {
            // A resolved indirect terminator's live-out flows through
            // the augmented CFG edges to its static targets.
            Terminator::IndirectJump | Terminator::IndirectCall { .. }
                if self.is_resolved(block) =>
            {
                None
            }
            // Control leaves the graph for an unknown destination (or
            // a callee that will return): anything may be read next.
            Terminator::IndirectJump | Terminator::IndirectCall { .. } | Terminator::FallOffEnd => {
                Some(RegSet::ALL)
            }
            _ => None,
        }
    }

    fn merge(&self, acc: &mut RegSet, edge: &RegSet) {
        *acc = acc.union(*edge);
    }

    fn transfer(&self, cfg: &Cfg, block: BlockId, live_out: &RegSet) -> RegSet {
        let insts = &cfg.blocks()[block].insts;
        let resolved = self.is_resolved(block);
        let mut live = *live_out;
        for idx in (0..insts.len()).rev() {
            live = inst_uses_at(insts, idx, resolved).union(live.minus(inst_defs(insts[idx].1)));
        }
        live
    }
}

/// Block-level liveness facts.
#[derive(Clone, Debug)]
pub struct Liveness {
    solution: Solution<RegSet>,
}

impl Liveness {
    /// Solves liveness over `cfg`.
    pub fn compute(cfg: &Cfg) -> Liveness {
        Liveness {
            solution: solve(
                cfg,
                &LivenessProblem {
                    resolved_indirect: None,
                },
            ),
        }
    }

    /// Solves liveness with resolved-indirect refinement: blocks in
    /// `resolved` lose the all-live indirect boundary. `cfg` must
    /// already carry the resolved indirect edges (see
    /// [`Cfg::with_extra_edges`]) or the result is unsound.
    pub fn compute_refined(cfg: &Cfg, resolved: &BTreeSet<BlockId>) -> Liveness {
        Liveness {
            solution: solve(
                cfg,
                &LivenessProblem {
                    resolved_indirect: Some(resolved),
                },
            ),
        }
    }

    /// Registers live at the block's first instruction.
    pub fn live_in(&self, block: BlockId) -> RegSet {
        self.solution.entry[block]
    }

    /// Registers live after the block's last instruction.
    pub fn live_out(&self, block: BlockId) -> RegSet {
        self.solution.exit[block]
    }
}

/// Per-instruction liveness, keyed by address.
///
/// This is the interface the DBI layer consumes: given an insertion
/// point, which registers hold values a later instruction may read?
/// Addresses the map has never seen answer [`RegSet::ALL`] — an
/// unknown instruction gets the conservative answer, never an
/// unsound one.
#[derive(Clone, Debug)]
pub struct LiveMap {
    before: HashMap<u64, RegSet>,
    after: HashMap<u64, RegSet>,
}

impl LiveMap {
    /// Builds the per-instruction map from a solved CFG.
    pub fn from_cfg(cfg: &Cfg) -> LiveMap {
        LiveMap::from_liveness(cfg, &Liveness::compute(cfg), &BTreeSet::new())
    }

    /// Builds the per-instruction map with resolved-indirect
    /// refinement (see [`Liveness::compute_refined`]).
    pub fn from_cfg_refined(cfg: &Cfg, resolved: &BTreeSet<BlockId>) -> LiveMap {
        LiveMap::from_liveness(cfg, &Liveness::compute_refined(cfg, resolved), resolved)
    }

    fn from_liveness(cfg: &Cfg, liveness: &Liveness, resolved: &BTreeSet<BlockId>) -> LiveMap {
        let mut before = HashMap::new();
        let mut after = HashMap::new();
        for (id, block) in cfg.blocks().iter().enumerate() {
            let resolved_tail = resolved.contains(&id);
            let mut live = liveness.live_out(id);
            for idx in (0..block.insts.len()).rev() {
                let (addr, inst) = block.insts[idx];
                after.insert(addr, live);
                live = inst_uses_at(&block.insts, idx, resolved_tail)
                    .union(live.minus(inst_defs(inst)));
                before.insert(addr, live);
            }
        }
        LiveMap { before, after }
    }

    /// Convenience: CFG construction plus liveness in one call.
    pub fn compute(program: &Program) -> Result<LiveMap, AnalysisError> {
        Ok(LiveMap::from_cfg(&Cfg::build(program)?))
    }

    /// Registers live just before the instruction at `addr` executes.
    pub fn live_before(&self, addr: u64) -> RegSet {
        self.before.get(&addr).copied().unwrap_or(RegSet::ALL)
    }

    /// Registers live just after the instruction at `addr` executes.
    pub fn live_after(&self, addr: u64) -> RegSet {
        self.after.get(&addr).copied().unwrap_or(RegSet::ALL)
    }

    /// Number of instructions covered.
    pub fn len(&self) -> usize {
        self.before.len()
    }

    /// True if no instructions are covered.
    pub fn is_empty(&self) -> bool {
        self.before.is_empty()
    }
}

//! Dominator analysis.
//!
//! Iterative bit-vector formulation: `dom(b) = {b} ∪ ⋂ dom(preds)`,
//! with roots (the entry and every address-taken block, any of which
//! control can enter directly) pinned to dominate only themselves.
//! Solved with the same worklist engine as the other analyses, using
//! intersection as the merge.
//!
//! Back edges (`u → v` where `v` dominates `u`) identify natural
//! loops; the stack-imbalance lint uses them to point at loops that
//! shift the stack pointer on every iteration.

use crate::bits::Bits;
use crate::cfg::{BlockId, Cfg};
use crate::dataflow::{solve, Direction, Problem, Solution};

struct DomProblem;

impl Problem for DomProblem {
    type Fact = Bits;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn init(&self, cfg: &Cfg) -> Bits {
        // Optimistic: everything dominates everything; intersection
        // only ever shrinks it.
        Bits::full(cfg.len())
    }

    fn boundary(&self, cfg: &Cfg, block: BlockId) -> Option<Bits> {
        if cfg.roots().contains(&block) {
            // Control can enter here from outside: no block dominates
            // a root (the empty set absorbs every intersection).
            Some(Bits::empty(cfg.len()))
        } else {
            None
        }
    }

    fn merge(&self, acc: &mut Bits, edge: &Bits) {
        acc.intersect_with(edge);
    }

    fn transfer(&self, _cfg: &Cfg, block: BlockId, input: &Bits) -> Bits {
        let mut dom = input.clone();
        dom.insert(block);
        dom
    }
}

/// Solved dominator sets.
pub struct Dominators {
    solution: Solution<Bits>,
    /// Reachability snapshot taken at solve time. Unreachable blocks
    /// keep the optimistic full dominator set, which would otherwise
    /// make `dominates(a, unreachable)` vacuously true for every `a`.
    reachable: Vec<bool>,
}

impl Dominators {
    /// Computes dominators for every block of `cfg`.
    pub fn compute(cfg: &Cfg) -> Dominators {
        Dominators {
            solution: solve(cfg, &DomProblem),
            reachable: cfg.reachable(),
        }
    }

    /// True if `a` dominates `b` (every path from a root to `b` passes
    /// through `a`). Reflexive: every reachable block dominates
    /// itself. Always false when `b` is unreachable — there is no
    /// path to dominate.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        self.reachable[b] && self.solution.exit[b].contains(a)
    }

    /// All dominators of `block`, including itself; empty for
    /// unreachable blocks.
    pub fn dominators_of(&self, block: BlockId) -> Vec<BlockId> {
        if !self.reachable[block] {
            return Vec::new();
        }
        self.solution.exit[block].iter().collect()
    }

    /// The immediate dominator: the unique strict dominator of `block`
    /// that every other strict dominator also dominates. `None` for
    /// roots and unreachable blocks.
    pub fn idom(&self, cfg: &Cfg, block: BlockId) -> Option<BlockId> {
        let _ = cfg;
        let strict: Vec<BlockId> = self
            .dominators_of(block)
            .into_iter()
            .filter(|&d| d != block)
            .collect();
        strict
            .iter()
            .copied()
            .find(|&cand| strict.iter().all(|&other| self.dominates(other, cand)))
    }

    /// Edges `u → v` where `v` dominates `u`: the back edges of
    /// natural loops. Unreachable blocks are skipped (their dominator
    /// sets stay at the optimistic full set).
    pub fn back_edges(&self, cfg: &Cfg) -> Vec<(BlockId, BlockId)> {
        let mut edges = Vec::new();
        for (u, block) in cfg.blocks().iter().enumerate() {
            if !self.reachable[u] {
                continue;
            }
            for &v in &block.succs {
                if self.dominates(v, u) {
                    edges.push((u, v));
                }
            }
        }
        edges
    }
}

//! Whole-program value analysis and indirect-target resolution.
//!
//! Resolves the target sets of indirect jumps and calls (`jalr`) by
//! interprocedural constant propagation over an abstract value domain:
//!
//! ```text
//!   Bottom  ⊑  Set{v₀, v₁, …}  ⊑  Range{lo, hi, stride}  ⊑  Top
//! ```
//!
//! `Set` holds up to [`SET_CAP`] exact values and is evaluated with the
//! interpreter's own [`AluOp::apply`], so exact facts can never drift
//! from execution semantics. `Range` is a strided interval
//! `{lo + k·stride | lo + k·stride ≤ hi}` with sound per-operator
//! approximations; everything else widens to `Top` (unresolved).
//!
//! The solver propagates register files over the [`Cfg`] with three
//! non-standard edge kinds:
//!
//! * **Call edges** (`jal`) carry the caller's exit fact into the
//!   callee with the link register set to the return address. There is
//!   *no* skip edge to the fall-through: return sites are reached only
//!   by the callee's `jalr` flowing back (below), so a non-returning
//!   callee correctly leaves its return site unreached.
//! * **Resolved indirect edges**: when a `jalr`'s target value
//!   enumerates, its exit fact is injected exactly into those target
//!   blocks.
//! * **Unresolved indirect edges**: when it does not, the fact is
//!   injected into every *indirect sink* — the address-taken blocks
//!   plus every call fall-through (the only addresses a well-formed
//!   guest can materialize as code pointers: data words, `li`
//!   immediates, and link-register writes).
//!
//! Loads are resolved in two phases. Phase 1 treats every load as
//! `Top` and collects a sound summary of all store targets (including
//! memory-writing syscalls). Phase 2 re-runs the solver, resolving a
//! load from the program's initial image only when its address set
//! lies inside the static image *and* cannot overlap any phase-1
//! store. Phase 1's facts are the coarsest sound facts, so its store
//! summary over-approximates any execution and one re-run suffices.
//!
//! Two documented assumptions keep the analysis decidable (both are
//! cross-validated at runtime by the soundness oracle in
//! [`crate::plan`]):
//!
//! 1. **Allocation regions** (classic value-set analysis): a widened
//!    store whose base lands inside a named data/bss symbol stays
//!    within that symbol's extent.
//! 2. **Signal entry**: signal handlers run with arbitrary register
//!    state. If the program may issue a `sigaction` syscall, every
//!    address-taken block is given a `Top` boundary; otherwise
//!    address-taken blocks are reached only through tracked `jalr`
//!    facts.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use superpin_isa::{AluOp, Inst, MemWidth, Program, Reg, NUM_REGS};

use crate::cfg::{AnalysisError, BlockId, Cfg, Terminator};

/// Maximum cardinality of an exact [`Value::Set`] before it widens to
/// a strided range.
pub const SET_CAP: usize = 512;
/// Maximum number of addresses enumerated from a range (for load
/// resolution and indirect-edge injection).
pub const ENUM_CAP: u64 = 4096;
/// Cross-product budget for exact `Set × Set` ALU evaluation.
const CROSS_CAP: usize = 4096;
/// Block revisits before interval widening kicks in.
const WIDEN_VISITS: u32 = 8;
/// Block revisits before a still-unstable register is forced to `Top`.
const TOP_VISITS: u32 = 64;

/// SyscallNo::SigAction in the kernel's numbering.
const SYS_SIGACTION: u64 = 11;
/// SyscallNo::Read: writes `[r2, r2 + r3)`.
const SYS_READ: u64 = 2;
/// SyscallNo::GetRandom: writes `[r1, r1 + r2)`.
const SYS_GETRANDOM: u64 = 10;

/// An abstract register value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// No value observed yet (unreached).
    Bottom,
    /// Exactly one of these values (≤ [`SET_CAP`] entries).
    Set(BTreeSet<u64>),
    /// `{lo + k·stride | k ≥ 0, lo + k·stride ≤ hi}`; `lo ≤ hi`,
    /// `stride ≥ 1`, `(hi - lo) % stride == 0`.
    Range { lo: u64, hi: u64, stride: u64 },
    /// Anything.
    Top,
}

fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Value {
    /// A single known constant.
    pub fn constant(v: u64) -> Value {
        Value::Set(BTreeSet::from([v]))
    }

    /// The constant, if this value is a singleton set.
    pub fn as_const(&self) -> Option<u64> {
        match self {
            Value::Set(s) if s.len() == 1 => s.iter().next().copied(),
            _ => None,
        }
    }

    /// Builds a value from an explicit set, widening to a range when
    /// it exceeds [`SET_CAP`].
    pub fn from_set(set: BTreeSet<u64>) -> Value {
        if set.is_empty() {
            return Value::Bottom;
        }
        if set.len() <= SET_CAP {
            return Value::Set(set);
        }
        let lo = *set.iter().next().expect("non-empty");
        let hi = *set.iter().next_back().expect("non-empty");
        let mut stride = 0;
        let mut prev = lo;
        for &v in set.iter().skip(1) {
            stride = gcd(stride, v - prev);
            prev = v;
        }
        Value::Range {
            lo,
            hi,
            stride: stride.max(1),
        }
    }

    /// `(lo, hi, stride)` bounds for any non-`Bottom`, non-`Top`
    /// value. A singleton reports stride 0 — the gcd identity — so
    /// joining a constant into a strided range preserves the range's
    /// stride instead of collapsing it to 1.
    fn bounds(&self) -> Option<(u64, u64, u64)> {
        match self {
            Value::Set(s) => {
                let lo = *s.iter().next()?;
                let hi = *s.iter().next_back()?;
                let mut stride = 0;
                let mut prev = lo;
                for &v in s.iter().skip(1) {
                    stride = gcd(stride, v - prev);
                    prev = v;
                }
                Some((lo, hi, stride))
            }
            Value::Range { lo, hi, stride } => Some((*lo, *hi, *stride)),
            Value::Bottom | Value::Top => None,
        }
    }

    /// Least upper bound.
    pub fn join(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Bottom, v) | (v, Value::Bottom) => v.clone(),
            (Value::Top, _) | (_, Value::Top) => Value::Top,
            (Value::Set(a), Value::Set(b)) if a.len() + b.len() <= SET_CAP => {
                let mut s = a.clone();
                s.extend(b.iter().copied());
                Value::Set(s)
            }
            _ => {
                let (lo1, hi1, s1) = self.bounds().expect("not bottom/top");
                let (lo2, hi2, s2) = other.bounds().expect("not bottom/top");
                let lo = lo1.min(lo2);
                let hi = hi1.max(hi2);
                let stride = gcd(gcd(s1, s2), lo1.abs_diff(lo2)).max(1);
                let hi = lo + ((hi - lo) / stride) * stride;
                Value::Range { lo, hi, stride }
            }
        }
    }

    /// Widening: `new` must already contain `old` (it is
    /// `join(old, incoming)`). Unstable bounds are pushed to the
    /// lattice extremes so ascending chains terminate.
    fn widen(old: &Value, new: &Value) -> Value {
        if old == new {
            return new.clone();
        }
        let (Some((lo_o, hi_o, _)), Some((lo_n, hi_n, s_n))) = (old.bounds(), new.bounds()) else {
            return new.clone(); // Bottom/Top involved: join already final.
        };
        let lo = if lo_n < lo_o { 0 } else { lo_n };
        let stride = s_n.max(1);
        let hi = if hi_n > hi_o {
            lo + ((u64::MAX - lo) / stride) * stride
        } else {
            lo + ((hi_n - lo) / stride) * stride
        };
        Value::Range { lo, hi, stride }
    }

    /// Enumerates the concrete values, if there are at most `cap`.
    pub fn enumerate(&self, cap: u64) -> Option<Vec<u64>> {
        match self {
            Value::Bottom => Some(Vec::new()),
            Value::Set(s) => {
                if s.len() as u64 <= cap {
                    Some(s.iter().copied().collect())
                } else {
                    None
                }
            }
            Value::Range { lo, hi, stride } => {
                // `points + 1` could overflow for a full-width range,
                // so compare before incrementing.
                let points = (hi - lo) / stride;
                if points < cap {
                    Some((0..=points).map(|k| lo + k * stride).collect())
                } else {
                    None
                }
            }
            Value::Top => None,
        }
    }

    /// `self + c` (wrapping constant offset).
    fn add_const(&self, c: u64) -> Value {
        if c == 0 {
            return self.clone();
        }
        match self {
            Value::Bottom => Value::Bottom,
            Value::Top => Value::Top,
            Value::Set(s) => Value::from_set(s.iter().map(|v| v.wrapping_add(c)).collect()),
            Value::Range { lo, hi, stride } => match (lo.checked_add(c), hi.checked_add(c)) {
                (Some(lo), Some(hi)) => Value::Range {
                    lo,
                    hi,
                    stride: *stride,
                },
                // The shifted interval wraps around the address space;
                // a wrapped strided interval is not representable.
                _ => Value::Top,
            },
        }
    }

    /// Applies an ALU operator. `Set × Set` within budget is exact
    /// (via the interpreter's own [`AluOp::apply`]); ranges use sound
    /// per-operator approximations; anything else is `Top`.
    fn alu(op: AluOp, a: &Value, b: &Value) -> Value {
        if matches!(a, Value::Bottom) || matches!(b, Value::Bottom) {
            return Value::Bottom;
        }
        if let (Value::Set(sa), Value::Set(sb)) = (a, b) {
            if sa.len() * sb.len() <= CROSS_CAP {
                let mut out = BTreeSet::new();
                for &x in sa {
                    for &y in sb {
                        out.insert(op.apply(x, y));
                    }
                }
                return Value::from_set(out);
            }
        }
        let ab = a.bounds();
        let bb = b.bounds();
        match op {
            AluOp::Add => match (ab, bb) {
                (Some((lo1, hi1, s1)), Some((lo2, hi2, s2))) => {
                    match (lo1.checked_add(lo2), hi1.checked_add(hi2)) {
                        (Some(lo), Some(hi)) => {
                            let stride = gcd(s1, s2).max(1);
                            Value::Range {
                                lo,
                                hi: lo + ((hi - lo) / stride) * stride,
                                stride,
                            }
                        }
                        _ => Value::Top,
                    }
                }
                _ => Value::Top,
            },
            AluOp::Sub => match (ab, bb) {
                (Some((lo1, hi1, s1)), Some((lo2, hi2, s2))) if lo1 >= hi2 => {
                    let lo = lo1 - hi2;
                    let hi = hi1 - lo2;
                    let stride = gcd(s1, s2).max(1);
                    Value::Range {
                        lo,
                        hi: lo + ((hi - lo) / stride) * stride,
                        stride,
                    }
                }
                _ => Value::Top,
            },
            // x & y ≤ min(x, y) for unsigned values. A constant mask m
            // additionally bounds the result to [0, m].
            AluOp::And => match (a.as_const(), b.as_const(), ab, bb) {
                (Some(m), _, _, _) | (_, Some(m), _, _) => Value::Range {
                    lo: 0,
                    hi: m,
                    stride: 1,
                },
                (_, _, Some((_, hi1, _)), Some((_, hi2, _))) => Value::Range {
                    lo: 0,
                    hi: hi1.min(hi2),
                    stride: 1,
                },
                _ => Value::Top,
            },
            AluOp::Shl => match (ab, b.as_const()) {
                (Some((lo, hi, s)), Some(k)) if k < 64 && (hi << k) >> k == hi => Value::Range {
                    lo: lo << k,
                    hi: hi << k,
                    stride: (s << k).max(1),
                },
                _ => Value::Top,
            },
            AluOp::Shr => match (ab, b.as_const()) {
                (Some((lo, hi, s)), Some(k)) if k < 64 => {
                    let exact = lo.trailing_zeros() as u64 >= k && s.trailing_zeros() as u64 >= k;
                    let lo = lo >> k;
                    let hi = hi >> k;
                    let stride = if exact { (s >> k).max(1) } else { 1 };
                    Value::Range {
                        lo,
                        hi: lo + ((hi - lo) / stride) * stride,
                        stride,
                    }
                }
                _ => Value::Top,
            },
            AluOp::Mul => match (ab, b.as_const(), a.as_const()) {
                (_, Some(c), _) | (_, _, Some(c)) if c == 0 => Value::constant(0),
                (Some((lo, hi, s)), Some(c), _) | (Some((lo, hi, s)), _, Some(c)) => {
                    match (lo.checked_mul(c), hi.checked_mul(c)) {
                        (Some(lo), Some(hi)) => Value::Range {
                            lo,
                            hi,
                            stride: s.saturating_mul(c).max(1),
                        },
                        _ => Value::Top,
                    }
                }
                _ => Value::Top,
            },
            AluOp::Slt | AluOp::Sltu => Value::Range {
                lo: 0,
                hi: 1,
                stride: 1,
            },
            AluOp::Or | AluOp::Xor | AluOp::Divu | AluOp::Remu | AluOp::Sar => Value::Top,
        }
    }
}

/// An abstract register file: one [`Value`] per register.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegFile([Value; NUM_REGS]);

impl RegFile {
    /// All registers `Bottom`.
    fn bottom() -> RegFile {
        RegFile(std::array::from_fn(|_| Value::Bottom))
    }

    /// All registers `Top` (unknown entry state).
    fn top() -> RegFile {
        RegFile(std::array::from_fn(|_| Value::Top))
    }

    /// The abstract value of `reg`.
    pub fn get(&self, reg: Reg) -> &Value {
        &self.0[reg.index()]
    }

    fn set(&mut self, reg: Reg, v: Value) {
        self.0[reg.index()] = v;
    }

    /// Joins `other` into `self`; true if anything changed. Applies
    /// widening per register once `visits` exceeds the thresholds.
    fn join_from(&mut self, other: &RegFile, visits: u32) -> bool {
        let mut changed = false;
        for i in 0..NUM_REGS {
            let joined = self.0[i].join(&other.0[i]);
            if joined != self.0[i] {
                self.0[i] = if visits > TOP_VISITS {
                    Value::Top
                } else if visits > WIDEN_VISITS {
                    Value::widen(&self.0[i], &joined)
                } else {
                    joined
                };
                changed = true;
            }
        }
        changed
    }
}

/// The resolution of one indirect site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TargetSet {
    /// The transfer can only reach these addresses.
    Resolved(BTreeSet<u64>),
    /// The analysis could not bound the target (explicit top).
    Unresolved,
}

impl TargetSet {
    /// True if a dynamic transfer to `addr` is consistent with this
    /// set (`Unresolved` admits anything).
    pub fn admits(&self, addr: u64) -> bool {
        match self {
            TargetSet::Resolved(set) => set.contains(&addr),
            TargetSet::Unresolved => true,
        }
    }
}

/// One abstract store: the byte ranges `[p, p + width)` for every
/// `p ∈ {lo + k·stride ≤ hi}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreRegion {
    /// Lowest store address.
    pub lo: u64,
    /// Highest store address (inclusive).
    pub hi: u64,
    /// Address stride between successive stores.
    pub stride: u64,
    /// Bytes written per store.
    pub width: u64,
}

impl StoreRegion {
    /// True if some store in this region may touch `[a, b)`.
    pub fn may_overlap(&self, a: u64, b: u64) -> bool {
        if a >= b || self.width == 0 {
            return false;
        }
        // A store at p overlaps [a, b) iff p < b and p + width > a,
        // i.e. p ∈ [a - width + 1, b - 1] clamped to [lo, hi].
        let min_p = a.saturating_sub(self.width - 1).max(self.lo);
        let max_p = b.saturating_sub(1).min(self.hi);
        if min_p > max_p {
            return false;
        }
        // Is there a stride point in [min_p, max_p]?
        let k = (min_p - self.lo).div_ceil(self.stride);
        match self.lo.checked_add(k.saturating_mul(self.stride)) {
            Some(p) => p <= max_p,
            None => false,
        }
    }
}

/// Sound over-approximation of every store the program can perform to
/// the static image, including memory-writing syscalls.
#[derive(Clone, Debug, Default)]
pub struct StoreSummary {
    /// Abstract store regions.
    pub regions: Vec<StoreRegion>,
    /// True if some store or syscall buffer could not be bounded; any
    /// address must then be assumed written.
    pub unknown: bool,
}

impl StoreSummary {
    /// True if a store may touch the byte range `[a, b)`.
    pub fn may_write(&self, a: u64, b: u64) -> bool {
        self.unknown || self.regions.iter().any(|r| r.may_overlap(a, b))
    }
}

/// The static image: code, data, and zero-initialized bss, plus the
/// data/bss symbol extents used for the allocation-region assumption.
struct MemImage<'p> {
    program: &'p Program,
    code_lo: u64,
    code_hi: u64, // exclusive
    data_lo: u64,
    data_hi: u64, // exclusive, data bytes only
    bss_hi: u64,  // exclusive, end of zero-initialized storage
    /// Data/bss symbol extents `[start, end)`, sorted by start.
    extents: Vec<(u64, u64)>,
}

impl<'p> MemImage<'p> {
    fn new(program: &'p Program) -> MemImage<'p> {
        let data_lo = program.data_base();
        let data_hi = data_lo + program.data().len() as u64;
        let bss_hi = data_hi + program.bss_len();
        let mut starts: Vec<u64> = program
            .symbols()
            .filter(|s| s.section == superpin_isa::Section::Data)
            .map(|s| s.addr)
            .collect();
        starts.sort_unstable();
        starts.dedup();
        let mut extents = Vec::with_capacity(starts.len());
        for (i, &start) in starts.iter().enumerate() {
            let end = starts.get(i + 1).copied().unwrap_or(bss_hi);
            if end > start {
                extents.push((start, end));
            }
        }
        MemImage {
            program,
            code_lo: program.code_base(),
            code_hi: program.code_base() + program.code_len(),
            data_lo,
            data_hi,
            bss_hi,
            extents,
        }
    }

    /// True if `[addr, addr + len)` lies inside the static image.
    fn in_image(&self, addr: u64, len: u64) -> bool {
        let end = match addr.checked_add(len) {
            Some(end) => end,
            None => return false,
        };
        (addr >= self.code_lo && end <= self.code_hi)
            || (addr >= self.data_lo && end <= self.bss_hi)
    }

    /// Reads `width` bytes from the initial image (bss reads as 0),
    /// zero-extended. `None` outside the image.
    fn read_init(&self, addr: u64, width: MemWidth) -> Option<u64> {
        let len = width.bytes() as u64;
        if !self.in_image(addr, len) {
            return None;
        }
        let mut bytes = [0u8; 8];
        for (i, byte) in bytes.iter_mut().take(width.bytes()).enumerate() {
            let a = addr + i as u64;
            *byte = if a >= self.code_lo && a < self.code_hi {
                self.program.code()[(a - self.code_lo) as usize]
            } else if a >= self.data_lo && a < self.data_hi {
                self.program.data()[(a - self.data_lo) as usize]
            } else {
                0 // bss
            };
        }
        Some(u64::from_le_bytes(bytes))
    }

    /// Clamps a widened store interval to the extent of the data/bss
    /// symbol containing `lo` — the documented allocation-region
    /// assumption. Returns the clamped inclusive upper bound.
    fn clamp_to_extent(&self, lo: u64, hi: u64, stride: u64) -> u64 {
        let Some(&(_, end)) = self.extents.iter().rev().find(|&&(s, e)| s <= lo && lo < e) else {
            return hi;
        };
        if hi < end {
            return hi;
        }
        let stride = stride.max(1);
        lo + ((end - 1 - lo) / stride) * stride
    }

    /// The allocation-region assumption applied to an abstract value:
    /// a widened `Range` whose `lo` sits inside a data/bss symbol
    /// extent is assumed to stay within that allocation, so its upper
    /// bound is pulled back to the extent end. Applied at every join
    /// so loop-carried pointer increments converge inside their
    /// buffer instead of escalating to the full address space (and
    /// then to `Top` via `+c` overflow). Validated dynamically by the
    /// soundness oracle. `None` means "unchanged".
    fn clamp_value(&self, v: &Value) -> Option<Value> {
        let Value::Range { lo, hi, stride } = *v else {
            return None;
        };
        let clamped = self.clamp_to_extent(lo, hi, stride);
        if clamped == hi {
            return None;
        }
        Some(Value::Range {
            lo,
            hi: clamped,
            stride,
        })
    }
}

/// Results of whole-program value analysis.
#[derive(Clone, Debug)]
pub struct TargetResolution {
    /// Per-`jalr` resolution, keyed by the instruction address.
    pub indirect_targets: BTreeMap<u64, TargetSet>,
    /// Sound summary of every store (phase-1, loads-as-`Top` facts).
    pub stores: StoreSummary,
    /// Blocks (by id) reached by the value solver.
    pub reached: Vec<bool>,
    /// True if the program may install a signal handler, forcing a
    /// `Top` boundary on every address-taken block.
    pub signals_possible: bool,
}

impl TargetResolution {
    /// Runs the two-phase whole-program value analysis.
    pub fn compute(program: &Program, cfg: &Cfg) -> TargetResolution {
        let image = MemImage::new(program);
        let signals_possible = may_install_handler(cfg);
        // Phase 1: loads are Top; collect the store summary.
        let mut solver = Solver::new(cfg, &image, signals_possible, None);
        solver.run();
        let stores = solver.collect_stores();
        // Phase 2: resolve loads against the phase-1 summary.
        let mut solver = Solver::new(cfg, &image, signals_possible, Some(&stores));
        solver.run();
        let indirect_targets = solver.site_targets();
        let reached = solver.reached();
        TargetResolution {
            indirect_targets,
            stores,
            reached,
            signals_possible,
        }
    }

    /// Addresses of `jalr` sites the analysis could not resolve.
    pub fn unresolved_sites(&self) -> Vec<u64> {
        self.indirect_targets
            .iter()
            .filter(|(_, t)| **t == TargetSet::Unresolved)
            .map(|(&a, _)| a)
            .collect()
    }
}

/// True if some syscall's number cannot be pinned to a non-`sigaction`
/// constant by the nearest in-block `r0` definition.
fn may_install_handler(cfg: &Cfg) -> bool {
    for block in cfg.blocks() {
        for (i, &(_, inst)) in block.insts.iter().enumerate() {
            if !matches!(inst, Inst::Syscall) {
                continue;
            }
            let mut number = None;
            for &(_, prev) in block.insts[..i].iter().rev() {
                match prev {
                    Inst::Li { rd: Reg::R0, imm } => {
                        number = Some(imm as u64);
                        break;
                    }
                    _ if prev.dest_reg() == Some(Reg::R0) => break,
                    _ => {}
                }
            }
            match number {
                Some(n) if n != SYS_SIGACTION => {}
                _ => return true,
            }
        }
    }
    false
}

/// One abstract interpretation pass over the whole program.
struct Solver<'a> {
    cfg: &'a Cfg,
    image: &'a MemImage<'a>,
    /// Phase-1 store summary; `Some` enables load resolution.
    prior_stores: Option<&'a StoreSummary>,
    entry_facts: Vec<RegFile>,
    reached: Vec<bool>,
    visits: Vec<u32>,
    /// Address-taken blocks ∪ call fall-through blocks: everywhere an
    /// unresolvable `jalr` must be assumed able to land.
    sinks: Vec<BlockId>,
    /// Per-site joined target values, keyed by the `jalr` address.
    targets: BTreeMap<u64, Value>,
    signals_possible: bool,
}

impl<'a> Solver<'a> {
    fn new(
        cfg: &'a Cfg,
        image: &'a MemImage<'a>,
        signals_possible: bool,
        prior_stores: Option<&'a StoreSummary>,
    ) -> Solver<'a> {
        let mut sinks: BTreeSet<BlockId> = cfg.address_taken().iter().copied().collect();
        for block in cfg.blocks() {
            match block.terminator {
                Terminator::Call { fall, .. } | Terminator::IndirectCall { fall } => {
                    if let Some(id) = cfg.block_at(fall) {
                        sinks.insert(id);
                    }
                }
                _ => {}
            }
        }
        Solver {
            cfg,
            image,
            prior_stores,
            entry_facts: vec![RegFile::bottom(); cfg.len()],
            reached: vec![false; cfg.len()],
            visits: vec![0; cfg.len()],
            sinks: sinks.into_iter().collect(),
            targets: BTreeMap::new(),
            signals_possible,
        }
    }

    fn run(&mut self) {
        let mut queue: VecDeque<BlockId> = VecDeque::new();
        let mut queued = vec![false; self.cfg.len()];
        let push = |queue: &mut VecDeque<BlockId>, queued: &mut Vec<bool>, id: BlockId| {
            if !queued[id] {
                queued[id] = true;
                queue.push_back(id);
            }
        };

        // The loader's register state is not modeled: entry begins Top.
        let entry = self.cfg.entry();
        self.reached[entry] = true;
        self.entry_facts[entry] = RegFile::top();
        push(&mut queue, &mut queued, entry);
        if self.signals_possible {
            for &id in self.cfg.address_taken() {
                self.reached[id] = true;
                self.entry_facts[id] = RegFile::top();
                push(&mut queue, &mut queued, id);
            }
        }

        while let Some(id) = queue.pop_front() {
            queued[id] = false;
            self.visits[id] = self.visits[id].saturating_add(1);
            let (out, flows) = self.flow_out(id);
            for (succ, fact) in flows.iter().map(|&s| (s, &out)) {
                if !self.reached[succ] {
                    self.reached[succ] = true;
                    let mut init = fact.clone();
                    self.clamp_alloc(&mut init);
                    self.entry_facts[succ] = init;
                    push(&mut queue, &mut queued, succ);
                } else {
                    let visits = self.visits[succ];
                    let mut merged = self.entry_facts[succ].clone();
                    merged.join_from(fact, visits);
                    // Clamp before the change test: a widened bound
                    // pulled back to its allocation extent must compare
                    // equal to the already-clamped stored fact, or the
                    // widen-then-clamp cycle would requeue forever.
                    self.clamp_alloc(&mut merged);
                    if merged != self.entry_facts[succ] {
                        self.entry_facts[succ] = merged;
                        push(&mut queue, &mut queued, succ);
                    }
                }
            }
        }
    }

    /// Applies the allocation-region assumption to every register of a
    /// boundary fact (see [`MemImage::clamp_value`]).
    fn clamp_alloc(&self, fact: &mut RegFile) {
        for reg in Reg::all() {
            if let Some(clamped) = self.image.clamp_value(fact.get(reg)) {
                fact.set(reg, clamped);
            }
        }
    }

    /// Transfers `block`'s entry fact to its exit and returns the exit
    /// fact plus the successor blocks it flows to (including resolved
    /// or sink-approximated indirect edges). Also folds the block's
    /// `jalr` target value into the per-site map.
    fn flow_out(&mut self, id: BlockId) -> (RegFile, Vec<BlockId>) {
        let cfg = self.cfg;
        let block = &cfg.blocks()[id];
        let mut fact = self.entry_facts[id].clone();
        let mut jalr_target = Value::Bottom;
        for &(addr, inst) in &block.insts {
            if let Inst::Jalr { rs, offset, .. } = inst {
                // Read the target before the link register is written
                // (`jalr rd, rd` is the ret idiom).
                jalr_target = fact.get(rs).add_const(offset as i64 as u64);
            }
            self.transfer(&mut fact, addr, &inst);
        }

        let mut flows = Vec::new();
        let direct = |flows: &mut Vec<BlockId>, target: u64| {
            if let Some(succ) = cfg.block_at(target) {
                flows.push(succ);
            }
        };
        match block.terminator {
            Terminator::Jump(t) => direct(&mut flows, t),
            Terminator::Branch { taken, fall } => {
                direct(&mut flows, taken);
                direct(&mut flows, fall);
            }
            Terminator::FallThrough(fall) | Terminator::Syscall { fall } => {
                direct(&mut flows, fall)
            }
            // No skip edge for calls: the return site is reached by
            // the callee's ret flowing back through the indirect
            // machinery below.
            Terminator::Call { target, .. } => direct(&mut flows, target),
            Terminator::IndirectCall { .. } | Terminator::IndirectJump => {
                let site = block.insts.last().expect("non-empty block").0;
                let seen = self.targets.entry(site).or_insert(Value::Bottom);
                *seen = seen.join(&jalr_target);
                match jalr_target.enumerate(ENUM_CAP) {
                    Some(addrs) => {
                        for addr in addrs {
                            if let Some(succ) = cfg.block_at(addr) {
                                flows.push(succ);
                            }
                        }
                    }
                    None => flows.extend(self.sinks.iter().copied()),
                }
            }
            Terminator::Exit | Terminator::Halt | Terminator::FallOffEnd => {}
        }
        (fact, flows)
    }

    /// Abstractly executes one instruction.
    fn transfer(&self, fact: &mut RegFile, addr: u64, inst: &Inst) {
        match *inst {
            Inst::Nop | Inst::Jmp { .. } | Inst::Branch { .. } | Inst::Halt | Inst::St { .. } => {}
            Inst::Alu { op, rd, rs1, rs2 } => {
                let v = Value::alu(op, fact.get(rs1), fact.get(rs2));
                fact.set(rd, v);
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                let v = Value::alu(op, fact.get(rs1), &Value::constant(imm as i64 as u64));
                fact.set(rd, v);
            }
            Inst::Li { rd, imm } => fact.set(rd, Value::constant(imm as u64)),
            Inst::Mov { rd, rs } => {
                let v = fact.get(rs).clone();
                fact.set(rd, v);
            }
            Inst::Ld {
                rd,
                base,
                offset,
                width,
            } => {
                let addr_val = fact.get(base).add_const(offset as i64 as u64);
                fact.set(rd, self.resolve_load(&addr_val, width));
            }
            Inst::Jal { rd, .. } | Inst::Jalr { rd, .. } => {
                fact.set(rd, Value::constant(addr + inst.size_bytes()));
            }
            // The kernel writes only r0 (the return value); buffer
            // writes go to memory, and signal delivery save/restores
            // the full file transparently.
            Inst::Syscall => fact.set(Reg::R0, Value::Top),
        }
    }

    /// Resolves a load from the initial image when its address set is
    /// enumerable, inside the image, and provably never stored to.
    fn resolve_load(&self, addr_val: &Value, width: MemWidth) -> Value {
        let Some(stores) = self.prior_stores else {
            return Value::Top; // phase 1
        };
        if stores.unknown {
            return Value::Top;
        }
        let Some(addrs) = addr_val.enumerate(ENUM_CAP) else {
            return Value::Top;
        };
        let len = width.bytes() as u64;
        let mut out = BTreeSet::new();
        for a in addrs {
            if !self.image.in_image(a, len) || stores.may_write(a, a + len) {
                return Value::Top;
            }
            match self.image.read_init(a, width) {
                Some(v) => {
                    out.insert(v);
                }
                None => return Value::Top,
            }
        }
        Value::from_set(out)
    }

    /// Walks every reached block's final facts and summarizes all
    /// stores and memory-writing syscalls.
    fn collect_stores(&self) -> StoreSummary {
        let mut summary = StoreSummary::default();
        for (id, block) in self.cfg.blocks().iter().enumerate() {
            if !self.reached[id] {
                continue;
            }
            let mut fact = self.entry_facts[id].clone();
            for &(addr, inst) in &block.insts {
                match inst {
                    Inst::St {
                        base,
                        offset,
                        width,
                        ..
                    } => {
                        let addr_val = fact.get(base).add_const(offset as i64 as u64);
                        self.add_store(&mut summary, &addr_val, width.bytes() as u64);
                    }
                    Inst::Syscall => self.add_syscall_effects(&mut summary, &fact),
                    _ => {}
                }
                self.transfer(&mut fact, addr, &inst);
            }
        }
        summary
    }

    fn add_store(&self, summary: &mut StoreSummary, addr_val: &Value, width: u64) {
        match addr_val.bounds() {
            Some((lo, hi, stride)) => {
                // Allocation-region assumption: clamp a widened store
                // interval to its base symbol's extent.
                let stride = stride.max(1);
                let hi = self.image.clamp_to_extent(lo, hi, stride);
                summary.regions.push(StoreRegion {
                    lo,
                    hi,
                    stride,
                    width,
                });
            }
            None => {
                if !matches!(addr_val, Value::Bottom) {
                    summary.unknown = true;
                }
            }
        }
    }

    /// Adds the guest-memory writes a syscall can perform, based on
    /// the abstract syscall number in `r0`.
    fn add_syscall_effects(&self, summary: &mut StoreSummary, fact: &RegFile) {
        let Some(numbers) = fact.get(Reg::R0).enumerate(64) else {
            summary.unknown = true;
            return;
        };
        for n in numbers {
            let (buf, len) = match n {
                SYS_READ => (Reg::R2, Reg::R3),
                SYS_GETRANDOM => (Reg::R1, Reg::R2),
                _ => continue,
            };
            let buf_val = fact.get(buf);
            let max_len = match fact.get(len).bounds() {
                Some((_, hi, _)) => hi,
                None => {
                    summary.unknown = true;
                    continue;
                }
            };
            if max_len == 0 {
                continue;
            }
            match buf_val.bounds() {
                Some((lo, hi, stride)) => {
                    let stride = stride.max(1);
                    let hi = self.image.clamp_to_extent(lo, hi, stride);
                    summary.regions.push(StoreRegion {
                        lo,
                        hi,
                        stride,
                        width: max_len,
                    });
                }
                None => {
                    if !matches!(buf_val, Value::Bottom) {
                        summary.unknown = true;
                    }
                }
            }
        }
    }

    /// Final per-site target sets.
    fn site_targets(&self) -> BTreeMap<u64, TargetSet> {
        let mut map = BTreeMap::new();
        for (block_id, block) in self.cfg.blocks().iter().enumerate() {
            let is_indirect = matches!(
                block.terminator,
                Terminator::IndirectCall { .. } | Terminator::IndirectJump
            );
            if !is_indirect || !self.reached[block_id] {
                continue;
            }
            let site = block.insts.last().expect("non-empty block").0;
            let resolved = self
                .targets
                .get(&site)
                .and_then(|v| v.enumerate(ENUM_CAP))
                .map(|addrs| TargetSet::Resolved(addrs.into_iter().collect()))
                .unwrap_or(TargetSet::Unresolved);
            map.insert(site, resolved);
        }
        map
    }

    fn reached(&self) -> Vec<bool> {
        self.reached.clone()
    }
}

/// Convenience: builds the CFG and resolves the whole program.
pub fn resolve_targets(program: &Program) -> Result<TargetResolution, AnalysisError> {
    let cfg = Cfg::build(program)?;
    Ok(TargetResolution::compute(program, &cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(vals: &[u64]) -> Value {
        Value::from_set(vals.iter().copied().collect())
    }

    #[test]
    fn join_sets_stays_exact() {
        let j = set(&[1, 5]).join(&set(&[9]));
        assert_eq!(j, set(&[1, 5, 9]));
    }

    #[test]
    fn join_overflow_widens_with_gcd_stride() {
        let a: BTreeSet<u64> = (0..SET_CAP as u64 + 1).map(|k| 100 + 8 * k).collect();
        let v = Value::from_set(a);
        match v {
            Value::Range { lo, hi, stride } => {
                assert_eq!(lo, 100);
                assert_eq!(stride, 8);
                assert_eq!(hi, 100 + 8 * SET_CAP as u64);
            }
            other => panic!("expected range, got {other:?}"),
        }
    }

    #[test]
    fn widen_pushes_unstable_upper_bound() {
        let old = set(&[0, 64]);
        let new = old.join(&set(&[128]));
        let w = Value::widen(&old, &new);
        match w {
            Value::Range { lo, hi, stride } => {
                assert_eq!(lo, 0);
                assert_eq!(stride, 64);
                assert!(hi > u64::MAX - 64);
            }
            other => panic!("expected range, got {other:?}"),
        }
    }

    #[test]
    fn alu_set_set_matches_interpreter() {
        let v = Value::alu(AluOp::Add, &set(&[3, 5]), &set(&[10]));
        assert_eq!(v, set(&[13, 15]));
        let v = Value::alu(AluOp::Divu, &set(&[8]), &set(&[0]));
        assert_eq!(v, set(&[u64::MAX])); // divide-by-zero semantics
    }

    #[test]
    fn and_mask_bounds_any_value() {
        let v = Value::alu(AluOp::And, &Value::Top, &set(&[7]));
        assert_eq!(
            v,
            Value::Range {
                lo: 0,
                hi: 7,
                stride: 1
            }
        );
    }

    #[test]
    fn store_region_overlap_respects_stride() {
        // Stores at 0, 64, 128, ... of width 8.
        let r = StoreRegion {
            lo: 0,
            hi: 640,
            stride: 64,
            width: 8,
        };
        assert!(r.may_overlap(64, 72));
        assert!(r.may_overlap(70, 71)); // tail of the store at 64
        assert!(!r.may_overlap(8, 64)); // gap between stores
        assert!(!r.may_overlap(648, 700)); // past the last store
    }

    #[test]
    fn enumerate_caps() {
        let v = Value::Range {
            lo: 0,
            hi: 8 * (ENUM_CAP + 1),
            stride: 8,
        };
        assert!(v.enumerate(ENUM_CAP).is_none());
        let v = Value::Range {
            lo: 0,
            hi: 16,
            stride: 8,
        };
        assert_eq!(v.enumerate(ENUM_CAP), Some(vec![0, 8, 16]));
    }
}

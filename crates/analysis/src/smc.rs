//! Self-modifying-code region detection.
//!
//! A page is an SMC region when the static analysis shows it may be
//! both *executed* (it holds a reachable basic block) and *written*
//! (the store summary overlaps it). Pages use the VM's 4 KiB granule —
//! the same granule at which the address space bumps its code version,
//! so the dynamic SMC path and the static flag agree on units.
//!
//! The soundness oracle checks every dynamically observed code write
//! against these regions; on the generated workload catalog the set is
//! empty (no workload writes its own code), which is itself asserted
//! by the property suite.

use std::collections::BTreeSet;

use superpin_isa::Program;

use crate::cfg::Cfg;
use crate::targets::StoreSummary;

/// Page size used for SMC granularity.
pub const SMC_PAGE: u64 = 4096;

/// Pages that may be both written and executed.
#[derive(Clone, Debug, Default)]
pub struct SmcRegions {
    /// Page indices (`addr / SMC_PAGE`) flagged as SMC.
    pages: BTreeSet<u64>,
    /// True if an unbounded store forced every executed code page to
    /// be flagged.
    all_code: bool,
}

impl SmcRegions {
    /// Flags pages both executed (reachable code) and written (store
    /// summary).
    pub fn compute(program: &Program, cfg: &Cfg, stores: &StoreSummary) -> SmcRegions {
        let code_lo = program.code_base();
        let code_hi = code_lo + program.code_len();

        // Executed pages: spans of reachable blocks.
        let reachable = cfg.reachable();
        let mut executed: BTreeSet<u64> = BTreeSet::new();
        for (id, block) in cfg.blocks().iter().enumerate() {
            if !reachable[id] || block.insts.is_empty() {
                continue;
            }
            for page in (block.start / SMC_PAGE)..=((block.end() - 1) / SMC_PAGE) {
                executed.insert(page);
            }
        }

        if stores.unknown {
            return SmcRegions {
                pages: executed,
                all_code: true,
            };
        }

        // Written pages within the code section.
        let mut written: BTreeSet<u64> = BTreeSet::new();
        for region in &stores.regions {
            let lo = region.lo.max(code_lo);
            let hi_byte = region.hi.saturating_add(region.width).min(code_hi);
            if lo >= hi_byte {
                continue;
            }
            let count = (region.hi - region.lo) / region.stride.max(1) + 1;
            if count <= (SMC_PAGE / region.stride.max(1)).max(64) {
                // Few distinct stores: flag exactly the pages touched.
                for k in 0..count {
                    let p = region.lo + k * region.stride.max(1);
                    let end = p.saturating_add(region.width);
                    if end <= code_lo || p >= code_hi {
                        continue;
                    }
                    for page in (p.max(code_lo) / SMC_PAGE)..=((end.min(code_hi) - 1) / SMC_PAGE) {
                        written.insert(page);
                    }
                }
            } else {
                // Dense region: flag the whole span.
                for page in (lo / SMC_PAGE)..=((hi_byte - 1) / SMC_PAGE) {
                    written.insert(page);
                }
            }
        }

        SmcRegions {
            pages: executed.intersection(&written).copied().collect(),
            all_code: false,
        }
    }

    /// True if the byte range `[addr, addr + len)` lies entirely
    /// within flagged SMC pages (the check the oracle applies to each
    /// observed code write).
    pub fn covers(&self, addr: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let end = match addr.checked_add(len) {
            Some(end) => end,
            None => return false,
        };
        ((addr / SMC_PAGE)..=((end - 1) / SMC_PAGE)).all(|p| self.pages.contains(&p))
    }

    /// Flagged page indices.
    pub fn pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.pages.iter().copied()
    }

    /// True if no page is flagged.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Number of flagged pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True if an unbounded store degraded the analysis to "every
    /// executed code page might be rewritten".
    pub fn degraded(&self) -> bool {
        self.all_code
    }
}

//! Whole-program analysis aggregate, ahead-of-time superblock
//! planning, and the static↔dynamic soundness oracle.
//!
//! [`ProgramAnalysis`] runs every whole-program pass once: CFG,
//! indirect-target resolution, call graph, dominators, natural loops,
//! and SMC regions. From it:
//!
//! * [`ProgramAnalysis::plan`] derives a [`SuperblockPlan`] — the
//!   artifact the DBI engine consumes. It carries (a) a whole-program
//!   pre-decode of the instruction stream, so planned regions are
//!   decoded once ahead of time instead of per cache miss; (b) the set
//!   of *hot* trace entries predicted from loop nesting depth
//!   ([`PlanKnobs::hot_loop_threshold`]) and bounded by
//!   [`PlanKnobs::max_trace_len`]; and (c) a refined interprocedural
//!   liveness map in which statically resolved `jalr` sites lose the
//!   conservative all-live boundary, enabling save/restore elision
//!   across superblock boundaries. The plan is strictly an execution
//!   accelerator: trace shapes, instrumentation, and charged costs are
//!   identical with planning on or off; only host wall-clock changes.
//! * [`ProgramAnalysis::oracle`] builds a [`SoundnessOracle`]: the
//!   runner (debug builds) validates every dynamically observed
//!   indirect transfer against the static target sets and every code
//!   write against the SMC regions. A violation is an analysis
//!   soundness bug and fails loudly.

use std::collections::{BTreeSet, HashMap};
use std::sync::Mutex;

use superpin_isa::{Inst, Program};

use crate::callgraph::CallGraph;
use crate::cfg::{AnalysisError, Cfg, Terminator};
use crate::dom::Dominators;
use crate::liveness::LiveMap;
use crate::loops::LoopNest;
use crate::smc::SmcRegions;
use crate::targets::{TargetResolution, TargetSet};

/// Tuning knobs for superblock planning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanKnobs {
    /// Minimum loop nesting depth for a block to be predicted hot.
    pub hot_loop_threshold: u32,
    /// Planned entries whose block exceeds this instruction count are
    /// dropped from the plan (they gain little from pre-decode and
    /// bloat it).
    pub max_trace_len: usize,
}

impl Default for PlanKnobs {
    fn default() -> PlanKnobs {
        PlanKnobs {
            hot_loop_threshold: 1,
            max_trace_len: 96,
        }
    }
}

/// Every whole-program static analysis result in one place.
pub struct ProgramAnalysis {
    /// The whole-program CFG.
    pub cfg: Cfg,
    /// Indirect-target resolution and the store summary.
    pub targets: TargetResolution,
    /// The recovered call graph.
    pub callgraph: CallGraph,
    /// Dominator sets over `cfg`.
    pub doms: Dominators,
    /// Natural loops and per-block nesting depth.
    pub loops: LoopNest,
    /// Pages that may be both written and executed.
    pub smc: SmcRegions,
}

impl ProgramAnalysis {
    /// Runs all whole-program passes over `program`.
    pub fn compute(program: &Program) -> Result<ProgramAnalysis, AnalysisError> {
        let cfg = Cfg::build(program)?;
        let targets = TargetResolution::compute(program, &cfg);
        let callgraph = CallGraph::build(program, &cfg, &targets);
        let doms = Dominators::compute(&cfg);
        let loops = LoopNest::compute(&cfg, &doms);
        let smc = SmcRegions::compute(program, &cfg, &targets.stores);
        Ok(ProgramAnalysis {
            cfg,
            targets,
            callgraph,
            doms,
            loops,
            smc,
        })
    }

    /// Block ids whose indirect terminator is fully resolved to block
    /// starts (every static target begins a block), paired with the
    /// extra CFG edges those resolutions induce.
    fn resolved_indirect_edges(&self) -> (BTreeSet<usize>, Vec<(usize, usize)>) {
        let mut resolved = BTreeSet::new();
        let mut edges = Vec::new();
        for (id, block) in self.cfg.blocks().iter().enumerate() {
            if !matches!(
                block.terminator,
                Terminator::IndirectCall { .. } | Terminator::IndirectJump
            ) {
                continue;
            }
            let site = block.insts.last().expect("non-empty block").0;
            let Some(TargetSet::Resolved(set)) = self.targets.indirect_targets.get(&site) else {
                continue;
            };
            let targets: Option<Vec<usize>> =
                set.iter().map(|&addr| self.cfg.block_at(addr)).collect();
            // A resolved target that is not a block start would leave
            // the refinement with a dangling edge; keep the
            // conservative boundary instead.
            let Some(targets) = targets else { continue };
            resolved.insert(id);
            edges.extend(targets.into_iter().map(|t| (id, t)));
        }
        (resolved, edges)
    }

    /// Interprocedurally refined per-instruction liveness: resolved
    /// `jalr` sites propagate liveness through their static targets
    /// instead of assuming everything live. Sound only together with
    /// the oracle-checked target sets.
    pub fn refined_liveness(&self) -> LiveMap {
        let (resolved, edges) = self.resolved_indirect_edges();
        let augmented = self.cfg.with_extra_edges(&edges);
        LiveMap::from_cfg_refined(&augmented, &resolved)
    }

    /// Derives the ahead-of-time superblock plan.
    pub fn plan(&self, knobs: PlanKnobs) -> SuperblockPlan {
        let reachable = self.cfg.reachable();
        let mut decoded = HashMap::new();
        let mut hot_entries = BTreeSet::new();
        for (id, block) in self.cfg.blocks().iter().enumerate() {
            if !reachable[id] {
                continue;
            }
            for &(addr, inst) in &block.insts {
                decoded.insert(addr, (inst, inst.size_bytes()));
            }
            let hot = self.loops.depth(id) >= knobs.hot_loop_threshold.max(1);
            if hot && block.insts.len() <= knobs.max_trace_len {
                hot_entries.insert(block.start);
            }
        }
        SuperblockPlan {
            knobs,
            decoded,
            hot_entries,
            refined_live: std::sync::Arc::new(self.refined_liveness()),
        }
    }

    /// Builds the runtime soundness oracle for this analysis.
    pub fn oracle(&self) -> SoundnessOracle {
        SoundnessOracle {
            targets: self.targets.indirect_targets.clone(),
            smc: self.smc.clone(),
            violations: Mutex::new(Vec::new()),
        }
    }
}

/// The ahead-of-time execution plan the DBI engine consumes.
#[derive(Clone, Debug)]
pub struct SuperblockPlan {
    knobs: PlanKnobs,
    /// Whole-program pre-decode: address → (instruction, size).
    decoded: HashMap<u64, (Inst, u64)>,
    /// Trace entry addresses predicted hot.
    hot_entries: BTreeSet<u64>,
    /// Interprocedurally refined liveness for save/restore elision,
    /// shared (`Arc`) so every slice engine of a run can install it
    /// without deep-copying the per-instruction sets.
    refined_live: std::sync::Arc<LiveMap>,
}

impl SuperblockPlan {
    /// The knobs the plan was built with.
    pub fn knobs(&self) -> PlanKnobs {
        self.knobs
    }

    /// The pre-decoded instruction at `addr`, if planned.
    pub fn lookup(&self, addr: u64) -> Option<(Inst, u64)> {
        self.decoded.get(&addr).copied()
    }

    /// True if `addr` is a predicted-hot trace entry.
    pub fn is_hot(&self, addr: u64) -> bool {
        self.hot_entries.contains(&addr)
    }

    /// Number of predicted-hot trace entries.
    pub fn num_hot(&self) -> usize {
        self.hot_entries.len()
    }

    /// Number of pre-decoded instructions.
    pub fn num_decoded(&self) -> usize {
        self.decoded.len()
    }

    /// The refined liveness map for interprocedural spill elision.
    pub fn refined_liveness(&self) -> &LiveMap {
        &self.refined_live
    }

    /// Shared handle to the refined liveness map (what the DBI code
    /// cache installs).
    pub fn refined_liveness_arc(&self) -> std::sync::Arc<LiveMap> {
        std::sync::Arc::clone(&self.refined_live)
    }
}

/// One observed divergence between static analysis and execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OracleViolation {
    /// A `jalr` at `site` reached `dest`, outside its resolved set.
    Transfer { site: u64, dest: u64 },
    /// A `jalr` at `site` was never analyzed (reached dynamically but
    /// not statically).
    UnknownSite { site: u64, dest: u64 },
    /// A code write touched `[addr, addr + len)` outside every
    /// flagged SMC region.
    CodeWrite { addr: u64, len: u64 },
}

impl std::fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleViolation::Transfer { site, dest } => {
                write!(
                    f,
                    "jalr at {site:#x} reached {dest:#x} outside its static target set"
                )
            }
            OracleViolation::UnknownSite { site, dest } => {
                write!(
                    f,
                    "jalr at {site:#x} (reached {dest:#x}) was never statically analyzed"
                )
            }
            OracleViolation::CodeWrite { addr, len } => {
                write!(
                    f,
                    "code write [{addr:#x}, +{len}) outside every static SMC region"
                )
            }
        }
    }
}

/// Cross-validates dynamic execution against static analysis.
///
/// Shared (`Arc`) across every engine of a run; checks record
/// violations and return whether the observation was admitted so
/// callers can `debug_assert!` on the spot.
#[derive(Debug)]
pub struct SoundnessOracle {
    targets: std::collections::BTreeMap<u64, TargetSet>,
    smc: SmcRegions,
    violations: Mutex<Vec<OracleViolation>>,
}

impl SoundnessOracle {
    /// Validates a dynamic `jalr` transfer `site → dest`. True if the
    /// static analysis admits it.
    pub fn check_transfer(&self, site: u64, dest: u64) -> bool {
        let violation = match self.targets.get(&site) {
            Some(set) if set.admits(dest) => return true,
            Some(_) => OracleViolation::Transfer { site, dest },
            None => OracleViolation::UnknownSite { site, dest },
        };
        self.violations.lock().expect("oracle lock").push(violation);
        false
    }

    /// Validates a dynamic write to code bytes `[addr, addr + len)`.
    /// True if the static SMC regions cover it.
    pub fn check_code_write(&self, addr: u64, len: u64) -> bool {
        if self.smc.covers(addr, len) {
            return true;
        }
        self.violations
            .lock()
            .expect("oracle lock")
            .push(OracleViolation::CodeWrite { addr, len });
        false
    }

    /// All recorded violations, in observation order.
    pub fn violations(&self) -> Vec<OracleViolation> {
        self.violations.lock().expect("oracle lock").clone()
    }

    /// True if nothing unsound was ever observed.
    pub fn is_clean(&self) -> bool {
        self.violations.lock().expect("oracle lock").is_empty()
    }
}

//! Natural-loop discovery and per-block nesting depth.
//!
//! Loops are recovered from dominator back edges (`u → v` with `v`
//! dominating `u`): the natural loop of a back edge is `v` plus every
//! block that reaches `u` backwards without passing through `v`.
//! Loops sharing a header are merged. A block's nesting depth is the
//! number of distinct loop headers whose loop contains it — the static
//! hotness signal the superblock planner keys on. Irreducible regions
//! (multi-entry cycles) produce no back edge and simply keep depth 0;
//! they are tolerated, not misclassified.

use std::collections::BTreeMap;

use crate::bits::Bits;
use crate::cfg::{BlockId, Cfg};
use crate::dom::Dominators;

/// One natural loop.
#[derive(Clone, Debug)]
pub struct NaturalLoop {
    /// The loop header (dominates every block in the body).
    pub header: BlockId,
    /// Body membership bitset, including the header.
    pub body: Bits,
}

/// All natural loops of a CFG plus per-block nesting depth.
#[derive(Clone, Debug)]
pub struct LoopNest {
    loops: Vec<NaturalLoop>,
    depth: Vec<u32>,
}

impl LoopNest {
    /// Finds the natural loops of `cfg` using `doms`.
    pub fn compute(cfg: &Cfg, doms: &Dominators) -> LoopNest {
        // Merge back edges per header, then flood each loop body.
        let mut latches: BTreeMap<BlockId, Vec<BlockId>> = BTreeMap::new();
        for (u, v) in doms.back_edges(cfg) {
            latches.entry(v).or_default().push(u);
        }

        let mut loops = Vec::new();
        let mut depth = vec![0u32; cfg.len()];
        for (header, latches) in latches {
            let mut body = Bits::empty(cfg.len());
            body.insert(header);
            let mut stack = Vec::new();
            for latch in latches {
                if !body.contains(latch) {
                    body.insert(latch);
                    stack.push(latch);
                }
            }
            while let Some(id) = stack.pop() {
                for &pred in &cfg.blocks()[id].preds {
                    if !body.contains(pred) {
                        body.insert(pred);
                        stack.push(pred);
                    }
                }
            }
            for id in body.iter() {
                depth[id] += 1;
            }
            loops.push(NaturalLoop { header, body });
        }

        LoopNest { loops, depth }
    }

    /// The discovered loops, in header order.
    pub fn loops(&self) -> &[NaturalLoop] {
        &self.loops
    }

    /// Loop nesting depth of `block` (0 = not in any natural loop).
    pub fn depth(&self, block: BlockId) -> u32 {
        self.depth[block]
    }

    /// The deepest nesting level in the program.
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// True if `block` is a loop header.
    pub fn is_header(&self, block: BlockId) -> bool {
        self.loops.iter().any(|l| l.header == block)
    }
}

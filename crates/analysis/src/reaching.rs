//! Reaching definitions.
//!
//! Forward may-analysis over definition sites: a definition *reaches*
//! a point if some path from the definition to the point does not
//! redefine the register. Two kinds of synthetic definitions model
//! values that flow in from outside the code:
//!
//! - [`DefSite::Entry`] — the register's value at process start. The
//!   loader contract pins `r0` (zero), `sp`, and `fp`; everything else
//!   is incidentally zero, and a read reached only by such an entry
//!   definition is what the undefined-read lint reports.
//! - [`DefSite::IndirectEntry`] — the register's value on arrival at
//!   an address-taken block through a `jalr`. The caller is unknown,
//!   so these are conservatively assumed to be real definitions
//!   (flagging them would condemn every register read in every
//!   indirectly-called function).

use std::collections::HashMap;

use superpin_isa::{Reg, NUM_REGS};

use crate::bits::Bits;
use crate::cfg::{BlockId, Cfg};
use crate::dataflow::{solve, Direction, Problem, Solution};
use crate::liveness::inst_defs;

/// A definition site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DefSite {
    /// The register's value at process start.
    Entry(Reg),
    /// The register's (unknown) value on indirect entry to an
    /// address-taken block.
    IndirectEntry(Reg),
    /// A write by the instruction at `addr`.
    Inst { addr: u64, reg: Reg },
}

impl DefSite {
    /// The register this definition writes.
    pub fn reg(self) -> Reg {
        match self {
            DefSite::Entry(reg) | DefSite::IndirectEntry(reg) | DefSite::Inst { reg, .. } => reg,
        }
    }
}

struct DefUniverse {
    /// Def id -> site. Ids `0..NUM_REGS` are `Entry`, the next
    /// `NUM_REGS` are `IndirectEntry`, the rest instruction writes.
    sites: Vec<DefSite>,
    /// (addr, reg) -> def id.
    by_inst: HashMap<(u64, Reg), usize>,
    /// Per register: every def id that writes it (the kill mask).
    kill: Vec<Bits>,
}

impl DefUniverse {
    fn build(cfg: &Cfg) -> DefUniverse {
        let mut sites: Vec<DefSite> = Vec::new();
        for reg in Reg::all() {
            sites.push(DefSite::Entry(reg));
        }
        for reg in Reg::all() {
            sites.push(DefSite::IndirectEntry(reg));
        }
        let mut by_inst = HashMap::new();
        for block in cfg.blocks() {
            for &(addr, inst) in &block.insts {
                for reg in inst_defs(inst).iter() {
                    by_inst.insert((addr, reg), sites.len());
                    sites.push(DefSite::Inst { addr, reg });
                }
            }
        }
        let mut kill = vec![Bits::empty(sites.len()); NUM_REGS];
        for (id, site) in sites.iter().enumerate() {
            kill[site.reg().index()].insert(id);
        }
        DefUniverse {
            sites,
            by_inst,
            kill,
        }
    }

    fn len(&self) -> usize {
        self.sites.len()
    }

    /// Applies one instruction's effect to a reaching set.
    fn transfer_inst(&self, bits: &mut Bits, addr: u64, defs: crate::regset::RegSet) {
        for reg in defs.iter() {
            bits.subtract(&self.kill[reg.index()]);
            bits.insert(self.by_inst[&(addr, reg)]);
        }
    }
}

struct ReachingProblem<'a> {
    universe: &'a DefUniverse,
}

impl Problem for ReachingProblem<'_> {
    type Fact = Bits;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn init(&self, _cfg: &Cfg) -> Bits {
        Bits::empty(self.universe.len())
    }

    fn boundary(&self, cfg: &Cfg, block: BlockId) -> Option<Bits> {
        let is_entry = block == cfg.entry();
        let is_taken = cfg.address_taken().contains(&block);
        if !is_entry && !is_taken {
            return None;
        }
        let mut bits = Bits::empty(self.universe.len());
        if is_entry {
            for id in 0..NUM_REGS {
                bits.insert(id); // Entry defs
            }
        }
        if is_taken {
            for id in NUM_REGS..2 * NUM_REGS {
                bits.insert(id); // IndirectEntry defs
            }
        }
        Some(bits)
    }

    fn merge(&self, acc: &mut Bits, edge: &Bits) {
        acc.union_with(edge);
    }

    fn transfer(&self, cfg: &Cfg, block: BlockId, input: &Bits) -> Bits {
        let mut bits = input.clone();
        for &(addr, inst) in &cfg.blocks()[block].insts {
            self.universe
                .transfer_inst(&mut bits, addr, inst_defs(inst));
        }
        bits
    }
}

/// Solved reaching definitions for a CFG.
pub struct ReachingDefs {
    universe: DefUniverse,
    solution: Solution<Bits>,
}

impl ReachingDefs {
    /// Solves reaching definitions over `cfg`.
    pub fn compute(cfg: &Cfg) -> ReachingDefs {
        let universe = DefUniverse::build(cfg);
        let solution = solve(
            cfg,
            &ReachingProblem {
                universe: &universe,
            },
        );
        ReachingDefs { universe, solution }
    }

    /// The definitions of `reg` reaching the instruction at `addr`
    /// (before it executes). Returns an empty list for addresses
    /// outside the CFG.
    pub fn defs_reaching(&self, cfg: &Cfg, addr: u64, reg: Reg) -> Vec<DefSite> {
        let Some(block) = cfg.block_containing(addr) else {
            return Vec::new();
        };
        let mut bits = self.solution.entry[block].clone();
        for &(inst_addr, inst) in &cfg.blocks()[block].insts {
            if inst_addr == addr {
                break;
            }
            self.universe
                .transfer_inst(&mut bits, inst_addr, inst_defs(inst));
        }
        bits.intersect_with(&self.universe.kill[reg.index()]);
        bits.iter().map(|id| self.universe.sites[id]).collect()
    }

    /// True if the value of `reg` at `addr` may still be the
    /// uninitialized process-start value for a register the loader
    /// does not pin.
    pub fn maybe_uninit_read(&self, cfg: &Cfg, addr: u64, reg: Reg) -> bool {
        if loader_defined().contains(reg) {
            return false;
        }
        self.defs_reaching(cfg, addr, reg)
            .iter()
            .any(|site| matches!(site, DefSite::Entry(_)))
    }
}

/// Registers the loader contract defines at process start: `r0` is the
/// architectural zero by convention (every generated program relies on
/// `bne rX, r0`-style comparisons), and `sp`/`fp` point at the stack.
/// All other registers happen to be zeroed but carry no meaning.
pub fn loader_defined() -> crate::regset::RegSet {
    crate::regset::RegSet::from_regs(&[Reg::R0, Reg::SP, Reg::FP])
}

//! Static lints over a program's CFG and dataflow facts.
//!
//! [`run_lints`] runs five checks and returns a [`LintReport`]:
//!
//! | lint | severity | backed by |
//! |------|----------|-----------|
//! | fall-off-end        | error   | CFG terminators |
//! | undefined-read      | warning | reaching definitions |
//! | unreachable-block   | warning | CFG reachability |
//! | stack-imbalance     | warning | SP-offset dataflow + dominators |
//! | dead-store          | info    | liveness |
//!
//! Errors and warnings indicate real defects; info findings are
//! advisory (a dead store is legal, just wasted work). The severity
//! split is what the workload-lint test keys on: generated benchmarks
//! must be free of errors and warnings.

use std::fmt;

use superpin_isa::{AluOp, Inst, Program, Reg};

use crate::cfg::{AnalysisError, Cfg, Terminator};
use crate::dataflow::{solve, Direction, Problem};
use crate::dom::Dominators;
use crate::liveness::LiveMap;
use crate::reaching::ReachingDefs;
use crate::regset::RegSet;

/// How serious a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Error,
    Warning,
    Info,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
            Severity::Info => write!(f, "info"),
        }
    }
}

/// Which lint produced a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LintKind {
    UndefinedRead,
    UnreachableBlock,
    FallOffEnd,
    StackImbalance,
    DeadStore,
    /// Whole-program: a recovered function no call path can reach.
    UnreachableFunction,
    /// Whole-program: a `jalr` whose target set could not be bounded.
    UnresolvedIndirect,
    /// Whole-program: a self-modifying-code page inside a hot loop.
    SmcOverlapsHotLoop,
}

impl LintKind {
    /// Stable kebab-case name, used in CLI output.
    pub fn slug(self) -> &'static str {
        match self {
            LintKind::UndefinedRead => "undefined-read",
            LintKind::UnreachableBlock => "unreachable-block",
            LintKind::FallOffEnd => "fall-off-end",
            LintKind::StackImbalance => "stack-imbalance",
            LintKind::DeadStore => "dead-store",
            LintKind::UnreachableFunction => "unreachable-function",
            LintKind::UnresolvedIndirect => "unresolved-indirect",
            LintKind::SmcOverlapsHotLoop => "smc-overlaps-hot-loop",
        }
    }

    /// The severity every finding of this kind carries.
    pub fn severity(self) -> Severity {
        match self {
            LintKind::FallOffEnd | LintKind::SmcOverlapsHotLoop => Severity::Error,
            LintKind::UndefinedRead
            | LintKind::UnreachableBlock
            | LintKind::StackImbalance
            | LintKind::UnreachableFunction
            | LintKind::UnresolvedIndirect => Severity::Warning,
            LintKind::DeadStore => Severity::Info,
        }
    }
}

/// A single lint finding, anchored to an instruction address.
#[derive(Clone, Debug)]
pub struct Finding {
    pub kind: LintKind,
    pub addr: u64,
    pub message: String,
}

impl Finding {
    /// The finding's severity (determined by its kind).
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {:#x}: {}",
            self.severity(),
            self.kind.slug(),
            self.addr,
            self.message
        )
    }
}

/// All findings for one program, sorted by address.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    findings: Vec<Finding>,
}

impl LintReport {
    /// Every finding, in address order.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// Findings of one kind.
    pub fn of_kind(&self, kind: LintKind) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.kind == kind)
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of info-severity findings.
    pub fn infos(&self) -> usize {
        self.count(Severity::Info)
    }

    fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity() == severity)
            .count()
    }

    /// True if the program has no errors or warnings (info findings
    /// are advisory and do not break cleanliness).
    pub fn is_clean(&self) -> bool {
        self.errors() == 0 && self.warnings() == 0
    }
}

/// Runs every lint against `program`.
pub fn run_lints(program: &Program) -> Result<LintReport, AnalysisError> {
    let cfg = Cfg::build(program)?;
    let mut findings = Vec::new();
    lint_fall_off_end(&cfg, &mut findings);
    lint_undefined_reads(&cfg, &mut findings);
    lint_unreachable(&cfg, &mut findings);
    lint_stack_imbalance(&cfg, &mut findings);
    lint_dead_stores(&cfg, &mut findings);
    findings.sort_by_key(|f| (f.addr, f.kind.slug()));
    Ok(LintReport { findings })
}

/// Runs the whole-program lints (on top of [`run_lints`]'s per-block
/// checks): unreachable functions, unresolved indirect transfers, and
/// SMC pages overlapping hot loops.
pub fn run_whole_program_lints(program: &Program) -> Result<LintReport, AnalysisError> {
    let analysis = crate::plan::ProgramAnalysis::compute(program)?;
    let mut report = run_lints(program)?;
    let mut findings = std::mem::take(&mut report.findings);

    for func in analysis.callgraph.unreachable_funcs() {
        let label = match &func.name {
            Some(name) => format!("function `{name}`"),
            None => "function".to_owned(),
        };
        findings.push(Finding {
            kind: LintKind::UnreachableFunction,
            addr: func.entry,
            message: format!("{label} is never reached from the program entry"),
        });
    }

    for site in analysis.targets.unresolved_sites() {
        findings.push(Finding {
            kind: LintKind::UnresolvedIndirect,
            addr: site,
            message: "indirect transfer target set could not be statically bounded".to_owned(),
        });
    }

    // SMC pages are errors when they overlap a block inside a natural
    // loop: the engine must flush its code cache (and discard its
    // plan) on every rewrite, so self-modifying hot code forfeits the
    // entire point of trace caching.
    let reachable = analysis.cfg.reachable();
    for (id, block) in analysis.cfg.blocks().iter().enumerate() {
        if !reachable[id] || analysis.loops.depth(id) == 0 || block.insts.is_empty() {
            continue;
        }
        if analysis.smc.covers(block.start, 1) || analysis.smc.covers(block.end() - 1, 1) {
            findings.push(Finding {
                kind: LintKind::SmcOverlapsHotLoop,
                addr: block.start,
                message: format!(
                    "block at loop depth {} sits on a page the program may rewrite",
                    analysis.loops.depth(id)
                ),
            });
        }
    }

    findings.sort_by_key(|f| (f.addr, f.kind.slug()));
    Ok(LintReport { findings })
}

// --- fall-off-end ---------------------------------------------------------

fn lint_fall_off_end(cfg: &Cfg, findings: &mut Vec<Finding>) {
    for block in cfg.blocks() {
        let last_addr = block
            .insts
            .last()
            .map(|&(addr, _)| addr)
            .unwrap_or(block.start);
        match block.terminator {
            Terminator::FallOffEnd => findings.push(Finding {
                kind: LintKind::FallOffEnd,
                addr: last_addr,
                message: "execution falls off the end of the code section".to_owned(),
            }),
            Terminator::Jump(target)
            | Terminator::Branch { taken: target, .. }
            | Terminator::Call { target, .. }
                if cfg.block_at(target).is_none() =>
            {
                findings.push(Finding {
                    kind: LintKind::FallOffEnd,
                    addr: last_addr,
                    message: format!("control transfers to {target:#x}, outside the code section"),
                });
            }
            Terminator::Branch { fall, .. } if cfg.block_at(fall).is_none() => {
                findings.push(Finding {
                    kind: LintKind::FallOffEnd,
                    addr: last_addr,
                    message: "branch fall-through runs off the end of the code section".to_owned(),
                });
            }
            _ => {}
        }
    }
}

// --- undefined-read -------------------------------------------------------

/// Registers `inst` architecturally reads, for the undefined-read
/// lint. Unlike [`crate::liveness::inst_uses`] this does not inflate
/// `jalr` to the full set (the continuation's reads are its own), and
/// it narrows `syscall` to the argument registers the kernel actually
/// consumes when the syscall number is a visible in-block `li r0, N`.
fn lint_uses(block_insts: &[(u64, Inst)], idx: usize) -> RegSet {
    let (_, inst) = block_insts[idx];
    match inst {
        Inst::Syscall => crate::liveness::syscall_uses(block_insts, idx),
        _ => RegSet::from_regs(&inst.src_regs()),
    }
}

fn lint_undefined_reads(cfg: &Cfg, findings: &mut Vec<Finding>) {
    let reaching = ReachingDefs::compute(cfg);
    let reachable = cfg.reachable();
    for (id, block) in cfg.blocks().iter().enumerate() {
        if !reachable[id] {
            continue;
        }
        for idx in 0..block.insts.len() {
            let (addr, _) = block.insts[idx];
            for reg in lint_uses(&block.insts, idx).iter() {
                if reaching.maybe_uninit_read(cfg, addr, reg) {
                    findings.push(Finding {
                        kind: LintKind::UndefinedRead,
                        addr,
                        message: format!(
                            "{reg} may be read before any write reaches this instruction"
                        ),
                    });
                }
            }
        }
    }
}

// --- unreachable-block ----------------------------------------------------

fn lint_unreachable(cfg: &Cfg, findings: &mut Vec<Finding>) {
    let reachable = cfg.reachable();
    for (id, block) in cfg.blocks().iter().enumerate() {
        if !reachable[id] {
            findings.push(Finding {
                kind: LintKind::UnreachableBlock,
                addr: block.start,
                message: format!(
                    "block is unreachable from the entry point and all indirect targets \
                     ({} instructions)",
                    block.insts.len()
                ),
            });
        }
    }
}

// --- stack-imbalance ------------------------------------------------------

/// Abstract stack-pointer offset relative to the value at entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SpFact {
    /// No path reaches here yet (lattice bottom).
    Unreached,
    /// SP is the entry value plus a known constant.
    Known(i64),
    /// SP was rewritten in a way the analysis cannot track.
    Unknown,
    /// Predecessors disagree on a known offset — the defect.
    Conflict,
}

struct SpProblem;

impl Problem for SpProblem {
    type Fact = SpFact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn init(&self, _cfg: &Cfg) -> SpFact {
        SpFact::Unreached
    }

    fn boundary(&self, cfg: &Cfg, block: crate::cfg::BlockId) -> Option<SpFact> {
        if block == cfg.entry() {
            Some(SpFact::Known(0))
        } else if cfg.address_taken().contains(&block) {
            // Indirect entries arrive with whatever offset the caller
            // had; unknown, but not a defect.
            Some(SpFact::Unknown)
        } else {
            None
        }
    }

    fn merge(&self, acc: &mut SpFact, edge: &SpFact) {
        *acc = merge_sp(*acc, *edge);
    }

    fn transfer(&self, cfg: &Cfg, block: crate::cfg::BlockId, input: &SpFact) -> SpFact {
        let mut fact = *input;
        for &(_, inst) in &cfg.blocks()[block].insts {
            fact = sp_transfer(fact, inst);
        }
        fact
    }
}

fn merge_sp(a: SpFact, b: SpFact) -> SpFact {
    match (a, b) {
        (SpFact::Unreached, x) | (x, SpFact::Unreached) => x,
        (SpFact::Conflict, _) | (_, SpFact::Conflict) => SpFact::Conflict,
        (SpFact::Unknown, _) | (_, SpFact::Unknown) => SpFact::Unknown,
        (SpFact::Known(x), SpFact::Known(y)) => {
            if x == y {
                SpFact::Known(x)
            } else {
                SpFact::Conflict
            }
        }
    }
}

fn sp_transfer(fact: SpFact, inst: Inst) -> SpFact {
    if !crate::liveness::inst_defs(inst).contains(Reg::SP) {
        return fact;
    }
    let offset = match fact {
        SpFact::Known(offset) => offset,
        other => return other, // adjusting an untracked SP stays untracked
    };
    match inst {
        Inst::AluImm {
            op: AluOp::Add,
            rd: Reg::SP,
            rs1: Reg::SP,
            imm,
        } => SpFact::Known(offset + imm as i64),
        Inst::AluImm {
            op: AluOp::Sub,
            rd: Reg::SP,
            rs1: Reg::SP,
            imm,
        } => SpFact::Known(offset - imm as i64),
        Inst::Mov {
            rd: Reg::SP,
            rs: Reg::SP,
        } => SpFact::Known(offset),
        _ => SpFact::Unknown,
    }
}

fn lint_stack_imbalance(cfg: &Cfg, findings: &mut Vec<Finding>) {
    let solution = solve(cfg, &SpProblem);
    let dominators = Dominators::compute(cfg);
    let back_edges = dominators.back_edges(cfg);
    let reachable = cfg.reachable();
    for (id, block) in cfg.blocks().iter().enumerate() {
        if !reachable[id] || solution.entry[id] != SpFact::Conflict {
            continue;
        }
        // Report where tracking breaks down, not everywhere the
        // conflict propagates: some path must still arrive here with a
        // concrete offset. Blocks fed only by already-conflicted
        // predecessors are downstream noise.
        let tracked_arrival = block
            .preds
            .iter()
            .any(|&pred| matches!(solution.exit[pred], SpFact::Known(_)))
            || matches!(SpProblem.boundary(cfg, id), Some(SpFact::Known(_)));
        if !tracked_arrival {
            continue;
        }
        let via_loop = back_edges.iter().any(|&(_, to)| to == id);
        let detail = if via_loop {
            " (a loop shifts the stack pointer on every iteration)"
        } else {
            ""
        };
        findings.push(Finding {
            kind: LintKind::StackImbalance,
            addr: block.start,
            message: format!("predecessors reach this block with different stack offsets{detail}"),
        });
    }
}

// --- dead-store -----------------------------------------------------------

fn lint_dead_stores(cfg: &Cfg, findings: &mut Vec<Finding>) {
    let live = LiveMap::from_cfg(cfg);
    let reachable = cfg.reachable();
    for (id, block) in cfg.blocks().iter().enumerate() {
        if !reachable[id] {
            continue;
        }
        for &(addr, inst) in &block.insts {
            // Only pure register writes: loads can fault and control
            // transfers write link registers as a side effect.
            let is_pure_write = matches!(
                inst,
                Inst::Alu { .. } | Inst::AluImm { .. } | Inst::Li { .. } | Inst::Mov { .. }
            );
            if !is_pure_write {
                continue;
            }
            let rd = inst.dest_reg().expect("pure writes have a destination");
            if !live.live_after(addr).contains(rd) {
                findings.push(Finding {
                    kind: LintKind::DeadStore,
                    addr,
                    message: format!("value written to {rd} is never read"),
                });
            }
        }
    }
}

//! Basic-block discovery and control-flow graph construction.
//!
//! A [`Cfg`] is built from a decoded [`Program`] by a linear sweep:
//! every instruction is decoded once, leaders are collected (the entry
//! point, targets of direct control flow, instructions following a
//! block terminator, and address-taken instructions), and the code is
//! sliced into [`Block`]s at leader boundaries.
//!
//! Indirect control flow (`jalr`) has no static target, so the graph
//! over-approximates it: every *address-taken* instruction — a code
//! address stored in a data word or loaded by a `li` — is treated as a
//! potential indirect-entry point and becomes a CFG root alongside the
//! program entry. An indirect call (`jalr` with `rs != rd`) keeps a
//! fall-through edge modelling its eventual return; `jalr rd, rd`
//! (the builder's `ret` idiom, which reads the link register it
//! overwrites) is a pure sink.
//!
//! The `li r0, 0; syscall` sequence is the guest exit idiom
//! (`SyscallNo::Exit` is 0); blocks ending in it get a no-successor
//! [`Terminator::Exit`] instead of a fall-through edge.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use superpin_isa::{Inst, Program, Reg};

/// Index of a block within [`Cfg::blocks`].
pub type BlockId = usize;

/// How a basic block ends, with the raw successor addresses. Edges in
/// [`Block::succs`] only cover targets that land inside the code
/// section; the terminator keeps the addresses themselves so lints can
/// flag control flow that escapes the program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional direct jump.
    Jump(u64),
    /// Conditional branch: taken target plus fall-through.
    Branch { taken: u64, fall: u64 },
    /// Direct call (`jal`); the fall-through edge models the return.
    Call { target: u64, fall: u64 },
    /// Indirect call (`jalr` with `rs != rd`); the target is unknown
    /// but the fall-through models the return.
    IndirectCall { fall: u64 },
    /// Indirect jump or return (`jalr rd, rd`); no static successor.
    IndirectJump,
    /// Non-exit syscall; execution resumes at the fall-through.
    Syscall { fall: u64 },
    /// The `li r0, 0; syscall` exit idiom. Never returns.
    Exit,
    /// `halt`.
    Halt,
    /// The next instruction starts a new block (it is a leader).
    FallThrough(u64),
    /// Execution would run past the end of the code section.
    FallOffEnd,
}

/// A maximal straight-line run of instructions.
#[derive(Clone, Debug)]
pub struct Block {
    /// Address of the first instruction.
    pub start: u64,
    /// Instructions in address order, with their addresses.
    pub insts: Vec<(u64, Inst)>,
    /// How the block ends.
    pub terminator: Terminator,
    /// Successor blocks (targets inside the code section only).
    pub succs: Vec<BlockId>,
    /// Predecessor blocks.
    pub preds: Vec<BlockId>,
}

impl Block {
    /// Address one past the last instruction.
    pub fn end(&self) -> u64 {
        match self.insts.last() {
            Some(&(addr, inst)) => addr + inst.size_bytes(),
            None => self.start,
        }
    }
}

/// Control-flow graph over a decoded program.
#[derive(Clone, Debug)]
pub struct Cfg {
    blocks: Vec<Block>,
    /// Start address -> block id.
    by_start: BTreeMap<u64, BlockId>,
    entry: BlockId,
    /// Blocks whose start address is taken (possible indirect targets).
    address_taken: Vec<BlockId>,
}

/// Errors from CFG construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnalysisError {
    /// The code section stopped decoding before its end.
    Decode { addr: u64 },
    /// The entry point is not a decoded instruction boundary.
    BadEntry { entry: u64 },
    /// The program has no code.
    EmptyProgram,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Decode { addr } => {
                write!(f, "code stops decoding at {addr:#x} before the section end")
            }
            AnalysisError::BadEntry { entry } => {
                write!(f, "entry point {entry:#x} is not an instruction boundary")
            }
            AnalysisError::EmptyProgram => write!(f, "program has no code"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl Cfg {
    /// Builds the CFG for `program`.
    pub fn build(program: &Program) -> Result<Cfg, AnalysisError> {
        if program.code_len() == 0 {
            return Err(AnalysisError::EmptyProgram);
        }

        // Linear sweep: decode every instruction once. The ISA has no
        // inline data or padding, so a decode failure before the end of
        // the section is an error rather than a gap to skip.
        let mut insts: BTreeMap<u64, Inst> = BTreeMap::new();
        let mut addr = program.code_base();
        let code_end = program.code_base() + program.code_len();
        while addr < code_end {
            let (inst, len) = program
                .decode_at(addr)
                .map_err(|_| AnalysisError::Decode { addr })?;
            insts.insert(addr, inst);
            addr += len;
        }

        if !insts.contains_key(&program.entry()) {
            return Err(AnalysisError::BadEntry {
                entry: program.entry(),
            });
        }

        let taken_addrs = address_taken_addrs(program, &insts);

        // Leaders: entry, address-taken instructions, direct targets,
        // and every instruction following a block terminator.
        let mut leaders: BTreeSet<u64> = BTreeSet::new();
        leaders.insert(program.entry());
        leaders.extend(taken_addrs.iter().copied());
        for (&addr, inst) in &insts {
            if let Some(target) = inst.static_target() {
                if insts.contains_key(&target) {
                    leaders.insert(target);
                }
            }
            if inst.ends_basic_block() {
                let next = addr + inst.size_bytes();
                if insts.contains_key(&next) {
                    leaders.insert(next);
                }
            }
        }

        // Slice into blocks at leader boundaries.
        let mut blocks: Vec<Block> = Vec::new();
        let mut by_start: BTreeMap<u64, BlockId> = BTreeMap::new();
        let mut current: Option<Block> = None;
        for (&addr, &inst) in &insts {
            if leaders.contains(&addr) {
                if let Some(block) = current.take() {
                    blocks.push(block);
                }
            }
            let block = current.get_or_insert_with(|| Block {
                start: addr,
                insts: Vec::new(),
                terminator: Terminator::FallOffEnd,
                succs: Vec::new(),
                preds: Vec::new(),
            });
            block.insts.push((addr, inst));
            if inst.ends_basic_block() {
                blocks.push(current.take().expect("block in progress"));
            }
        }
        if let Some(block) = current.take() {
            blocks.push(block);
        }
        for (id, block) in blocks.iter().enumerate() {
            by_start.insert(block.start, id);
        }

        // Classify terminators and wire edges.
        for block in &mut blocks {
            block.terminator = classify_terminator(block, &insts);
        }
        let mut edges: Vec<(BlockId, BlockId)> = Vec::new();
        for (id, block) in blocks.iter().enumerate() {
            for target in terminator_targets(block.terminator) {
                if let Some(&succ) = by_start.get(&target) {
                    edges.push((id, succ));
                }
            }
        }
        for (from, to) in edges {
            if !blocks[from].succs.contains(&to) {
                blocks[from].succs.push(to);
            }
            if !blocks[to].preds.contains(&from) {
                blocks[to].preds.push(from);
            }
        }

        let entry = by_start[&program.entry()];
        let address_taken = taken_addrs
            .iter()
            .filter_map(|addr| by_start.get(addr).copied())
            .collect();

        Ok(Cfg {
            blocks,
            by_start,
            entry,
            address_taken,
        })
    }

    /// All blocks, ordered by start address.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if the graph has no blocks (never true for a built CFG).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The block containing the program entry point.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Blocks whose start address is taken somewhere in the program
    /// (data words or `li` immediates); potential indirect targets.
    pub fn address_taken(&self) -> &[BlockId] {
        &self.address_taken
    }

    /// Roots for forward analyses: the entry plus every address-taken
    /// block (any of them may be reached through a `jalr`).
    pub fn roots(&self) -> Vec<BlockId> {
        let mut roots = vec![self.entry];
        for &id in &self.address_taken {
            if !roots.contains(&id) {
                roots.push(id);
            }
        }
        roots
    }

    /// The block starting exactly at `addr`.
    pub fn block_at(&self, addr: u64) -> Option<BlockId> {
        self.by_start.get(&addr).copied()
    }

    /// The block whose address range contains `addr`.
    pub fn block_containing(&self, addr: u64) -> Option<BlockId> {
        let (_, &id) = self.by_start.range(..=addr).next_back()?;
        if addr < self.blocks[id].end() {
            Some(id)
        } else {
            None
        }
    }

    /// A copy of this graph with extra `from → to` edges wired in —
    /// used to materialize statically resolved indirect transfers so
    /// downstream dataflow (liveness refinement) can follow them.
    pub fn with_extra_edges(&self, edges: &[(BlockId, BlockId)]) -> Cfg {
        let mut cfg = self.clone();
        for &(from, to) in edges {
            if !cfg.blocks[from].succs.contains(&to) {
                cfg.blocks[from].succs.push(to);
            }
            if !cfg.blocks[to].preds.contains(&from) {
                cfg.blocks[to].preds.push(from);
            }
        }
        cfg
    }

    /// Blocks reachable from [`Cfg::roots`].
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = self.roots();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id], true) {
                continue;
            }
            for &succ in &self.blocks[id].succs {
                if !seen[succ] {
                    stack.push(succ);
                }
            }
        }
        seen
    }
}

/// Code addresses whose value appears somewhere a register could load
/// it from: 8-byte words in the data section, or `li` immediates. Only
/// instruction boundaries count — a data word that happens to point
/// into the middle of a `li` cannot be decoded as an entry point.
fn address_taken_addrs(program: &Program, insts: &BTreeMap<u64, Inst>) -> BTreeSet<u64> {
    let mut taken = BTreeSet::new();
    let data = program.data();
    for chunk in data.chunks_exact(8) {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        if insts.contains_key(&word) {
            taken.insert(word);
        }
    }
    for inst in insts.values() {
        if let Inst::Li { imm, .. } = inst {
            let addr = *imm as u64;
            if insts.contains_key(&addr) {
                taken.insert(addr);
            }
        }
    }
    taken
}

fn classify_terminator(block: &Block, insts: &BTreeMap<u64, Inst>) -> Terminator {
    let &(last_addr, last) = block.insts.last().expect("blocks are non-empty");
    let fall = last_addr + last.size_bytes();
    let next_decodes = insts.contains_key(&fall);
    match last {
        Inst::Jmp { target } => Terminator::Jump(target),
        Inst::Branch { target, .. } => Terminator::Branch {
            taken: target,
            fall,
        },
        Inst::Jal { target, .. } => Terminator::Call { target, fall },
        // `jalr rd, rd` reads the link register it overwrites — the
        // builder's `ret`. Anything else is an indirect call whose
        // return lands at the fall-through.
        Inst::Jalr { rd, rs, .. } if rd == rs => Terminator::IndirectJump,
        Inst::Jalr { .. } => {
            if next_decodes {
                Terminator::IndirectCall { fall }
            } else {
                Terminator::IndirectJump
            }
        }
        Inst::Syscall => {
            if is_exit_syscall(block) {
                Terminator::Exit
            } else if next_decodes {
                Terminator::Syscall { fall }
            } else {
                Terminator::FallOffEnd
            }
        }
        Inst::Halt => Terminator::Halt,
        _ => {
            if next_decodes {
                Terminator::FallThrough(fall)
            } else {
                Terminator::FallOffEnd
            }
        }
    }
}

/// True if the block's final `syscall` is the exit idiom: the nearest
/// in-block definition of `r0` before it is `li r0, 0` (the kernel's
/// `SyscallNo::Exit` is syscall number 0).
/// A block that sets `r0` some other way — or not at all — is
/// conservatively assumed to return.
fn is_exit_syscall(block: &Block) -> bool {
    for &(_, inst) in block.insts.iter().rev().skip(1) {
        match inst {
            Inst::Li { rd: Reg::R0, imm } => return imm == 0,
            _ if inst.dest_reg() == Some(Reg::R0) => return false,
            _ => {}
        }
    }
    false
}

fn terminator_targets(terminator: Terminator) -> Vec<u64> {
    match terminator {
        Terminator::Jump(target) => vec![target],
        Terminator::Branch { taken, fall } => vec![taken, fall],
        Terminator::Call { target, fall } => vec![target, fall],
        Terminator::IndirectCall { fall } => vec![fall],
        Terminator::Syscall { fall } => vec![fall],
        Terminator::FallThrough(fall) => vec![fall],
        Terminator::IndirectJump | Terminator::Exit | Terminator::Halt | Terminator::FallOffEnd => {
            vec![]
        }
    }
}

//! Compact register sets.
//!
//! The ISA has [`NUM_REGS`] (16) architectural registers, so a set of
//! registers fits in a `u16` bitmask. Every dataflow analysis in this
//! crate traffics in these sets; keeping them `Copy` makes transfer
//! functions allocation-free.

use std::fmt;

use superpin_isa::{Reg, NUM_REGS};

/// A set of architectural registers, stored as a 16-bit mask.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RegSet {
    bits: u16,
}

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet { bits: 0 };

    /// The set of every architectural register.
    pub const ALL: RegSet = RegSet {
        bits: ((1u32 << NUM_REGS) - 1) as u16,
    };

    /// Builds a set from a slice of registers.
    pub fn from_regs(regs: &[Reg]) -> RegSet {
        let mut set = RegSet::EMPTY;
        for &reg in regs {
            set.insert(reg);
        }
        set
    }

    /// True if the set holds no registers.
    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Number of registers in the set.
    pub fn len(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// True if `reg` is in the set.
    pub fn contains(self, reg: Reg) -> bool {
        self.bits & (1 << reg.index()) != 0
    }

    /// Adds `reg` to the set.
    pub fn insert(&mut self, reg: Reg) {
        self.bits |= 1 << reg.index();
    }

    /// Removes `reg` from the set.
    pub fn remove(&mut self, reg: Reg) {
        self.bits &= !(1 << reg.index());
    }

    /// Set union.
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet {
            bits: self.bits | other.bits,
        }
    }

    /// Set intersection.
    pub fn intersect(self, other: RegSet) -> RegSet {
        RegSet {
            bits: self.bits & other.bits,
        }
    }

    /// Set difference (`self` minus `other`).
    pub fn minus(self, other: RegSet) -> RegSet {
        RegSet {
            bits: self.bits & !other.bits,
        }
    }

    /// True if every register in `self` is also in `other`.
    pub fn is_subset_of(self, other: RegSet) -> bool {
        self.bits & !other.bits == 0
    }

    /// Iterates the registers in the set in index order.
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        (0..NUM_REGS as u8).filter_map(move |idx| {
            if self.bits & (1 << idx) != 0 {
                Reg::try_new(idx)
            } else {
                None
            }
        })
    }
}

impl fmt::Debug for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, reg) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{reg}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<I: IntoIterator<Item = Reg>>(iter: I) -> RegSet {
        let mut set = RegSet::EMPTY;
        for reg in iter {
            set.insert(reg);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut set = RegSet::EMPTY;
        assert!(set.is_empty());
        set.insert(Reg::R3);
        set.insert(Reg::SP);
        assert!(set.contains(Reg::R3));
        assert!(set.contains(Reg::SP));
        assert!(!set.contains(Reg::R0));
        assert_eq!(set.len(), 2);
        set.remove(Reg::R3);
        assert!(!set.contains(Reg::R3));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn all_has_every_register() {
        for reg in Reg::all() {
            assert!(RegSet::ALL.contains(reg), "missing {reg}");
        }
        assert_eq!(RegSet::ALL.len(), NUM_REGS);
    }

    #[test]
    fn set_algebra() {
        let a = RegSet::from_regs(&[Reg::R1, Reg::R2, Reg::R3]);
        let b = RegSet::from_regs(&[Reg::R2, Reg::R3, Reg::R4]);
        assert_eq!(
            a.union(b),
            RegSet::from_regs(&[Reg::R1, Reg::R2, Reg::R3, Reg::R4])
        );
        assert_eq!(a.intersect(b), RegSet::from_regs(&[Reg::R2, Reg::R3]));
        assert_eq!(a.minus(b), RegSet::from_regs(&[Reg::R1]));
        assert!(a.intersect(b).is_subset_of(a));
        assert!(!a.is_subset_of(b));
    }

    #[test]
    fn iter_matches_contents() {
        let set = RegSet::from_regs(&[Reg::R0, Reg::R7, Reg::RA]);
        let regs: Vec<Reg> = set.iter().collect();
        assert_eq!(regs, vec![Reg::R0, Reg::R7, Reg::RA]);
    }
}

//! A small, dependency-free stand-in for the `criterion` crate.
//!
//! The workspace must build with no registry access, so this crate
//! provides the subset of the criterion API our benches use
//! (`benchmark_group`, `sample_size`, `bench_function`, `iter`,
//! `iter_batched`, `criterion_group!`/`criterion_main!`) with plain
//! `std::time::Instant` timing. It reports min/mean/max per benchmark
//! instead of criterion's statistical analysis — the figure data these
//! benches exist for is virtual-time, not wall-time (see
//! `crates/bench/benches/*.rs`).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Hint mirroring criterion's `BatchSize`; sampling here is simple
/// enough that all variants behave identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level harness handle passed to each `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        for _ in 0..self.sample_size {
            routine(&mut bencher);
        }
        let (mut min, mut max, mut total) = (Duration::MAX, Duration::ZERO, Duration::ZERO);
        for &sample in &bencher.samples {
            min = min.min(sample);
            max = max.max(sample);
            total += sample;
        }
        if bencher.samples.is_empty() {
            println!("  {name}: no samples");
        } else {
            let mean = total / bencher.samples.len() as u32;
            println!(
                "  {name}: min {min:?} / mean {mean:?} / max {max:?} ({} samples)",
                bencher.samples.len()
            );
        }
        self
    }

    pub fn finish(&mut self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one call of `routine` and records it as a sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let output = routine();
        self.samples.push(start.elapsed());
        std::hint::black_box(output);
    }

    /// Times `routine` on a fresh `setup()` input, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let output = routine(input);
        self.samples.push(start.elapsed());
        std::hint::black_box(output);
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Deterministic PRNG for program generation.
//!
//! The workspace builds with no registry access, so this replaces
//! `rand::SmallRng` with an in-repo splitmix64 generator. Generation
//! must be reproducible across runs and machines (the determinism
//! tests in `gen.rs` depend on it); splitmix64 is small, fast, and
//! has no platform-dependent behavior.

use std::ops::Range;

/// Splitmix64 generator seeded per workload+input.
#[derive(Clone, Debug)]
pub struct WorkloadRng {
    state: u64,
}

impl WorkloadRng {
    /// Seeds the generator (same name/shape as `SmallRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> WorkloadRng {
        WorkloadRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32-bit value.
    pub fn gen_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in a half-open range.
    pub fn gen_range<T>(&mut self, range: impl SampleRange<T>) -> T {
        range.sample(self)
    }

    /// True with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// Range types [`WorkloadRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut WorkloadRng) -> T;
}

impl SampleRange<usize> for Range<usize> {
    fn sample(self, rng: &mut WorkloadRng) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SampleRange<i32> for Range<i32> {
    fn sample(self, rng: &mut WorkloadRng) -> i32 {
        assert!(self.start < self.end, "empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + rng.below(span) as i64) as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = WorkloadRng::seed_from_u64(42);
        let mut b = WorkloadRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = WorkloadRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let i = rng.gen_range(-1000..1000);
            assert!((-1000..1000).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = WorkloadRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..64).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut rng = WorkloadRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "hits = {hits}");
    }
}

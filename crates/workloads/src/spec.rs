//! The benchmark catalog.

use crate::gen;
use superpin_isa::Program;

/// SPEC CPU2000 component suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// CINT2000.
    Int,
    /// CFP2000.
    Fp,
}

/// How much strided array traffic a workload generates per iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemIntensity {
    /// No array sweep.
    None,
    /// A short sweep (16 lines).
    Low,
    /// A long sweep (64 lines).
    High,
}

impl MemIntensity {
    pub(crate) fn sweep_lines(self) -> u32 {
        match self {
            MemIntensity::None => 0,
            MemIntensity::Low => 16,
            MemIntensity::High => 64,
        }
    }
}

/// Which syscall pattern the workload issues periodically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyscallKind {
    /// No syscalls besides the final `exit`.
    None,
    /// gcc-style heap churn: `brk` up, touch, `brk` down (paper §4.2:
    /// "applications such as gcc will allocate and deallocate memory far
    /// too frequently").
    BrkChurn,
    /// `gettime` queries.
    TimeQuery,
    /// Small `write`s to stdout.
    FileIo,
}

/// Simulation size: target dynamic instruction count of the generated
/// program.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// ~20k instructions — unit tests.
    Tiny,
    /// ~200k instructions — integration tests.
    Small,
    /// ~1M instructions — quick figure runs.
    Medium,
    /// ~4M instructions — full figure runs.
    Large,
}

impl Scale {
    /// Target dynamic instruction count.
    pub fn target_insts(self) -> u64 {
        match self {
            Scale::Tiny => 20_000,
            Scale::Small => 200_000,
            Scale::Medium => 1_000_000,
            Scale::Large => 4_000_000,
        }
    }
}

/// Static description of one synthetic benchmark.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Benchmark name (SPEC CPU2000 component).
    pub name: &'static str,
    /// CINT or CFP.
    pub category: Category,
    /// Number of distinct unit functions reached through the indirect
    /// call table (power of two) — the code-footprint knob.
    pub footprint_units: u32,
    /// ALU operations per unit function body.
    pub unit_body: u32,
    /// Indirect calls issued per outer iteration.
    pub calls_per_iter: u32,
    /// Strided memory sweep intensity.
    pub mem: MemIntensity,
    /// Pointer-chase loads per outer iteration (0 = none).
    pub chase_iters: u32,
    /// Data-dependent branch evaluations per outer iteration.
    pub branchy_iters: u32,
    /// Issue the syscall pattern every `2^syscall_period_log2` outer
    /// iterations (`None` = no periodic syscalls).
    pub syscall_period_log2: Option<u32>,
    /// Which syscall pattern.
    pub syscall_kind: SyscallKind,
    /// Run-length multiplier in eighths (8 = the scale target, 4 = half,
    /// 12 = 1.5×). SPEC components differ widely in reference run time;
    /// short applications are where SuperPin's pipeline delay bites
    /// ("It becomes difficult to achieve slowdowns under 25% for
    /// applications with shorter execution times", paper §6).
    pub duration_eighths: u32,
}

impl WorkloadSpec {
    /// Generates the benchmark's program at the given scale.
    /// Deterministic: same name + scale ⇒ identical program.
    pub fn build(&self, scale: Scale) -> Program {
        gen::generate_with_input(self, scale, 0)
    }

    /// Generates the benchmark with an alternate *input id* — the
    /// analogue of a different SPEC reference input. The code layout and
    /// character are preserved; data contents and branch-stream seeds
    /// change, so dynamic behaviour differs (Figure 6's note about
    /// restricting gcc "to one input to properly reflect the pipeline
    /// delay" is about exactly this variation).
    pub fn build_with_input(&self, scale: Scale, input: u64) -> Program {
        gen::generate_with_input(self, scale, input)
    }
}

/// The 26-benchmark catalog, in the paper's figure order.
pub fn catalog() -> &'static [WorkloadSpec] {
    CATALOG
}

/// Looks up a benchmark by name.
pub fn find(name: &str) -> Option<&'static WorkloadSpec> {
    CATALOG.iter().find(|spec| spec.name == name)
}

const CATALOG: &[WorkloadSpec] = &[
    WorkloadSpec {
        name: "ammp",
        category: Category::Fp,
        footprint_units: 8,
        unit_body: 48,
        calls_per_iter: 2,
        mem: MemIntensity::High,
        chase_iters: 8,
        branchy_iters: 4,
        syscall_period_log2: None,
        syscall_kind: SyscallKind::None,
        duration_eighths: 10,
    },
    WorkloadSpec {
        name: "applu",
        category: Category::Fp,
        footprint_units: 8,
        unit_body: 64,
        calls_per_iter: 2,
        mem: MemIntensity::High,
        chase_iters: 0,
        branchy_iters: 2,
        syscall_period_log2: None,
        syscall_kind: SyscallKind::None,
        duration_eighths: 9,
    },
    WorkloadSpec {
        name: "apsi",
        category: Category::Fp,
        footprint_units: 16,
        unit_body: 48,
        calls_per_iter: 3,
        mem: MemIntensity::High,
        chase_iters: 0,
        branchy_iters: 4,
        syscall_period_log2: None,
        syscall_kind: SyscallKind::None,
        duration_eighths: 8,
    },
    WorkloadSpec {
        name: "art",
        category: Category::Fp,
        footprint_units: 4,
        unit_body: 16,
        calls_per_iter: 1,
        mem: MemIntensity::Low,
        chase_iters: 48,
        branchy_iters: 4,
        syscall_period_log2: None,
        syscall_kind: SyscallKind::None,
        duration_eighths: 14,
    },
    WorkloadSpec {
        name: "bzip2",
        category: Category::Int,
        footprint_units: 16,
        unit_body: 28,
        calls_per_iter: 3,
        mem: MemIntensity::High,
        chase_iters: 0,
        branchy_iters: 16,
        syscall_period_log2: Some(8),
        syscall_kind: SyscallKind::FileIo,
        duration_eighths: 10,
    },
    WorkloadSpec {
        name: "crafty",
        category: Category::Int,
        footprint_units: 32,
        unit_body: 24,
        calls_per_iter: 4,
        mem: MemIntensity::Low,
        chase_iters: 0,
        branchy_iters: 32,
        syscall_period_log2: None,
        syscall_kind: SyscallKind::None,
        duration_eighths: 8,
    },
    WorkloadSpec {
        name: "eon",
        category: Category::Int,
        footprint_units: 32,
        unit_body: 32,
        calls_per_iter: 6,
        mem: MemIntensity::Low,
        chase_iters: 0,
        branchy_iters: 8,
        syscall_period_log2: None,
        syscall_kind: SyscallKind::None,
        duration_eighths: 2,
    },
    WorkloadSpec {
        name: "equake",
        category: Category::Fp,
        footprint_units: 8,
        unit_body: 40,
        calls_per_iter: 2,
        mem: MemIntensity::High,
        chase_iters: 16,
        branchy_iters: 2,
        syscall_period_log2: None,
        syscall_kind: SyscallKind::None,
        duration_eighths: 9,
    },
    WorkloadSpec {
        name: "facerec",
        category: Category::Fp,
        footprint_units: 8,
        unit_body: 40,
        calls_per_iter: 2,
        mem: MemIntensity::High,
        chase_iters: 0,
        branchy_iters: 8,
        syscall_period_log2: None,
        syscall_kind: SyscallKind::None,
        duration_eighths: 5,
    },
    WorkloadSpec {
        name: "fma3d",
        category: Category::Fp,
        footprint_units: 16,
        unit_body: 48,
        calls_per_iter: 3,
        mem: MemIntensity::High,
        chase_iters: 0,
        branchy_iters: 4,
        syscall_period_log2: None,
        syscall_kind: SyscallKind::None,
        duration_eighths: 8,
    },
    WorkloadSpec {
        name: "galgel",
        category: Category::Fp,
        footprint_units: 8,
        unit_body: 56,
        calls_per_iter: 2,
        mem: MemIntensity::High,
        chase_iters: 0,
        branchy_iters: 2,
        syscall_period_log2: None,
        syscall_kind: SyscallKind::None,
        duration_eighths: 9,
    },
    WorkloadSpec {
        name: "gap",
        category: Category::Int,
        footprint_units: 32,
        unit_body: 24,
        calls_per_iter: 4,
        mem: MemIntensity::Low,
        chase_iters: 8,
        branchy_iters: 12,
        syscall_period_log2: Some(7),
        syscall_kind: SyscallKind::BrkChurn,
        duration_eighths: 4,
    },
    WorkloadSpec {
        name: "gcc",
        category: Category::Int,
        footprint_units: 128,
        unit_body: 30,
        calls_per_iter: 12,
        mem: MemIntensity::Low,
        chase_iters: 8,
        branchy_iters: 16,
        syscall_period_log2: Some(1),
        syscall_kind: SyscallKind::BrkChurn,
        duration_eighths: 8,
    },
    WorkloadSpec {
        name: "gzip",
        category: Category::Int,
        footprint_units: 16,
        unit_body: 24,
        calls_per_iter: 3,
        mem: MemIntensity::High,
        chase_iters: 0,
        branchy_iters: 12,
        syscall_period_log2: Some(8),
        syscall_kind: SyscallKind::FileIo,
        duration_eighths: 10,
    },
    WorkloadSpec {
        name: "lucas",
        category: Category::Fp,
        footprint_units: 4,
        unit_body: 64,
        calls_per_iter: 1,
        mem: MemIntensity::High,
        chase_iters: 0,
        branchy_iters: 2,
        syscall_period_log2: None,
        syscall_kind: SyscallKind::None,
        duration_eighths: 15,
    },
    WorkloadSpec {
        name: "mcf",
        category: Category::Int,
        footprint_units: 4,
        unit_body: 16,
        calls_per_iter: 1,
        mem: MemIntensity::Low,
        chase_iters: 64,
        branchy_iters: 8,
        syscall_period_log2: None,
        syscall_kind: SyscallKind::None,
        duration_eighths: 16,
    },
    WorkloadSpec {
        name: "mesa",
        category: Category::Fp,
        footprint_units: 32,
        unit_body: 32,
        calls_per_iter: 4,
        mem: MemIntensity::Low,
        chase_iters: 0,
        branchy_iters: 8,
        syscall_period_log2: None,
        syscall_kind: SyscallKind::None,
        duration_eighths: 3,
    },
    WorkloadSpec {
        name: "mgrid",
        category: Category::Fp,
        footprint_units: 4,
        unit_body: 64,
        calls_per_iter: 1,
        mem: MemIntensity::High,
        chase_iters: 0,
        branchy_iters: 1,
        syscall_period_log2: None,
        syscall_kind: SyscallKind::None,
        duration_eighths: 15,
    },
    WorkloadSpec {
        name: "parser",
        category: Category::Int,
        footprint_units: 16,
        unit_body: 20,
        calls_per_iter: 3,
        mem: MemIntensity::Low,
        chase_iters: 16,
        branchy_iters: 24,
        syscall_period_log2: Some(7),
        syscall_kind: SyscallKind::BrkChurn,
        duration_eighths: 9,
    },
    WorkloadSpec {
        name: "perlbmk",
        category: Category::Int,
        footprint_units: 64,
        unit_body: 28,
        calls_per_iter: 6,
        mem: MemIntensity::Low,
        chase_iters: 8,
        branchy_iters: 16,
        syscall_period_log2: Some(5),
        syscall_kind: SyscallKind::BrkChurn,
        duration_eighths: 3,
    },
    WorkloadSpec {
        name: "sixtrack",
        category: Category::Fp,
        footprint_units: 16,
        unit_body: 48,
        calls_per_iter: 3,
        mem: MemIntensity::High,
        chase_iters: 0,
        branchy_iters: 4,
        syscall_period_log2: None,
        syscall_kind: SyscallKind::None,
        duration_eighths: 10,
    },
    WorkloadSpec {
        name: "swim",
        category: Category::Fp,
        footprint_units: 4,
        unit_body: 72,
        calls_per_iter: 1,
        mem: MemIntensity::High,
        chase_iters: 0,
        branchy_iters: 1,
        syscall_period_log2: None,
        syscall_kind: SyscallKind::None,
        duration_eighths: 16,
    },
    WorkloadSpec {
        name: "twolf",
        category: Category::Int,
        footprint_units: 16,
        unit_body: 28,
        calls_per_iter: 3,
        mem: MemIntensity::Low,
        chase_iters: 8,
        branchy_iters: 16,
        syscall_period_log2: None,
        syscall_kind: SyscallKind::None,
        duration_eighths: 11,
    },
    WorkloadSpec {
        name: "vortex",
        category: Category::Int,
        footprint_units: 64,
        unit_body: 28,
        calls_per_iter: 5,
        mem: MemIntensity::Low,
        chase_iters: 8,
        branchy_iters: 8,
        syscall_period_log2: Some(4),
        syscall_kind: SyscallKind::FileIo,
        duration_eighths: 4,
    },
    WorkloadSpec {
        name: "vpr",
        category: Category::Int,
        footprint_units: 16,
        unit_body: 24,
        calls_per_iter: 3,
        mem: MemIntensity::Low,
        chase_iters: 8,
        branchy_iters: 12,
        syscall_period_log2: None,
        syscall_kind: SyscallKind::None,
        duration_eighths: 9,
    },
    WorkloadSpec {
        name: "wupwise",
        category: Category::Fp,
        footprint_units: 8,
        unit_body: 56,
        calls_per_iter: 2,
        mem: MemIntensity::High,
        chase_iters: 0,
        branchy_iters: 2,
        syscall_period_log2: None,
        syscall_kind: SyscallKind::None,
        duration_eighths: 10,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_26_unique_benchmarks() {
        assert_eq!(catalog().len(), 26);
        let mut names: Vec<&str> = catalog().iter().map(|spec| spec.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 26);
    }

    #[test]
    fn find_matches_catalog() {
        assert!(find("gcc").is_some());
        assert!(find("swim").is_some());
        assert!(find("nonexistent").is_none());
    }

    #[test]
    fn footprints_are_powers_of_two() {
        for spec in catalog() {
            assert!(
                spec.footprint_units.is_power_of_two(),
                "{} footprint {} not a power of two",
                spec.name,
                spec.footprint_units
            );
        }
    }

    #[test]
    fn gcc_has_the_largest_footprint() {
        let gcc = find("gcc").expect("gcc");
        for spec in catalog() {
            assert!(spec.footprint_units <= gcc.footprint_units);
        }
    }

    #[test]
    fn scale_targets_are_increasing() {
        assert!(Scale::Tiny.target_insts() < Scale::Small.target_insts());
        assert!(Scale::Small.target_insts() < Scale::Medium.target_insts());
        assert!(Scale::Medium.target_insts() < Scale::Large.target_insts());
    }
}

//! The synthetic-benchmark program generator.
//!
//! Register conventions used by generated programs:
//!
//! | reg | role |
//! |-----|------|
//! | r0–r3 | syscall number/args + call-index scratch |
//! | r4  | pointer-chase cursor |
//! | r5  | inner-loop walker |
//! | r6  | scratch |
//! | r7  | xorshift branch state |
//! | r8  | accumulator |
//! | r9  | indirect-call table base |
//! | r10 | outer-loop counter (counts down) |
//! | r11 | inner-loop counter |
//! | r12 | stride-buffer base |

use crate::rng::WorkloadRng;
use crate::spec::{Scale, SyscallKind, WorkloadSpec};
use superpin_isa::{AluOp, Program, ProgramBuilder, Reg, HEAP_BASE};

const CHASE_NODES: usize = 64;

fn fnv(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Estimated dynamic instructions per outer iteration (used to size the
/// outer loop against the scale target).
fn est_insts_per_iter(spec: &WorkloadSpec) -> u64 {
    let unit_insts = spec.unit_body as u64 + 4; // prologue + acc + ret
    let calls = spec.calls_per_iter as u64 * (7 + unit_insts);
    let stride = spec.mem.sweep_lines() as u64 * 6 + 2;
    let chase = if spec.chase_iters > 0 {
        spec.chase_iters as u64 * 5 + 1
    } else {
        0
    };
    let branchy = if spec.branchy_iters > 0 {
        spec.branchy_iters as u64 * 11 + 1
    } else {
        0
    };
    let syscalls = match spec.syscall_period_log2 {
        Some(p) => 3 + (12 >> p.min(4)),
        None => 0,
    };
    calls + stride + chase + branchy + syscalls as u64 + 2
}

/// Generates the program for `spec` at `scale` with an input id (the
/// analogue of a SPEC reference input; 0 is the default input).
pub fn generate_with_input(spec: &WorkloadSpec, scale: Scale, input: u64) -> Program {
    let mut rng =
        WorkloadRng::seed_from_u64(fnv(spec.name) ^ input.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut b = ProgramBuilder::new();

    // --- data -----------------------------------------------------------
    // Pointer-chase ring: CHASE_NODES nodes of [next_ptr, payload].
    let chase_base = b.data_cursor();
    if spec.chase_iters > 0 {
        let mut order: Vec<usize> = (0..CHASE_NODES).collect();
        rng.shuffle(&mut order);
        let mut next = vec![0u64; CHASE_NODES];
        for i in 0..CHASE_NODES {
            let from = order[i];
            let to = order[(i + 1) % CHASE_NODES];
            next[from] = chase_base + 16 * to as u64;
        }
        let mut words = Vec::with_capacity(CHASE_NODES * 2);
        for (node, &next_addr) in next.iter().enumerate() {
            words.push(next_addr);
            words.push(rng.gen_u32() as u64 ^ node as u64);
        }
        b.data_words("chase_nodes", &words);
    }
    let sweep_lines = spec.mem.sweep_lines();
    if sweep_lines > 0 {
        b.bss("stride_buf", sweep_lines as u64 * 64 + 64);
    }
    if spec.syscall_kind == SyscallKind::FileIo {
        b.data_bytes("msg", b"workload");
    }

    // --- unit functions (the code footprint) -----------------------------
    let units = spec.footprint_units.max(1);
    let scratch = [Reg::R2, Reg::R3, Reg::R6];
    let reg_ops = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Xor,
        AluOp::And,
        AluOp::Or,
        AluOp::Mul,
    ];
    for unit in 0..units {
        b.label(&format!("unit{unit}"));
        // Prologue: seed scratch from live state.
        b.mov(Reg::R2, Reg::R8);
        b.mov(Reg::R3, Reg::R10);
        b.li(Reg::R6, rng.gen_u32() as i64);
        for _ in 0..spec.unit_body {
            let rd = scratch[rng.gen_range(0..scratch.len())];
            if rng.gen_bool(0.3) {
                let op = [AluOp::Add, AluOp::Xor, AluOp::Shl, AluOp::Shr, AluOp::And]
                    [rng.gen_range(0..5usize)];
                let imm = match op {
                    AluOp::Shl | AluOp::Shr => rng.gen_range(1..16),
                    _ => rng.gen_range(-1000..1000),
                };
                let rs1 = scratch[rng.gen_range(0..scratch.len())];
                b.alui(op, rd, rs1, imm);
            } else {
                let op = reg_ops[rng.gen_range(0..reg_ops.len())];
                let rs1 = scratch[rng.gen_range(0..scratch.len())];
                let rs2 = scratch[rng.gen_range(0..scratch.len())];
                b.alu(op, rd, rs1, rs2);
            }
        }
        b.add(Reg::R8, Reg::R8, Reg::R2);
        b.ret();
    }

    // Indirect-call table (resolved unit addresses).
    let table: Vec<u64> = (0..units)
        .map(|unit| {
            b.label_addr(&format!("unit{unit}"))
                .expect("unit label was just defined")
        })
        .collect();
    b.data_words("unit_table", &table);

    // --- main -------------------------------------------------------------
    let target = scale.target_insts() * spec.duration_eighths.max(1) as u64 / 8;
    let iters = (target / est_insts_per_iter(spec)).max(4) as i64;
    b.label("main");
    // The accumulator starts at zero; set it explicitly rather than
    // relying on the loader's zero-init (spinlint's undefined-read
    // pass treats loader zeroing of scratch registers as incidental).
    b.li(Reg::R8, 0);
    b.la(Reg::R9, "unit_table");
    if spec.chase_iters > 0 {
        b.la(Reg::R4, "chase_nodes");
    }
    if sweep_lines > 0 {
        b.la(Reg::R12, "stride_buf");
    }
    b.li(
        Reg::R7,
        ((fnv(spec.name) ^ input.wrapping_mul(0x517c_c1b7_2722_0a95)) | 1) as i64 & 0x7fff_ffff,
    );
    b.li(Reg::R10, iters);

    b.label("outer");

    // Periodic syscall batch.
    if let (Some(period_log2), kind) = (spec.syscall_period_log2, spec.syscall_kind) {
        if kind != SyscallKind::None {
            let mask = (1i32 << period_log2) - 1;
            b.andi(Reg::R6, Reg::R10, mask);
            b.bne(Reg::R6, Reg::R0, "sys_skip");
            match kind {
                SyscallKind::BrkChurn => {
                    // brk up, touch the heap, brk down — gcc-style churn.
                    b.li(Reg::R0, 5);
                    b.li(Reg::R1, (HEAP_BASE + 0x1_0000) as i64);
                    b.syscall();
                    b.li(Reg::R1, HEAP_BASE as i64);
                    b.st(Reg::R8, Reg::R1, 0);
                    b.li(Reg::R0, 5);
                    b.li(Reg::R1, (HEAP_BASE + 0x1000) as i64);
                    b.syscall();
                }
                SyscallKind::TimeQuery => {
                    b.li(Reg::R0, 8);
                    b.syscall();
                }
                SyscallKind::FileIo => {
                    b.li(Reg::R0, 1);
                    b.li(Reg::R1, 1);
                    b.la(Reg::R2, "msg");
                    b.li(Reg::R3, 8);
                    b.syscall();
                }
                SyscallKind::None => unreachable!("guarded above"),
            }
            // Syscalls return in r0; the generated loops compare against
            // r0 as a zero register, so clear it after the batch.
            b.xor(Reg::R0, Reg::R0, Reg::R0);
            b.label("sys_skip");
        }
    }

    // Indirect calls through the unit table.
    for slot in 0..spec.calls_per_iter {
        b.mov(Reg::R1, Reg::R10);
        b.addi(Reg::R1, Reg::R1, slot as i32);
        b.andi(Reg::R1, Reg::R1, units as i32 - 1);
        b.shli(Reg::R1, Reg::R1, 3);
        b.add(Reg::R1, Reg::R1, Reg::R9);
        b.ld(Reg::R1, Reg::R1, 0);
        b.jalr(Reg::RA, Reg::R1, 0);
    }

    // Strided sweep.
    if sweep_lines > 0 {
        b.mov(Reg::R5, Reg::R12);
        b.li(Reg::R11, sweep_lines as i64);
        b.label("sweep");
        b.ld(Reg::R6, Reg::R5, 0);
        b.add(Reg::R8, Reg::R8, Reg::R6);
        b.st(Reg::R8, Reg::R5, 0);
        b.addi(Reg::R5, Reg::R5, 64);
        b.subi(Reg::R11, Reg::R11, 1);
        b.bne(Reg::R11, Reg::R0, "sweep");
    }

    // Pointer chase.
    if spec.chase_iters > 0 {
        b.li(Reg::R11, spec.chase_iters as i64);
        b.label("chase");
        b.ld(Reg::R4, Reg::R4, 0);
        b.ld(Reg::R6, Reg::R4, 8);
        b.xor(Reg::R8, Reg::R8, Reg::R6);
        b.subi(Reg::R11, Reg::R11, 1);
        b.bne(Reg::R11, Reg::R0, "chase");
    }

    // Data-dependent branches driven by an xorshift stream.
    if spec.branchy_iters > 0 {
        b.li(Reg::R11, spec.branchy_iters as i64);
        b.label("branchy");
        b.shli(Reg::R6, Reg::R7, 13);
        b.xor(Reg::R7, Reg::R7, Reg::R6);
        b.shri(Reg::R6, Reg::R7, 7);
        b.xor(Reg::R7, Reg::R7, Reg::R6);
        b.andi(Reg::R6, Reg::R7, 1);
        b.beq(Reg::R6, Reg::R0, "br_even");
        b.addi(Reg::R8, Reg::R8, 3);
        b.jmp("br_join");
        b.label("br_even");
        b.subi(Reg::R8, Reg::R8, 1);
        b.label("br_join");
        b.subi(Reg::R11, Reg::R11, 1);
        b.bne(Reg::R11, Reg::R0, "branchy");
    }

    b.subi(Reg::R10, Reg::R10, 1);
    b.bne(Reg::R10, Reg::R0, "outer");
    b.exit(0);

    b.build().expect("generated program must be well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{catalog, find};
    use superpin_vm::process::{Process, RunExit};

    #[test]
    fn every_benchmark_builds_and_runs_to_exit() {
        for spec in catalog() {
            let program = spec.build(Scale::Tiny);
            let mut process =
                Process::load(1, &program).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            let exit = process
                .run(10 * Scale::Tiny.target_insts(), 0)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(
                exit,
                RunExit::Exited(0),
                "{} did not exit cleanly",
                spec.name
            );
        }
    }

    #[test]
    fn instruction_counts_land_near_scale_targets() {
        for spec in catalog() {
            let program = spec.build(Scale::Tiny);
            let mut process = Process::load(1, &program).expect("load");
            process.run(u64::MAX, 0).expect("run");
            let insts = process.inst_count();
            let target = Scale::Tiny.target_insts() * spec.duration_eighths.max(1) as u64 / 8;
            assert!(
                insts > target / 4 && insts < target * 4,
                "{}: {insts} instructions vs target {target}",
                spec.name
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = find("gcc").expect("gcc").build(Scale::Tiny);
        let b = find("gcc").expect("gcc").build(Scale::Tiny);
        assert_eq!(a, b);
        let mut p1 = Process::load(1, &a).expect("load");
        let mut p2 = Process::load(1, &b).expect("load");
        p1.run(u64::MAX, 0).expect("run");
        p2.run(u64::MAX, 0).expect("run");
        assert_eq!(p1.inst_count(), p2.inst_count());
    }

    #[test]
    fn scales_produce_longer_runs() {
        let spec = find("swim").expect("swim");
        let mut counts = Vec::new();
        for scale in [Scale::Tiny, Scale::Small] {
            let program = spec.build(scale);
            let mut process = Process::load(1, &program).expect("load");
            process.run(u64::MAX, 0).expect("run");
            counts.push(process.inst_count());
        }
        assert!(counts[1] > 5 * counts[0]);
    }

    #[test]
    fn gcc_issues_many_syscalls() {
        let program = find("gcc").expect("gcc").build(Scale::Tiny);
        let mut process = Process::load(1, &program).expect("load");
        let mut syscalls = 0u64;
        loop {
            match process.run_until_syscall(u64::MAX).expect("run") {
                RunExit::SyscallEntry => {
                    syscalls += 1;
                    if process.do_syscall(0).expect("svc").exited.is_some() {
                        break;
                    }
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(syscalls > 20, "gcc made only {syscalls} syscalls");
        // swim, by contrast, only exits.
        let program = find("swim").expect("swim").build(Scale::Tiny);
        let mut process = Process::load(1, &program).expect("load");
        let mut swim_syscalls = 0u64;
        loop {
            match process.run_until_syscall(u64::MAX).expect("run") {
                RunExit::SyscallEntry => {
                    swim_syscalls += 1;
                    if process.do_syscall(0).expect("svc").exited.is_some() {
                        break;
                    }
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(swim_syscalls, 1);
    }

    #[test]
    fn footprint_shows_up_as_static_code_size() {
        let gcc = find("gcc").expect("gcc").build(Scale::Tiny);
        let swim = find("swim").expect("swim").build(Scale::Tiny);
        assert!(
            gcc.code_len() > 3 * swim.code_len(),
            "gcc code {} vs swim {}",
            gcc.code_len(),
            swim.code_len()
        );
    }
}
#[cfg(test)]
mod input_tests {
    use crate::spec::{find, Scale};
    use superpin_vm::process::Process;

    #[test]
    fn inputs_change_dynamic_behaviour_but_not_character() {
        let spec = find("crafty").expect("crafty");
        let input0 = spec.build_with_input(Scale::Tiny, 0);
        let input1 = spec.build_with_input(Scale::Tiny, 1);
        assert_eq!(
            input0.code_len(),
            input1.code_len(),
            "same code layout across inputs"
        );
        assert_ne!(input0, input1, "data/seeds must differ");
        let mut p0 = Process::load(1, &input0).expect("load");
        let mut p1 = Process::load(1, &input1).expect("load");
        p0.run(u64::MAX, 0).expect("run");
        p1.run(u64::MAX, 0).expect("run");
        // Loop trip counts are fixed, so counts agree closely (the
        // branchy section's taken/fall-through paths differ in length),
        // while register outcomes differ with the changed seeds.
        let (a, b) = (p0.inst_count(), p1.inst_count());
        assert!(a.abs_diff(b) * 20 < a, "counts too different: {a} vs {b}");
        assert_ne!(
            p0.cpu.regs.snapshot(),
            p1.cpu.regs.snapshot(),
            "different inputs must produce different results"
        );
    }

    #[test]
    fn default_input_is_input_zero() {
        let spec = find("gzip").expect("gzip");
        assert_eq!(
            spec.build(Scale::Tiny),
            spec.build_with_input(Scale::Tiny, 0)
        );
    }
}

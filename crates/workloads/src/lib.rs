#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # superpin-workloads
//!
//! Deterministic synthetic stand-ins for the 26 SPEC CPU2000 benchmarks
//! the paper evaluates on (Figures 3–5 list them by name). Real SPEC
//! binaries and reference inputs are licensed artifacts we cannot ship,
//! so each benchmark is modelled by a generated guest program whose
//! *character* matches the original along the axes SuperPin's behaviour
//! actually depends on:
//!
//! * **code footprint** — number of distinct functions reached through an
//!   indirect-call table (gcc's "large code footprint" drives per-slice
//!   recompilation, paper §6.1);
//! * **system-call intensity** — gcc-style `brk` churn forces syscall
//!   recording / forced slices (paper §4.2);
//! * **memory behaviour** — strided array sweeps (FP codes) and
//!   pointer-chasing (mcf, art) with copy-on-write-relevant stores;
//! * **branchiness** — data-dependent branches (crafty, parser);
//! * **call depth** — nested call chains (eon, perlbmk).
//!
//! All generation is seeded by the benchmark name: the same name and
//! [`Scale`] always produce the identical program, so counts are exactly
//! reproducible.
//!
//! # Example
//!
//! ```
//! use superpin_workloads::{catalog, find, Scale};
//!
//! assert_eq!(catalog().len(), 26);
//! let gcc = find("gcc").expect("gcc is in the catalog");
//! let program = gcc.build(Scale::Tiny);
//! assert!(program.code_len() > 0);
//! ```

mod gen;
pub mod meta;
mod rng;
mod spec;

pub use spec::{catalog, find, Category, MemIntensity, Scale, SyscallKind, WorkloadSpec};

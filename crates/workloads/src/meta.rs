//! Ground-truth jump-table metadata for generated workloads.
//!
//! Every generated workload dispatches its work units through an
//! indirect-call table (`unit_table` in the data section, one 8-byte
//! word per `unitN` function). This module *re-reads* that structure
//! from the built [`Program`]'s symbols and data bytes and exposes it
//! as [`DispatchMeta`] — the ground truth that tests compare the
//! `superpin-analysis` whole-program resolver against. The analysis
//! itself never reads symbols; it must rediscover the same table by
//! constant propagation over the dispatch idiom.

use superpin_isa::Program;

/// The indirect-dispatch table of a generated workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DispatchMeta {
    /// Address of the first table word (`unit_table`).
    pub table_addr: u64,
    /// Code addresses of the unit functions, in table order.
    pub entries: Vec<u64>,
    /// The index mask the dispatch sequence applies (`units - 1`;
    /// unit counts are powers of two).
    pub mask: u64,
}

/// Extracts the dispatch table from a generated workload.
///
/// Returns `None` for programs without a `unit_table` symbol (e.g.
/// hand-written assembly).
pub fn dispatch_meta(program: &Program) -> Option<DispatchMeta> {
    let table = program.symbol("unit_table")?;
    let mut entries = Vec::new();
    // Unit count = number of unitN code symbols.
    let units = program
        .symbols()
        .filter(|s| {
            s.name
                .strip_prefix("unit")
                .is_some_and(|rest| rest.parse::<u64>().is_ok())
        })
        .count() as u64;
    if units == 0 || !units.is_power_of_two() {
        return None;
    }
    let data = program.data();
    let base = program.data_base();
    for i in 0..units {
        let offset = (table.addr - base + i * 8) as usize;
        let word = data.get(offset..offset + 8)?;
        entries.push(u64::from_le_bytes(word.try_into().ok()?));
    }
    Some(DispatchMeta {
        table_addr: table.addr,
        entries,
        mask: units - 1,
    })
}

//! Property-based invariants over randomly generated programs and
//! slicing configurations.

use proptest::prelude::*;
use superpin::baseline::run_native;
use superpin::{SharedMem, SuperPinConfig, SuperPinRunner};
use superpin_isa::{Program, ProgramBuilder, Reg};
use superpin_tools::{DCache, DCacheConfig, ICount2};
use superpin_vm::process::Process;

/// Builds a random-but-terminating program: nested countdown loops with
/// ALU work, stores, and optional getpid syscalls.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        2u32..40,      // outer iterations
        1u32..20,      // inner iterations
        0u32..6,       // ALU ops per inner pass
        any::<bool>(), // do stores
        any::<bool>(), // do syscalls
        0u64..1_000,   // data seed
    )
        .prop_map(|(outer, inner, alu, stores, syscalls, seed)| {
            let mut b = ProgramBuilder::new();
            b.bss("buf", 4096);
            b.label("main");
            b.li(Reg::R10, outer as i64);
            b.la(Reg::R12, "buf");
            b.li(Reg::R8, seed as i64);
            b.label("outer");
            if syscalls {
                b.li(Reg::R0, 9); // getpid
                b.syscall();
                b.xor(Reg::R0, Reg::R0, Reg::R0);
            }
            b.li(Reg::R11, inner as i64);
            b.label("inner");
            for k in 0..alu {
                b.addi(Reg::R8, Reg::R8, k as i32 + 1);
                b.xor(Reg::R8, Reg::R8, Reg::R11);
            }
            if stores {
                b.andi(Reg::R6, Reg::R8, 511);
                b.shli(Reg::R6, Reg::R6, 3);
                b.add(Reg::R6, Reg::R6, Reg::R12);
                b.st(Reg::R8, Reg::R6, 0);
            }
            b.subi(Reg::R11, Reg::R11, 1);
            b.bne(Reg::R11, Reg::R0, "inner");
            b.subi(Reg::R10, Reg::R10, 1);
            b.bne(Reg::R10, Reg::R0, "outer");
            b.exit(0);
            b.build().expect("generated program is well-formed")
        })
}

fn superpin_count(program: &Program, timeslice: u64, max_slices: usize) -> (u64, usize) {
    let shared = SharedMem::new();
    let tool = ICount2::new(&shared);
    let mut cfg = SuperPinConfig::paper_default();
    cfg.timeslice_cycles = timeslice.max(300);
    cfg.quantum_cycles = (cfg.timeslice_cycles / 20).max(100);
    cfg.max_slices = max_slices.max(1);
    let report = SuperPinRunner::new(
        Process::load(1, program).expect("load"),
        tool.clone(),
        shared.clone(),
        cfg,
    )
    .expect("setup")
    .run()
    .expect("run");
    (tool.total(&shared), report.slice_count())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline invariant: the merged count equals ground truth for
    /// arbitrary programs, timeslices, and slice limits.
    #[test]
    fn prop_merged_count_equals_native(
        program in arb_program(),
        timeslice in 300u64..8_000,
        max_slices in 1usize..10,
    ) {
        let native = run_native(Process::load(1, &program).expect("load")).expect("native");
        let (merged, _slices) = superpin_count(&program, timeslice, max_slices);
        prop_assert_eq!(merged, native.insts);
    }

    /// Determinism: the same program and configuration produce the same
    /// schedule, slice count, and counts.
    #[test]
    fn prop_runs_are_deterministic(
        program in arb_program(),
        timeslice in 300u64..5_000,
    ) {
        let a = superpin_count(&program, timeslice, 8);
        let b = superpin_count(&program, timeslice, 8);
        prop_assert_eq!(a, b);
    }

    /// The dcache reconciliation (paper §5.2) is exact for arbitrary
    /// access streams, not just the catalog workloads.
    #[test]
    fn prop_dcache_reconciliation_exact(
        addrs in proptest::collection::vec(0u64..0x8000, 1..300),
        splits in proptest::collection::vec(any::<bool>(), 300),
    ) {
        let shared = SharedMem::new();
        let mut serial = DCache::new(&shared, DCacheConfig::small());
        for &addr in &addrs {
            serial.access(addr);
        }
        let want = serial.local_result();

        // Sliced run with arbitrary split points.
        use superpin::SuperTool as _;
        let shared = SharedMem::new();
        let template = DCache::new(&shared, DCacheConfig::small());
        let mut slice_num = 0u32;
        let mut tool = template.clone();
        tool.reset(slice_num);
        for (i, &addr) in addrs.iter().enumerate() {
            tool.access(addr);
            let is_last = i + 1 == addrs.len();
            if is_last || splits.get(i).copied().unwrap_or(false) {
                tool.on_slice_end(slice_num, &shared);
                slice_num += 1;
                tool = template.clone();
                tool.reset(slice_num);
            }
        }
        prop_assert_eq!(tool.merged_result(&shared), want);
    }

    /// Shared-area auto-merge addition is order-insensitive and total.
    #[test]
    fn prop_shared_area_add_commutes(
        locals in proptest::collection::vec(
            proptest::collection::vec(0u64..1u64<<40, 4),
            1..12,
        ),
    ) {
        use superpin::{AutoMerge, SharedArea};
        let forward = SharedArea::new(4, AutoMerge::Add);
        for local in &locals {
            forward.merge_locals(local);
        }
        let backward = SharedArea::new(4, AutoMerge::Add);
        for local in locals.iter().rev() {
            backward.merge_locals(local);
        }
        prop_assert_eq!(forward.snapshot(), backward.snapshot());
        for i in 0..4 {
            let want: u64 = locals.iter().map(|l| l[i]).fold(0, u64::wrapping_add);
            prop_assert_eq!(forward.read(i), want);
        }
    }
}

#[test]
fn regression_single_instruction_program() {
    // Smallest possible program: just exit.
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.exit(0);
    let program = b.build().expect("build");
    let native = run_native(Process::load(1, &program).expect("load")).expect("native");
    let (merged, slices) = superpin_count(&program, 500, 8);
    assert_eq!(merged, native.insts);
    assert_eq!(slices, 1);
}

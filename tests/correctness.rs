//! End-to-end correctness: for every mergeable tool, SuperPin's merged
//! result equals traditional Pin's result equals ground truth — across
//! workloads, timeslice lengths, and machine sizes.

use superpin::baseline::{run_native, run_pin};
use superpin::{SharedMem, SuperPinConfig, SuperPinRunner, SuperTool};
use superpin_sched::Machine;
use superpin_tools::{BranchProfile, DCache, DCacheConfig, ICount1, ICount2, ITrace};
use superpin_vm::process::Process;
use superpin_workloads::{catalog, find, Scale};

fn config(timeslice: u64) -> SuperPinConfig {
    let mut cfg = SuperPinConfig::paper_default();
    cfg.timeslice_cycles = timeslice;
    cfg.quantum_cycles = (timeslice / 50).max(250);
    cfg
}

fn superpin_run<T: SuperTool>(
    program: &superpin_isa::Program,
    tool: T,
    shared: &SharedMem,
    cfg: SuperPinConfig,
) -> superpin::SuperPinReport {
    SuperPinRunner::new(
        Process::load(1, program).expect("load"),
        tool,
        shared.clone(),
        cfg,
    )
    .expect("runner setup")
    .run()
    .expect("superpin run")
}

#[test]
fn icount_exact_across_whole_catalog() {
    for spec in catalog() {
        let program = spec.build(Scale::Tiny);
        let native = run_native(Process::load(1, &program).expect("load")).expect("native");

        let shared = SharedMem::new();
        let tool = ICount2::new(&shared);
        let report = superpin_run(&program, tool.clone(), &shared, config(3_000));
        assert_eq!(
            tool.total(&shared),
            native.insts,
            "{}: merged icount2 != ground truth",
            spec.name
        );
        assert_eq!(
            report.slice_inst_total(),
            report.master_insts,
            "{}: slice spans must partition the master's execution",
            spec.name
        );
        assert_eq!(report.master_insts, native.insts, "{}", spec.name);
    }
}

#[test]
fn icount1_exact_for_representative_benchmarks() {
    for name in ["gcc", "mcf", "swim", "crafty", "vortex"] {
        let spec = find(name).expect("in catalog");
        let program = spec.build(Scale::Tiny);
        let native = run_native(Process::load(1, &program).expect("load")).expect("native");

        let shared = SharedMem::new();
        let pin = run_pin(
            Process::load(1, &program).expect("load"),
            ICount1::new(&shared),
        )
        .expect("pin");
        assert_eq!(pin.tool.local_count(), native.insts, "{name}: pin");

        let shared = SharedMem::new();
        let tool = ICount1::new(&shared);
        superpin_run(&program, tool.clone(), &shared, config(2_000));
        assert_eq!(tool.total(&shared), native.insts, "{name}: superpin");
    }
}

#[test]
fn counts_exact_across_timeslice_lengths() {
    let program = find("gcc").expect("gcc").build(Scale::Tiny);
    let native = run_native(Process::load(1, &program).expect("load")).expect("native");
    for timeslice in [800, 1_500, 4_000, 16_000, 1_000_000] {
        let shared = SharedMem::new();
        let tool = ICount2::new(&shared);
        let report = superpin_run(&program, tool.clone(), &shared, config(timeslice));
        assert_eq!(
            tool.total(&shared),
            native.insts,
            "timeslice {timeslice}: merged count diverged ({} slices)",
            report.slice_count()
        );
    }
}

#[test]
fn counts_exact_across_machine_shapes() {
    let program = find("parser").expect("parser").build(Scale::Tiny);
    let native = run_native(Process::load(1, &program).expect("load")).expect("native");
    for (machine, max_slices) in [
        (Machine::smp(2), 2),
        (Machine::smp(4), 4),
        (Machine::smp(8), 8),
        (Machine::paper_testbed(), 16),
        (Machine::smp(8), 1),
    ] {
        let shared = SharedMem::new();
        let tool = ICount2::new(&shared);
        let mut cfg = config(2_000)
            .with_machine(machine)
            .with_max_slices(max_slices);
        cfg.policy = superpin_sched::Policy::FairShare;
        superpin_run(&program, tool.clone(), &shared, cfg);
        assert_eq!(
            tool.total(&shared),
            native.insts,
            "machine {machine:?} spmp {max_slices}"
        );
    }
}

#[test]
fn dcache_sliced_equals_serial() {
    for name in ["mcf", "gzip", "swim"] {
        let program = find(name).expect("in catalog").build(Scale::Tiny);
        let shared = SharedMem::new();
        let pin = run_pin(
            Process::load(1, &program).expect("load"),
            DCache::new(&shared, DCacheConfig::small()),
        )
        .expect("pin");
        let serial = pin.tool.local_result();
        assert!(serial.accesses() > 0, "{name}: workload must touch memory");

        let shared = SharedMem::new();
        let tool = DCache::new(&shared, DCacheConfig::small());
        superpin_run(&program, tool.clone(), &shared, config(2_000));
        assert_eq!(
            tool.merged_result(&shared),
            serial,
            "{name}: assumed-hit reconciliation must be exact (paper §5.2)"
        );
    }
}

#[test]
fn assoc_dcache_sliced_equals_serial() {
    use superpin_tools::{AssocDCache, AssocDCacheConfig};
    for (name, cfg_cache) in [
        ("mcf", AssocDCacheConfig::small()),
        ("equake", AssocDCacheConfig::four_way()),
        ("swim", AssocDCacheConfig::small()),
    ] {
        let program = find(name).expect("in catalog").build(Scale::Tiny);
        let shared = SharedMem::new();
        let pin = run_pin(
            Process::load(1, &program).expect("load"),
            AssocDCache::new(&shared, cfg_cache),
        )
        .expect("pin");
        let serial = pin.tool.local_result();
        assert!(serial.accesses() > 0, "{name}: workload must touch memory");

        let shared = SharedMem::new();
        let tool = AssocDCache::new(&shared, cfg_cache);
        let report = superpin_run(&program, tool.clone(), &shared, config(2_000));
        assert!(report.slice_count() > 1, "{name}: need multiple slices");
        assert_eq!(
            tool.merged_result(&shared),
            serial,
            "{name}: set-associative merge replay must be exact"
        );
    }
}

#[test]
fn itrace_merge_reconstructs_serial_trace() {
    let program = find("vpr").expect("vpr").build(Scale::Tiny);
    let pin = run_pin(Process::load(1, &program).expect("load"), ITrace::new()).expect("pin");
    let serial = ITrace::decode(pin.tool.local_buffer());

    let shared = SharedMem::new();
    let report = superpin_run(&program, ITrace::new(), &shared, config(3_000));
    let merged = ITrace::merged_trace(&shared);
    assert!(
        report.slice_count() > 1,
        "need multiple slices to be meaningful"
    );
    assert_eq!(
        merged, serial,
        "in-order merge must reconstruct the exact serial trace (paper §4.5)"
    );
}

#[test]
fn icache_sliced_equals_serial() {
    use superpin_tools::ICache;
    // gcc: the large-footprint benchmark is the interesting icache case.
    let program = find("gcc").expect("gcc").build(Scale::Tiny);
    let shared = SharedMem::new();
    let pin = run_pin(
        Process::load(1, &program).expect("load"),
        ICache::new(&shared, DCacheConfig::small()),
    )
    .expect("pin");
    let serial = pin.tool.local_result();
    assert!(serial.misses > 0, "gcc must conflict in a 4 KiB icache");

    let shared = SharedMem::new();
    let tool = ICache::new(&shared, DCacheConfig::small());
    let report = superpin_run(&program, tool.clone(), &shared, config(2_000));
    assert!(report.slice_count() > 1);
    assert_eq!(tool.merged_result(&shared), serial);
}

#[test]
fn bblcount_merged_agrees_with_serial_up_to_block_splits() {
    // Block *identity* is a JIT artifact: a slice that starts mid-block
    // or splits a block at its signature boundary forms different blocks
    // than a serial run, so per-address counts are only equal up to a
    // bounded perturbation (≤ a few entries per slice). Tools needing
    // exact per-address counts reconcile at merge time like the dcache
    // example (paper §4.5); instruction-weighted totals (icount2) are
    // exactly invariant and tested elsewhere.
    use superpin_tools::BblCount;
    let program = find("twolf").expect("twolf").build(Scale::Tiny);
    let pin = run_pin(Process::load(1, &program).expect("load"), BblCount::new()).expect("pin");
    let serial = pin.tool.local_blocks().clone();
    let serial_entries: u64 = serial.values().sum();

    let shared = SharedMem::new();
    let tool = BblCount::new();
    let report = superpin_run(&program, tool.clone(), &shared, config(2_500));
    let merged = tool.merged_blocks();
    let merged_entries: u64 = merged.values().sum();

    // Splitting a block turns each of its executions into two entries,
    // so the sliced run can only see *more* block entries — bounded by
    // the dynamic instruction count (every entry covers ≥ 1 instruction).
    assert!(
        merged_entries >= serial_entries,
        "splits can only add entries: {merged_entries} vs {serial_entries}"
    );
    assert!(
        merged_entries <= report.master_insts,
        "entries cannot exceed instructions: {merged_entries} vs {}",
        report.master_insts
    );
    // The hot head dominates identically in both runs.
    let serial_hot = serial.iter().max_by_key(|&(_, c)| c).expect("nonempty");
    let merged_hot = merged.iter().max_by_key(|&(_, c)| c).expect("nonempty");
    assert_eq!(serial_hot.0, merged_hot.0, "hottest block must agree");
}

#[test]
fn insmix_merged_equals_serial() {
    use superpin_tools::{InsMix, MixCategory};
    let program = find("equake").expect("equake").build(Scale::Tiny);
    let shared = SharedMem::new();
    let pin = run_pin(
        Process::load(1, &program).expect("load"),
        InsMix::new(&shared),
    )
    .expect("pin");
    let serial = pin.tool.local_counts();

    let shared = SharedMem::new();
    let tool = InsMix::new(&shared);
    let report = superpin_run(&program, tool.clone(), &shared, config(2_000));
    assert!(report.slice_count() > 1);
    let merged = tool.merged_counts(&shared);
    for category in MixCategory::ALL {
        assert_eq!(
            merged.get(category),
            serial.get(category),
            "category {category:?}"
        );
    }
    assert_eq!(merged.total(), report.master_insts);
}

#[test]
fn branch_profile_merged_equals_serial() {
    let program = find("crafty").expect("crafty").build(Scale::Tiny);
    let pin = run_pin(
        Process::load(1, &program).expect("load"),
        BranchProfile::new(),
    )
    .expect("pin");
    let serial = pin.tool.local_sites().clone();

    let shared = SharedMem::new();
    let tool = BranchProfile::new();
    superpin_run(&program, tool.clone(), &shared, config(2_500));
    assert_eq!(tool.merged_sites(), serial);
}

#[test]
fn signal_handlers_slice_exactly() {
    // A guest that installs a handler and raises a signal every loop
    // iteration; the handler bumps an in-memory counter and sigreturns.
    // Signal delivery/return are syscalls, so their control transfers
    // are captured by the records and slices replay them exactly.
    let program = superpin_isa::asm::assemble(
        r#"
        .data
        hits: .word 0
        .text
        main:
            li r0, 11          ; sigaction(2, handler)
            li r1, 2
            la r2, handler
            syscall
            li r10, 300
        loop:
            li r0, 12          ; raise(2)
            li r1, 2
            syscall
            xor r0, r0, r0
            subi r10, r10, 1
            bne r10, r0, loop
            exit 0
        handler:
            la r6, hits
            ld r7, 0(r6)
            addi r7, r7, 1
            st r7, 0(r6)
            li r0, 13          ; sigreturn
            syscall
        "#,
    )
    .expect("assemble");

    let native = run_native(Process::load(1, &program).expect("load")).expect("native");
    // The handler really ran 300 times in the master.
    let mut check = Process::load(1, &program).expect("load");
    check.run(u64::MAX, 0).expect("run");
    assert_eq!(
        check
            .mem
            .read_u64(superpin_isa::DATA_BASE)
            .expect("read hits"),
        300
    );

    let shared = SharedMem::new();
    let tool = ICount2::new(&shared);
    let mut cfg = config(1_500);
    cfg.max_sysrecs = 10_000;
    let report = superpin_run(&program, tool.clone(), &shared, cfg);
    assert!(report.slice_count() > 1, "need multiple slices");
    assert_eq!(
        tool.total(&shared),
        native.insts,
        "handler control transfers must slice exactly"
    );
}

#[test]
fn superpin_disabled_behaves_like_plain_pin() {
    // With one giant timeslice the whole program is a single slice whose
    // counts equal plain Pin's.
    let program = find("twolf").expect("twolf").build(Scale::Tiny);
    let shared = SharedMem::new();
    let tool = ICount2::new(&shared);
    let report = superpin_run(&program, tool.clone(), &shared, config(u64::MAX / 4));
    assert_eq!(report.slice_count(), 1);
    let native = run_native(Process::load(1, &program).expect("load")).expect("native");
    assert_eq!(tool.total(&shared), native.insts);
}

/// Large-scale stress run (several minutes in debug builds):
/// `cargo test --release -- --ignored` exercises ~4M-instruction runs.
#[test]
#[ignore = "slow; run with --release -- --ignored"]
fn large_scale_counts_exact() {
    for name in ["gcc", "swim"] {
        let program = find(name).expect("in catalog").build(Scale::Large);
        let native = run_native(Process::load(1, &program).expect("load")).expect("native");
        let shared = SharedMem::new();
        let tool = ICount2::new(&shared);
        let report = superpin_run(&program, tool.clone(), &shared, config(40_000));
        assert_eq!(tool.total(&shared), native.insts, "{name}");
        assert!(report.slice_count() > 20, "{name}");
    }
}

//! Behavioural tests of the slicing machinery: fork triggers, stalls,
//! syscall-record budgets, the runtime breakdown, and the adaptive
//! timeslice extension.

use superpin::baseline::run_native;
use superpin::{SharedMem, SliceEnd, SuperPinConfig, SuperPinRunner};
use superpin_tools::{ICount2, Sampler};
use superpin_vm::process::Process;
use superpin_workloads::{find, Scale};

fn config(timeslice: u64) -> SuperPinConfig {
    let mut cfg = SuperPinConfig::paper_default();
    cfg.timeslice_cycles = timeslice;
    cfg.quantum_cycles = (timeslice / 50).max(250);
    cfg
}

fn run(program: &superpin_isa::Program, cfg: SuperPinConfig) -> superpin::SuperPinReport {
    let shared = SharedMem::new();
    let tool = ICount2::new(&shared);
    SuperPinRunner::new(Process::load(1, program).expect("load"), tool, shared, cfg)
        .expect("setup")
        .run()
        .expect("run")
}

#[test]
fn timer_forks_scale_inversely_with_timeslice() {
    let program = find("swim").expect("swim").build(Scale::Tiny);
    let short = run(&program, config(1_000));
    let long = run(&program, config(8_000));
    assert!(short.forks_on_timeout > 2 * long.forks_on_timeout);
    assert!(short.slice_count() > long.slice_count());
}

#[test]
fn disabling_sysrecs_forces_syscall_forks() {
    // vortex issues recordable `write` syscalls; gcc's `brk` churn is
    // Duplicate-class and never forces (paper §4.2's custom emulation).
    let program = find("vortex").expect("vortex").build(Scale::Tiny);
    let recorded = run(&program, config(4_000));
    let forced = run(&program, config(4_000).with_max_sysrecs(0));
    assert!(
        forced.forks_on_syscall > recorded.forks_on_syscall,
        "spsysrecs 0 must fork at recordable syscalls ({} vs {})",
        forced.forks_on_syscall,
        recorded.forks_on_syscall
    );
    // Forced slices end by exhausting their records, not by signature.
    assert!(forced
        .slices
        .iter()
        .any(|s| s.end == SliceEnd::RecordsExhausted));
}

#[test]
fn small_sysrec_budget_forces_forks() {
    let program = find("vortex").expect("vortex").build(Scale::Small);
    let tight = run(&program, config(100_000_000).with_max_sysrecs(1));
    // With an effectively infinite timeslice, every fork (beyond slice 1)
    // is a forced one.
    assert!(tight.forks_on_syscall > 0);
    assert_eq!(tight.forks_on_timeout, 0);
}

#[test]
fn brk_churn_never_forces_forks() {
    // gcc's heap churn is handled by duplication even with recording
    // disabled (paper §4.2: "the brk system call can be duplicated
    // without any adverse side effects").
    let program = find("gcc").expect("gcc").build(Scale::Tiny);
    let report = run(&program, config(4_000).with_max_sysrecs(0));
    assert_eq!(report.forks_on_syscall, 0);
    assert!(report.master_syscalls > 20, "gcc must churn the heap");
}

#[test]
fn breakdown_partitions_total_runtime() {
    let program = find("gcc").expect("gcc").build(Scale::Tiny);
    for timeslice in [1_000, 3_000, 9_000] {
        let report = run(&program, config(timeslice));
        let b = &report.breakdown;
        assert_eq!(
            b.native_cycles + b.fork_other_cycles + b.sleep_cycles + b.pipeline_cycles,
            report.total_cycles,
            "breakdown must stack to the total (Figure 6)"
        );
        assert_eq!(
            report.master_exit_cycles + b.pipeline_cycles,
            report.total_cycles
        );
        assert!(b.native_cycles <= report.master_exit_cycles);
    }
}

#[test]
fn max_slices_one_serializes_instrumentation() {
    let program = find("gzip").expect("gzip").build(Scale::Tiny);
    let serial_ish = run(&program, config(2_000).with_max_slices(1));
    let parallel = run(&program, config(2_000).with_max_slices(8));
    assert!(
        serial_ish.total_cycles > parallel.total_cycles,
        "spmp=1 ({}) must be slower than spmp=8 ({})",
        serial_ish.total_cycles,
        parallel.total_cycles
    );
    assert!(
        serial_ish.stall_events > 0,
        "the master must stall at spmp=1"
    );
}

#[test]
fn pipeline_delay_bounded_by_model() {
    // Paper §3: "If it is not fully loaded, it will take an extra
    // (F+1)s seconds". Miniature slices additionally pay a cold-cache
    // recompile whose cost is *not* negligible relative to s (unlike at
    // full scale), so the bound allows one full recompile of the
    // program's static code.
    let program = find("swim").expect("swim").build(Scale::Small);
    for timeslice in [10_000u64, 20_000] {
        let cfg = config(timeslice);
        let report = run(&program, cfg.clone());
        let compile_allowance = program.static_inst_count() as u64 * cfg.cost.compile_per_inst;
        let bound = (cfg.max_slices as u64 + 2) * timeslice + 2 * compile_allowance;
        assert!(
            report.breakdown.pipeline_cycles <= bound,
            "pipeline {} exceeds model bound {bound} at timeslice {timeslice}",
            report.breakdown.pipeline_cycles
        );
    }
}

#[test]
fn adaptive_timeslice_reduces_pipeline_delay() {
    let program = find("mesa").expect("mesa").build(Scale::Small);
    let fixed_cfg = config(20_000);
    let fixed = run(&program, fixed_cfg.clone());

    let mut adaptive_cfg = fixed_cfg;
    adaptive_cfg.adaptive_estimate = Some(fixed.master_exit_cycles);
    let adaptive = run(&program, adaptive_cfg);
    assert!(
        adaptive.breakdown.pipeline_cycles < fixed.breakdown.pipeline_cycles,
        "adaptive throttling must shrink the pipeline tail ({} vs {})",
        adaptive.breakdown.pipeline_cycles,
        fixed.breakdown.pipeline_cycles
    );
    // And it must not break counting.
    assert_eq!(adaptive.slice_inst_total(), adaptive.master_insts);
}

#[test]
fn sampler_ends_slices_early() {
    let program = find("crafty").expect("crafty").build(Scale::Tiny);
    let shared = SharedMem::new();
    let tool = Sampler::new(100);
    let report = SuperPinRunner::new(
        Process::load(1, &program).expect("load"),
        tool.clone(),
        shared,
        config(2_000),
    )
    .expect("setup")
    .run()
    .expect("run");
    assert!(
        report.slices.iter().any(|s| s.end == SliceEnd::ToolEnded),
        "SP_EndSlice must terminate slices"
    );
    let native = run_native(Process::load(1, &program).expect("load")).expect("native");
    assert!(tool.merged_samples() < native.insts / 2);
    assert!(tool.merged_samples() > 0);
}

#[test]
fn signature_statistics_populate() {
    let program = find("swim").expect("swim").build(Scale::Tiny);
    let report = run(&program, config(2_000));
    let stats = report.sig_stats;
    assert!(
        stats.detections > 0,
        "timeout slices must detect signatures"
    );
    assert!(stats.quick_checks >= stats.full_checks);
    assert!(stats.full_checks >= stats.stack_checks);
    assert!(stats.stack_checks >= stats.detections);
    // The quick filter must do its job: most visits to the boundary pc
    // don't escalate (paper: ~2%; generous bound here).
    assert!(
        stats.full_check_rate() < 0.5,
        "quick filter ineffective: {:.1}%",
        100.0 * stats.full_check_rate()
    );
}

#[test]
fn ptrace_overhead_is_small() {
    let program = find("gcc").expect("gcc").build(Scale::Small);
    let cfg = config(20_000);
    let report = run(&program, cfg.clone());
    let ptrace_cycles = report.ptrace.syscall_stops * cfg.cost.ptrace_stop;
    let fraction = ptrace_cycles as f64 / report.breakdown.native_cycles as f64;
    // Paper §6.3: "less than a few tenths of a percent".
    assert!(
        fraction < 0.005,
        "ptrace overhead {:.3}% too large",
        100.0 * fraction
    );
}

#[test]
fn shared_code_cache_cuts_compilation_and_stays_exact() {
    // Paper §8: "share the code cache across all timeslices ... the
    // reduction in overhead will outweigh the costs."
    let program = find("gcc").expect("gcc").build(Scale::Small);
    let base_cfg = config(5_000);
    let private = run(&program, base_cfg.clone());

    let mut shared_cfg = base_cfg;
    shared_cfg.shared_code_cache = true;
    let shared = run(&program, shared_cfg);

    let jit = |report: &superpin::SuperPinReport| -> u64 {
        report.slices.iter().map(|s| s.engine.cycles.jit).sum()
    };
    assert!(
        jit(&shared) * 2 < jit(&private),
        "shared cache must slash per-slice recompilation ({} vs {})",
        jit(&shared),
        jit(&private)
    );
    assert!(
        shared.total_cycles < private.total_cycles,
        "gcc must get faster with a shared code cache ({} vs {})",
        shared.total_cycles,
        private.total_cycles
    );
    assert_eq!(shared.slice_inst_total(), shared.master_insts);
    assert!(shared
        .slices
        .iter()
        .any(|s| s.engine.shared_cache_adoptions > 0));
}

#[test]
fn merges_run_in_slice_order() {
    let program = find("vpr").expect("vpr").build(Scale::Tiny);
    let report = run(&program, config(2_000));
    for (index, slice) in report.slices.iter().enumerate() {
        assert_eq!(slice.num as usize, index + 1, "slice order in report");
    }
    // End times may interleave, but starts are strictly ordered.
    for pair in report.slices.windows(2) {
        assert!(pair[0].start_cycles <= pair[1].start_cycles);
    }
}

//! Reproduces the signature-detection false positive the paper warns
//! about (§4.4):
//!
//! "A sequence of code could be generated that incremented or
//! decremented memory in a loop as a loop counter, with all other
//! registers and stack remaining the same across iterations. In this
//! case, we may trigger a false positive match on the first iteration
//! rather than a subsequent iteration."

use superpin::bubble::Bubble;
use superpin::signature::Signature;
use superpin::slice::{Boundary, SliceEnd, SliceRuntime, SliceState};
use superpin::{SharedMem, SuperPinConfig, SuperTool};
use superpin_dbi::{IPoint, Inserter, Pintool, Trace};
use superpin_isa::{Program, ProgramBuilder, Reg};
use superpin_vm::process::Process;

/// Minimal counting SuperTool for the demonstration.
#[derive(Clone, Default)]
struct Count {
    count: u64,
}

impl Pintool for Count {
    fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
        for iref in trace.insts() {
            inserter.insert_call(iref.addr, IPoint::Before, |t, _, _| t.count += 1, vec![]);
        }
    }
}

impl SuperTool for Count {
    fn reset(&mut self, _slice: u32) {
        self.count = 0;
    }
    fn on_slice_end(&mut self, _slice: u32, _shared: &SharedMem) {}
}

/// The pathological loop: the induction variable lives only in memory;
/// at the loop head every register and the stack are identical on every
/// iteration (r3 is zeroed before looping back).
fn pathological_program(iters: u64) -> Program {
    let mut b = ProgramBuilder::new();
    b.data_words("counter", &[iters]);
    b.label("main");
    b.la(Reg::R2, "counter");
    b.label("head"); // <- boundary pc: state identical every arrival
    b.ld(Reg::R3, Reg::R2, 0);
    b.subi(Reg::R3, Reg::R3, 1);
    b.st(Reg::R3, Reg::R2, 0);
    b.beq(Reg::R3, Reg::R0, "done");
    b.xor(Reg::R3, Reg::R3, Reg::R3); // erase the only changing register
    b.jmp("head");
    b.label("done");
    b.exit(0);
    b.build().expect("build")
}

#[test]
fn memory_only_loop_counter_triggers_false_positive() {
    let program = pathological_program(10);
    let mut master = Process::load(1, &program).expect("load");
    let bubble = Bubble::reserve(&mut master.mem).expect("bubble");
    let cfg = SuperPinConfig::paper_default();

    // Slice 1 forks at program start.
    let mut slice =
        SliceRuntime::spawn(1, &master, &Count::default(), &bubble, &cfg, 0).expect("spawn");
    assert_eq!(slice.state(), SliceState::Sleeping);

    // Master runs 2 instructions (la) + 5 full iterations (6 insts each),
    // parking exactly at the loop head with memory counter == 5.
    master.run_until_syscall(1 + 5 * 6).expect("advance master");
    let master_insts_at_boundary = master.inst_count();
    let sig = Signature::capture(&master);

    slice.wake(Boundary::Signature(Box::new(sig)), vec![], 0);
    slice.advance(u64::MAX / 8, 0).expect("advance");
    assert_eq!(slice.state(), SliceState::Done);
    assert_eq!(slice.end_reason(), Some(SliceEnd::SignatureDetected));

    // The false positive: the slice matched on its FIRST arrival at the
    // loop head (after 1 instruction) instead of the master's true
    // boundary (31 instructions in).
    let counted = slice.tool().inner.count;
    assert!(
        counted < master_insts_at_boundary,
        "expected premature detection: slice counted {counted}, true span {master_insts_at_boundary}"
    );
    assert_eq!(
        counted, 1,
        "detection fires at the very first loop-head arrival"
    );
}

#[test]
fn quick_match_rejected_by_full_comparison_runs_to_true_boundary() {
    // The two-stage defence (§4.4): pick quick-check registers the loop
    // never writes, so the inlined quick check matches on *every*
    // arrival at the boundary pc — but the loop counter lives in r3, so
    // the full register comparison rejects each premature match and the
    // slice keeps running to the master's true boundary.
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R3, 10);
    b.label("head");
    b.subi(Reg::R3, Reg::R3, 1);
    b.bne(Reg::R3, Reg::R0, "head");
    b.exit(0);
    let program = b.build().expect("build");

    let mut master = Process::load(1, &program).expect("load");
    let bubble = Bubble::reserve(&mut master.mem).expect("bubble");
    let cfg = SuperPinConfig::paper_default();
    let mut slice =
        SliceRuntime::spawn(1, &master, &Count::default(), &bubble, &cfg, 0).expect("spawn");

    // Master stops at the loop head with r3 == 5; r1/sp are loop-invariant.
    master.run_until_syscall(1 + 5 * 2).expect("advance master");
    let truth = master.inst_count();
    let sig = Signature::capture_with_quick_regs(&master, [Reg::R1, Reg::SP]);

    slice.wake(Boundary::Signature(Box::new(sig)), vec![], 0);
    slice.advance(u64::MAX / 8, 0).expect("advance");
    assert_eq!(slice.end_reason(), Some(SliceEnd::SignatureDetected));

    let stats = slice.tool().sig_stats;
    assert_eq!(stats.detections, 1, "exactly one true detection");
    assert!(
        stats.full_checks > stats.detections,
        "quick check must have false-positively escalated: \
         {} full checks for {} detection(s)",
        stats.full_checks,
        stats.detections
    );
    assert_eq!(
        slice.tool().inner.count,
        truth,
        "every premature quick match was rejected by the full comparison"
    );
}

#[test]
fn register_loop_counter_does_not_false_positive() {
    // Control: the same loop with the counter in a register is detected
    // at exactly the right boundary.
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R3, 10);
    b.label("head");
    b.subi(Reg::R3, Reg::R3, 1);
    b.bne(Reg::R3, Reg::R0, "head");
    b.exit(0);
    let program = b.build().expect("build");

    let mut master = Process::load(1, &program).expect("load");
    let bubble = Bubble::reserve(&mut master.mem).expect("bubble");
    let cfg = SuperPinConfig::paper_default();
    let mut slice =
        SliceRuntime::spawn(1, &master, &Count::default(), &bubble, &cfg, 0).expect("spawn");

    master.run_until_syscall(1 + 5 * 2).expect("advance master");
    let truth = master.inst_count();
    let sig = Signature::capture(&master);
    slice.wake(Boundary::Signature(Box::new(sig)), vec![], 0);
    slice.advance(u64::MAX / 8, 0).expect("advance");
    assert_eq!(slice.end_reason(), Some(SliceEnd::SignatureDetected));
    assert_eq!(slice.tool().inner.count, truth, "no false positive");
}
